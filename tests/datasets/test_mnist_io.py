"""Tests for the IDX/MNIST loader (using synthesized IDX files)."""

import gzip

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.datasets.mnist_io import (
    MNIST_FILES,
    load_idx,
    load_mnist,
    write_idx,
)


def make_fake_mnist(directory, n_train=30, n_test=10, gz=False):
    """Write a miniature MNIST-shaped corpus in IDX format."""
    rng = np.random.default_rng(0)
    files = {
        "train_images": rng.integers(0, 256, (n_train, 28, 28), dtype=np.uint8),
        "train_labels": (np.arange(n_train) % 10).astype(np.uint8),
        "test_images": rng.integers(0, 256, (n_test, 28, 28), dtype=np.uint8),
        "test_labels": (np.arange(n_test) % 10).astype(np.uint8),
    }
    for key, array in files.items():
        path = directory / MNIST_FILES[key]
        write_idx(path, array)
        if gz:
            gz_path = path.with_suffix(path.suffix + ".gz") if path.suffix else directory / (path.name + ".gz")
            with gzip.open(directory / (MNIST_FILES[key] + ".gz"), "wb") as handle:
                handle.write(path.read_bytes())
            path.unlink()
    return files


class TestIDXRoundTrip:
    def test_uint8_3d(self, tmp_path):
        array = np.arange(24, dtype=np.uint8).reshape(2, 3, 4)
        path = write_idx(tmp_path / "x.idx", array)
        assert np.array_equal(load_idx(path), array)

    def test_labels_1d(self, tmp_path):
        labels = np.array([3, 1, 4, 1, 5], dtype=np.uint8)
        path = write_idx(tmp_path / "y.idx", labels)
        assert np.array_equal(load_idx(path), labels)

    def test_int32(self, tmp_path):
        array = np.array([[-5, 7]], dtype=np.int32)
        path = write_idx(tmp_path / "z.idx", array)
        loaded = load_idx(path)
        assert np.array_equal(loaded, array)

    def test_gzip_transparent(self, tmp_path):
        array = np.arange(12, dtype=np.uint8).reshape(3, 4)
        plain = write_idx(tmp_path / "a.idx", array)
        gz_path = tmp_path / "a.idx.gz"
        with gzip.open(gz_path, "wb") as handle:
            handle.write(plain.read_bytes())
        assert np.array_equal(load_idx(gz_path), array)


class TestIDXValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_idx(tmp_path / "nope.idx")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x01\x00\x08\x01\x00\x00\x00\x01\xff")
        with pytest.raises(DatasetError, match="magic"):
            load_idx(path)

    def test_unknown_dtype(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x00\x00\x77\x01\x00\x00\x00\x01\xff")
        with pytest.raises(DatasetError, match="dtype"):
            load_idx(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x00\x00\x08\x01\x00\x00\x00\x05\xff\xff")
        with pytest.raises(DatasetError, match="payload"):
            load_idx(path)

    def test_unsupported_write_dtype(self, tmp_path):
        with pytest.raises(DatasetError):
            write_idx(tmp_path / "c.idx", np.zeros(3, dtype=np.complex128))


class TestLoadMNIST:
    def test_loads_dataset_pair(self, tmp_path):
        make_fake_mnist(tmp_path)
        train, test = load_mnist(tmp_path)
        assert len(train) == 30 and len(test) == 10
        assert train.n_inputs == 784
        assert train.n_classes == 10
        assert train.images.dtype == np.uint8

    def test_loads_gzipped(self, tmp_path):
        make_fake_mnist(tmp_path, gz=True)
        train, _test = load_mnist(tmp_path)
        assert len(train) == 30

    def test_datasets_feed_the_models(self, tmp_path):
        # The real-data path must plug straight into the trainers.
        from repro.core.config import MLPConfig
        from repro.mlp.trainer import train_mlp

        make_fake_mnist(tmp_path, n_train=40)
        train, _test = load_mnist(tmp_path)
        network = train_mlp(MLPConfig(n_hidden=8).validate(), train, epochs=2)
        assert network.predict_dataset(train).shape == (40,)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(DatasetError, match="directory"):
            load_mnist(tmp_path / "missing")

    def test_missing_file_named(self, tmp_path):
        make_fake_mnist(tmp_path)
        (tmp_path / MNIST_FILES["test_labels"]).unlink()
        with pytest.raises(DatasetError, match="t10k-labels"):
            load_mnist(tmp_path)
