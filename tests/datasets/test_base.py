"""Tests for the Dataset container and split utilities."""

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.datasets.base import Dataset, merge


def make_dataset(n=40, n_inputs=16, n_classes=4, name="toy"):
    rng = np.random.default_rng(0)
    images = rng.integers(0, 256, size=(n, n_inputs), dtype=np.uint8)
    labels = (np.arange(n) % n_classes).astype(np.int64)
    return Dataset(images=images, labels=labels, n_classes=n_classes, name=name)


class TestValidation:
    def test_valid_dataset_accepted(self):
        dataset = make_dataset()
        assert len(dataset) == 40
        assert dataset.n_inputs == 16

    def test_non_2d_images_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros(5, dtype=np.uint8), np.zeros(5, dtype=np.int64), 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(
                np.zeros((4, 3), dtype=np.uint8), np.zeros(5, dtype=np.int64), 2
            )

    def test_wrong_dtype_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros((4, 3)), np.zeros(4, dtype=np.int64), 2)

    def test_out_of_range_labels_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(
                np.zeros((2, 3), dtype=np.uint8),
                np.array([0, 5], dtype=np.int64),
                2,
            )

    def test_single_class_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(
                np.zeros((2, 3), dtype=np.uint8),
                np.zeros(2, dtype=np.int64),
                1,
            )


class TestAccessors:
    def test_side_of_square_image(self):
        assert make_dataset(n_inputs=16).side == 4

    def test_side_of_non_square_rejected(self):
        with pytest.raises(DatasetError):
            _ = make_dataset(n_inputs=15).side

    def test_normalized_range(self):
        normalized = make_dataset().normalized()
        assert normalized.min() >= 0.0 and normalized.max() <= 1.0
        assert normalized.dtype == np.float64

    def test_class_counts_balanced(self):
        counts = make_dataset(n=40, n_classes=4).class_counts()
        assert counts.tolist() == [10, 10, 10, 10]


class TestSubsets:
    def test_take(self):
        assert len(make_dataset().take(5)) == 5

    def test_take_too_many_rejected(self):
        with pytest.raises(DatasetError):
            make_dataset(n=4).take(10)

    def test_subset_copies(self):
        dataset = make_dataset()
        subset = dataset.subset(np.array([0, 1]))
        subset.images[0, 0] = 99
        assert dataset.images[0, 0] != 99 or True  # copy: original unchanged
        assert not np.shares_memory(subset.images, dataset.images)

    def test_shuffled_preserves_pairs(self):
        dataset = make_dataset()
        shuffled = dataset.shuffled(seed=1)
        # Every (image, label) pair must still exist.
        original = {(bytes(img), int(lbl)) for img, lbl in zip(dataset.images, dataset.labels)}
        after = {(bytes(img), int(lbl)) for img, lbl in zip(shuffled.images, shuffled.labels)}
        assert original == after


class TestSplit:
    def test_split_sizes(self):
        # Stratified split rounds per class: 10 per class * 0.75 -> 8.
        train, test = make_dataset(n=40).split(0.75, seed=0)
        assert len(train) == 32
        assert len(test) == 8

    def test_split_is_stratified(self):
        train, test = make_dataset(n=40, n_classes=4).split(0.5, seed=0)
        assert set(train.labels) == {0, 1, 2, 3}
        assert set(test.labels) == {0, 1, 2, 3}

    def test_split_disjoint(self):
        dataset = make_dataset()
        train, test = dataset.split(0.5, seed=0)
        assert len(train) + len(test) == len(dataset)

    def test_bad_fraction_rejected(self):
        with pytest.raises(DatasetError):
            make_dataset().split(1.5)


class TestBatches:
    def test_batches_cover_dataset(self):
        dataset = make_dataset(n=40)
        total = sum(len(labels) for _inputs, labels in dataset.batches(7, seed=0))
        assert total == 40

    def test_batch_inputs_normalized(self):
        inputs, _ = next(iter(make_dataset().batches(8, seed=0)))
        assert inputs.max() <= 1.0

    def test_bad_batch_size_rejected(self):
        with pytest.raises(DatasetError):
            list(make_dataset().batches(0))


class TestMerge:
    def test_merge_concatenates(self):
        merged = merge(make_dataset(n=10), make_dataset(n=6))
        assert len(merged) == 16

    def test_merge_incompatible_inputs_rejected(self):
        with pytest.raises(DatasetError):
            merge(make_dataset(n_inputs=16), make_dataset(n_inputs=9))

    def test_merge_incompatible_classes_rejected(self):
        with pytest.raises(DatasetError):
            merge(make_dataset(n_classes=4), make_dataset(n_classes=2))
