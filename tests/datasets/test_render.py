"""Tests for the rasterization primitives."""

import numpy as np
import pytest

from repro.datasets.render import (
    affine_matrix,
    arc_points,
    line_points,
    pixel_grid,
    polyline_segments,
    rasterize_polygon,
    rasterize_strokes,
    to_uint8,
    transform_points,
)


class TestGeometry:
    def test_arc_points_count_and_radius(self):
        points = arc_points((0.5, 0.5), 0.2, 0.2, 0, 360, 17)
        assert points.shape == (17, 2)
        radii = np.linalg.norm(points - 0.5, axis=1)
        assert np.allclose(radii, 0.2)

    def test_line_points(self):
        line = line_points((0, 0), (1, 1))
        assert line.shape == (2, 2)

    def test_polyline_segments(self):
        segments = polyline_segments(np.array([[0, 0], [1, 0], [1, 1]]))
        assert segments.shape == (2, 4)
        assert segments[0].tolist() == [0, 0, 1, 0]


class TestAffine:
    def test_identity(self):
        matrix = affine_matrix()
        points = np.array([[0.3, 0.7]])
        assert np.allclose(transform_points(points, matrix), points)

    def test_translation(self):
        matrix = affine_matrix(translate=(0.1, -0.2))
        moved = transform_points(np.array([[0.5, 0.5]]), matrix)
        assert np.allclose(moved, [[0.6, 0.3]])

    def test_rotation_preserves_center(self):
        matrix = affine_matrix(rotation_deg=90)
        center = transform_points(np.array([[0.5, 0.5]]), matrix)
        assert np.allclose(center, [[0.5, 0.5]])

    def test_rotation_moves_off_center_points(self):
        matrix = affine_matrix(rotation_deg=90)
        moved = transform_points(np.array([[0.7, 0.5]]), matrix)
        assert not np.allclose(moved, [[0.7, 0.5]])
        # Distance from center preserved.
        assert np.linalg.norm(moved - 0.5) == pytest.approx(0.2)

    def test_scale(self):
        matrix = affine_matrix(scale=2.0)
        moved = transform_points(np.array([[0.6, 0.5]]), matrix)
        assert np.allclose(moved, [[0.7, 0.5]])


class TestRasterize:
    def test_pixel_grid_in_unit_square(self):
        grid = pixel_grid(8)
        assert grid.shape == (64, 2)
        assert grid.min() > 0 and grid.max() < 1

    def test_stroke_lights_pixels_near_line(self):
        image = rasterize_strokes(
            [line_points((0.1, 0.5), (0.9, 0.5))], side=16, thickness=0.1
        )
        middle_row = image[8]
        assert middle_row.max() == 1.0
        assert image[0].max() == 0.0  # far from the stroke

    def test_values_in_unit_interval(self):
        image = rasterize_strokes(
            [arc_points((0.5, 0.5), 0.3, 0.3, 0, 360)], side=20, thickness=0.08
        )
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_polygon_interior_filled(self):
        square = np.array([[0.2, 0.2], [0.8, 0.2], [0.8, 0.8], [0.2, 0.8]])
        image = rasterize_polygon(square, side=20)
        assert image[10, 10] == 1.0
        assert image[1, 1] == 0.0

    def test_polygon_area_roughly_right(self):
        square = np.array([[0.25, 0.25], [0.75, 0.25], [0.75, 0.75], [0.25, 0.75]])
        image = rasterize_polygon(square, side=40)
        assert (image > 0.5).mean() == pytest.approx(0.25, abs=0.03)

    def test_to_uint8_peak(self):
        image = np.array([[0.0, 1.0]])
        out = to_uint8(image, peak=200)
        assert out.dtype == np.uint8
        assert out.tolist() == [[0, 200]]
