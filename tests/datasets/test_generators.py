"""Tests for the three synthetic workload generators."""

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.datasets.digits import load_digits, render_digit
from repro.datasets.shapes import SHAPE_CLASSES, load_shapes, render_shape
from repro.datasets.spoken import load_spoken, render_utterance


def nearest_mean_accuracy(train, test):
    """Accuracy of a nearest-class-mean classifier (cosine)."""
    x_train, y_train = train.normalized(), train.labels
    x_test, y_test = test.normalized(), test.labels
    means = np.stack([x_train[y_train == c].mean(axis=0) for c in range(10)])
    scores = x_test @ means.T / np.linalg.norm(means, axis=1)
    return float(np.mean(np.argmax(scores, axis=1) == y_test))


class TestDigits:
    def test_shapes_and_dtypes(self):
        train, test = load_digits(n_train=60, n_test=30)
        assert train.images.shape == (60, 784)
        assert test.images.shape == (30, 784)
        assert train.images.dtype == np.uint8
        assert train.n_classes == 10

    def test_deterministic_for_seed(self):
        a, _ = load_digits(n_train=30, n_test=10, seed=5)
        b, _ = load_digits(n_train=30, n_test=10, seed=5)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a, _ = load_digits(n_train=30, n_test=10, seed=1)
        b, _ = load_digits(n_train=30, n_test=10, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_train_test_independent_streams(self):
        # Enlarging the training set must not change the test set.
        _, test_a = load_digits(n_train=30, n_test=20, seed=3)
        _, test_b = load_digits(n_train=60, n_test=20, seed=3)
        assert np.array_equal(test_a.images, test_b.images)

    def test_classes_balanced(self):
        train, _ = load_digits(n_train=100, n_test=10)
        assert train.class_counts().min() >= 9

    def test_canonical_glyph_without_jitter_is_deterministic(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(1)
        a = render_digit(3, rng_a, jitter=0.0)
        b = render_digit(3, rng_b, jitter=0.0)
        assert np.array_equal(a, b)

    def test_invalid_digit_rejected(self):
        with pytest.raises(DatasetError):
            render_digit(10, np.random.default_rng(0))

    def test_too_few_samples_rejected(self):
        with pytest.raises(DatasetError):
            load_digits(n_train=5, n_test=30)

    def test_classes_are_separable(self):
        # The substitute must be learnable: a trivial nearest-mean
        # classifier should already beat chance by a wide margin.
        train, test = load_digits(n_train=300, n_test=100)
        assert nearest_mean_accuracy(train, test) > 0.6

    def test_images_have_ink_and_background(self):
        train, _ = load_digits(n_train=30, n_test=10)
        assert train.images.max() > 150   # strokes present
        mean = train.images.mean()
        assert 10 < mean < 120            # mostly background


class TestShapes:
    def test_geometry(self):
        train, test = load_shapes(n_train=40, n_test=20)
        assert train.images.shape == (40, 784)
        assert train.n_classes == 10
        assert len(SHAPE_CLASSES) == 10

    def test_deterministic_for_seed(self):
        a, _ = load_shapes(n_train=20, n_test=10, seed=4)
        b, _ = load_shapes(n_train=20, n_test=10, seed=4)
        assert np.array_equal(a.images, b.images)

    def test_silhouettes_are_filled(self):
        # A silhouette should have a substantial filled interior.
        rng = np.random.default_rng(0)
        image = render_shape(1, rng, jitter=0.0)  # square
        assert (image > 200).mean() > 0.15

    def test_invalid_class_rejected(self):
        with pytest.raises(DatasetError):
            render_shape(12, np.random.default_rng(0))

    def test_classes_are_separable(self):
        train, test = load_shapes(n_train=300, n_test=100)
        assert nearest_mean_accuracy(train, test) > 0.45


class TestSpoken:
    def test_geometry_is_13x13(self):
        train, test = load_spoken(n_train=40, n_test=20)
        assert train.images.shape == (40, 169)
        assert train.side == 13

    def test_deterministic_for_seed(self):
        a, _ = load_spoken(n_train=20, n_test=10, seed=4)
        b, _ = load_spoken(n_train=20, n_test=10, seed=4)
        assert np.array_equal(a.images, b.images)

    def test_invalid_class_rejected(self):
        with pytest.raises(DatasetError):
            render_utterance(-1, np.random.default_rng(0))

    def test_harder_than_vision_workloads(self):
        # The paper reports much lower accuracies on SAD; the generator
        # mirrors that with heavier intra-class variability, so
        # nearest-mean should do clearly worse than on digits.
        d_train, d_test = load_digits(n_train=300, n_test=100)
        s_train, s_test = load_spoken(n_train=300, n_test=100)
        assert nearest_mean_accuracy(s_train, s_test) < nearest_mean_accuracy(
            d_train, d_test
        )

    def test_classes_still_learnable(self):
        train, test = load_spoken(n_train=300, n_test=100)
        assert nearest_mean_accuracy(train, test) > 0.3
