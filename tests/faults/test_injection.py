"""Injection-hook tests: bit-identity at rate 0.0, determinism, degradation.

The acceptance bar of the robustness study:

* a null injector (all rates 0.0) must leave every inference path
  **bit-identical** to the uninjected one — for the quantized MLP and
  for both SNN forward paths;
* corruption must be exactly reproducible given a seed;
* the trained models handed to injection helpers must never be
  mutated.
"""

import numpy as np
import pytest

from repro.faults import (
    FaultConfig,
    FaultInjector,
    corrupt_spiking_network,
    faulty_snn_wot,
    null_injector,
)
from repro.mlp.quantized import QuantizedMLP
from repro.snn.coding import SpikeTrain
from repro.snn.snn_wot import SNNWithoutTime


def make_injector(**rates) -> FaultInjector:
    return FaultInjector(FaultConfig(**rates))


class TestInjectorStreams:
    def test_null_detection(self):
        assert null_injector().null
        assert not make_injector(weight_bit_flip_ber=0.1).null

    def test_one_shot_corruption_is_repeatable(self):
        injector = make_injector(weight_bit_flip_ber=0.2, seed=5)
        codes = np.arange(256, dtype=np.int64)
        first = injector.corrupt_weight_codes(codes, "bank")
        second = injector.corrupt_weight_codes(codes, "bank")
        assert np.array_equal(first, second)

    def test_streams_are_independent(self):
        injector = make_injector(weight_bit_flip_ber=0.3, seed=5)
        codes = np.arange(512, dtype=np.int64) % 256
        a = injector.corrupt_weight_codes(codes, "bank-a")
        b = injector.corrupt_weight_codes(codes, "bank-b")
        assert not np.array_equal(a, b)

    def test_seed_changes_corruption(self):
        codes = np.arange(512, dtype=np.int64) % 256
        a = make_injector(weight_bit_flip_ber=0.2, seed=1).corrupt_weight_codes(
            codes, "bank"
        )
        b = make_injector(weight_bit_flip_ber=0.2, seed=2).corrupt_weight_codes(
            codes, "bank"
        )
        assert not np.array_equal(a, b)

    def test_null_weight_corruption_returns_same_object(self):
        injector = null_injector()
        codes = np.arange(10, dtype=np.int64)
        weights = np.linspace(0, 255, 10)
        assert injector.corrupt_weight_codes(codes, "x") is codes
        # Crucially no rounding happens on the float path either.
        assert injector.corrupt_weights(weights, "x") is weights


class TestQuantizedMLPInjection:
    def test_null_injector_is_bit_identical(self, trained_mlp, digits_small):
        _, test_set = digits_small
        clean = QuantizedMLP(trained_mlp)
        nulled = QuantizedMLP(trained_mlp, injector=null_injector())
        assert np.array_equal(nulled.w_hidden_codes, clean.w_hidden_codes)
        assert np.array_equal(nulled.w_output_codes, clean.w_output_codes)
        assert np.array_equal(
            nulled.predict_dataset(test_set), clean.predict_dataset(test_set)
        )

    def test_corruption_deterministic_given_seed(self, trained_mlp, digits_small):
        _, test_set = digits_small
        a = QuantizedMLP(
            trained_mlp, injector=make_injector(weight_bit_flip_ber=0.02, seed=9)
        )
        b = QuantizedMLP(
            trained_mlp, injector=make_injector(weight_bit_flip_ber=0.02, seed=9)
        )
        assert np.array_equal(a.w_hidden_codes, b.w_hidden_codes)
        assert np.array_equal(
            a.predict_dataset(test_set), b.predict_dataset(test_set)
        )

    def test_high_ber_degrades_accuracy(self, trained_mlp, digits_small):
        _, test_set = digits_small
        labels = np.asarray(test_set.labels)
        clean = QuantizedMLP(trained_mlp).predict_dataset(test_set)
        faulty = QuantizedMLP(
            trained_mlp, injector=make_injector(weight_bit_flip_ber=0.25, seed=0)
        ).predict_dataset(test_set)
        assert (faulty == labels).mean() < (clean == labels).mean()

    def test_trained_model_not_mutated(self, trained_mlp):
        before = trained_mlp.w_hidden.copy()
        QuantizedMLP(
            trained_mlp,
            injector=make_injector(weight_bit_flip_ber=0.3, dead_neuron_rate=0.5),
        )
        assert np.array_equal(trained_mlp.w_hidden, before)

    def test_dead_hidden_units_zero_output_columns(self, trained_mlp):
        quantized = QuantizedMLP(
            trained_mlp, injector=make_injector(dead_neuron_rate=1.0)
        )
        assert not quantized.w_output_codes.any()


class TestSpikingNetworkInjection:
    def test_null_injector_returns_network_itself(self, trained_snn):
        assert corrupt_spiking_network(trained_snn, null_injector()) is trained_snn

    def test_weight_corruption_clones(self, trained_snn):
        before = trained_snn.weights.copy()
        clone = corrupt_spiking_network(
            trained_snn, make_injector(weight_bit_flip_ber=0.1, seed=3)
        )
        assert clone is not trained_snn
        assert not np.array_equal(clone.weights, before)
        assert np.array_equal(trained_snn.weights, before)  # untouched
        assert np.array_equal(clone.neuron_labels, trained_snn.neuron_labels)

    def test_corruption_deterministic_given_seed(self, trained_snn):
        a = corrupt_spiking_network(
            trained_snn, make_injector(weight_bit_flip_ber=0.1, seed=3)
        )
        b = corrupt_spiking_network(
            trained_snn, make_injector(weight_bit_flip_ber=0.1, seed=3)
        )
        assert np.array_equal(a.weights, b.weights)

    def test_dead_neurons_cannot_fire(self, trained_snn):
        clone = corrupt_spiking_network(
            trained_snn, make_injector(dead_neuron_rate=1.0)
        )
        assert not clone.weights.any()
        assert clone.population.thresholds.min() >= 1e12

    def test_spike_faults_attach_injector(self, trained_snn):
        clone = corrupt_spiking_network(
            trained_snn, make_injector(spike_drop_rate=0.2)
        )
        assert clone.fault_injector is not None
        assert trained_snn.fault_injector is None


class TestSNNwotInjection:
    def test_null_injector_is_bit_identical(self, trained_snn, digits_small):
        _, test_set = digits_small
        clean = SNNWithoutTime(trained_snn)
        nulled = SNNWithoutTime(trained_snn, injector=null_injector())
        assert nulled.weights is trained_snn.weights  # no copy at all
        assert np.array_equal(
            nulled.predict_dataset(test_set), clean.predict_dataset(test_set)
        )

    def test_corruption_deterministic_given_seed(self, trained_snn, digits_small):
        _, test_set = digits_small
        a = faulty_snn_wot(
            trained_snn, make_injector(weight_bit_flip_ber=0.05, seed=2)
        )
        b = faulty_snn_wot(
            trained_snn, make_injector(weight_bit_flip_ber=0.05, seed=2)
        )
        assert np.array_equal(a.weights, b.weights)
        assert np.array_equal(
            a.predict_dataset(test_set), b.predict_dataset(test_set)
        )

    def test_trained_weights_not_mutated(self, trained_snn):
        before = trained_snn.weights.copy()
        faulty_snn_wot(
            trained_snn,
            make_injector(weight_bit_flip_ber=0.2, dead_neuron_rate=0.5),
        )
        assert np.array_equal(trained_snn.weights, before)

    def test_dead_lanes_have_zero_potential(self, trained_snn, digits_small):
        _, test_set = digits_small
        model = faulty_snn_wot(trained_snn, make_injector(dead_neuron_rate=1.0))
        assert not model.potentials(test_set.images[:4]).any()

    def test_count_faults_stay_in_range(self, trained_snn, digits_small):
        _, test_set = digits_small
        model = faulty_snn_wot(
            trained_snn,
            make_injector(spike_drop_rate=0.3, spike_spurious_rate=0.3),
        )
        counts = model.spike_counts(test_set.images[:4])
        cap = trained_snn.config.max_spikes_per_pixel
        assert counts.min() >= 0 and counts.max() <= cap


class TestSpikeTrainCorruption:
    def make_train(self, n=200) -> SpikeTrain:
        rng = np.random.default_rng(0)
        return SpikeTrain(
            times=np.sort(rng.uniform(0, 500.0, n)),
            inputs=rng.integers(0, 64, n),
            n_inputs=64,
            duration=500.0,
        )

    def test_null_returns_same_object(self):
        train = self.make_train()
        assert null_injector().corrupt_spike_train(train, "s") is train

    def test_full_drop_empties_train(self):
        train = self.make_train()
        out = make_injector(spike_drop_rate=1.0).corrupt_spike_train(train, "s")
        assert out.n_spikes == 0
        assert out.n_inputs == train.n_inputs

    def test_spurious_spikes_added_within_duration(self):
        train = self.make_train()
        out = make_injector(spike_spurious_rate=0.5, seed=1).corrupt_spike_train(
            train, "s"
        )
        assert out.n_spikes > 0
        assert out.times.max() <= train.duration
        assert out.inputs.max() < train.n_inputs


class TestTransientUpsets:
    def test_rate_zero_never_touches_registers(self):
        accumulators = np.arange(8, dtype=np.int64)
        before = accumulators.copy()
        injector = null_injector()
        for _ in range(50):
            injector.maybe_upset(accumulators, "dp")
        assert np.array_equal(accumulators, before)

    def test_rate_one_flips_exactly_one_bit_per_cycle(self):
        accumulators = np.zeros(8, dtype=np.int64)
        injector = make_injector(transient_upset_rate=1.0, seed=4)
        injector.maybe_upset(accumulators, "dp")
        changed = accumulators[accumulators != 0]
        assert changed.size == 1
        value = int(changed[0])
        assert value & (value - 1) == 0  # a single set bit

    def test_upset_sequence_deterministic(self):
        def run(seed):
            acc = np.zeros(16, dtype=np.int64)
            injector = make_injector(transient_upset_rate=0.5, seed=seed)
            for _ in range(20):
                injector.maybe_upset(acc, "dp")
            return acc

        assert np.array_equal(run(7), run(7))
        assert not np.array_equal(run(7), run(8))


class TestFoldedSimulatorInjection:
    def test_upsets_perturb_folded_mlp_outputs(self, trained_mlp, digits_small):
        from repro.hardware.cyclesim import FoldedMLPSimulator

        _, test_set = digits_small
        quantized = QuantizedMLP(trained_mlp)
        image = test_set.normalized()[0]
        clean_codes, _ = FoldedMLPSimulator(quantized, ni=64).run_image(image)
        null_codes, _ = FoldedMLPSimulator(
            quantized, ni=64, injector=null_injector()
        ).run_image(image)
        assert np.array_equal(null_codes, clean_codes)
        upset_sim = FoldedMLPSimulator(
            quantized, ni=64, injector=make_injector(transient_upset_rate=1.0, seed=6)
        )
        upset_codes, _ = upset_sim.run_image(image)
        assert not np.array_equal(upset_codes, clean_codes)
