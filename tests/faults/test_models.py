"""Tests for the fault descriptions and bit-level corruption primitives."""

import multiprocessing

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    FaultConfig,
    flip_bits,
    perturb_counts,
    sample_dead_mask,
    stuck_at,
)


class TestFaultConfig:
    def test_default_is_null(self):
        config = FaultConfig().validate()
        assert config.null
        assert not config.affects_weights
        assert not config.affects_spikes

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ConfigError, match="weight_bit_flip_ber"):
            FaultConfig(weight_bit_flip_ber=1.5).validate()
        with pytest.raises(ConfigError, match="spike_drop_rate"):
            FaultConfig(spike_drop_rate=-0.1).validate()

    def test_overlapping_stuck_rates_rejected(self):
        with pytest.raises(ConfigError, match="stuck_at"):
            FaultConfig(stuck_at_zero_rate=0.6, stuck_at_one_rate=0.6).validate()

    def test_affects_weights(self):
        assert FaultConfig(weight_bit_flip_ber=0.01).affects_weights
        assert FaultConfig(stuck_at_one_rate=0.01).affects_weights
        assert not FaultConfig(spike_drop_rate=0.5).affects_weights

    def test_affects_spikes(self):
        assert FaultConfig(spike_drop_rate=0.1).affects_spikes
        assert FaultConfig(spike_spurious_rate=0.1).affects_spikes
        assert not FaultConfig(weight_bit_flip_ber=0.5).affects_spikes

    def test_with_seed_only_changes_seed(self):
        config = FaultConfig(weight_bit_flip_ber=0.25, seed=1)
        reseeded = config.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.weight_bit_flip_ber == 0.25

    def test_scaled_multiplies_and_clips(self):
        config = FaultConfig(weight_bit_flip_ber=0.4, spike_drop_rate=0.8)
        half = config.scaled(0.5)
        assert half.weight_bit_flip_ber == pytest.approx(0.2)
        doubled = config.scaled(2.0)
        assert doubled.spike_drop_rate == 1.0  # clipped

    def test_scaled_rejects_negative_severity(self):
        with pytest.raises(ConfigError):
            FaultConfig().scaled(-1.0)


class TestFlipBits:
    def test_zero_ber_returns_same_object(self, rng):
        codes = np.arange(10, dtype=np.int64)
        assert flip_bits(codes, 0.0, rng) is codes

    def test_deterministic_given_generator_seed(self):
        codes = np.arange(256, dtype=np.int64) % 200
        a = flip_bits(codes, 0.1, np.random.default_rng(3))
        b = flip_bits(codes, 0.1, np.random.default_rng(3))
        c = flip_bits(codes, 0.1, np.random.default_rng(4))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_ber_one_inverts_every_bit(self, rng):
        codes = np.array([0, 1, 0x55, 0xFF], dtype=np.int64)
        flipped = flip_bits(codes, 1.0, rng)
        assert np.array_equal(flipped, codes ^ 0xFF)

    def test_unsigned_range_preserved(self, rng):
        codes = np.arange(256, dtype=np.int64)
        flipped = flip_bits(codes, 0.5, rng)
        assert flipped.min() >= 0 and flipped.max() <= 255

    def test_signed_range_preserved(self, rng):
        codes = np.arange(-128, 128, dtype=np.int64)
        flipped = flip_bits(codes, 0.5, rng, signed=True)
        assert flipped.min() >= -128 and flipped.max() <= 127

    def test_signed_msb_flip_changes_sign(self, rng):
        # Flipping all bits of two's-complement x yields -x - 1.
        codes = np.array([5, -17, 100], dtype=np.int64)
        flipped = flip_bits(codes, 1.0, rng, signed=True)
        assert np.array_equal(flipped, -codes - 1)


class TestStuckAt:
    def test_zero_rates_return_same_object(self, rng):
        codes = np.arange(10, dtype=np.int64)
        assert stuck_at(codes, 0.0, 0.0, rng) is codes

    def test_all_stuck_at_zero(self, rng):
        codes = np.arange(1, 9, dtype=np.int64)
        assert np.array_equal(stuck_at(codes, 1.0, 0.0, rng), np.zeros(8))

    def test_all_stuck_at_one_unsigned(self, rng):
        codes = np.arange(8, dtype=np.int64)
        assert np.array_equal(stuck_at(codes, 0.0, 1.0, rng), np.full(8, 255))

    def test_all_stuck_at_one_signed_is_minus_one(self, rng):
        codes = np.arange(8, dtype=np.int64)
        stuck = stuck_at(codes, 0.0, 1.0, rng, signed=True)
        assert np.array_equal(stuck, np.full(8, -1))

    def test_partition_never_overlaps(self):
        # With complementary rates every synapse is stuck, each exactly once.
        codes = np.full(10_000, 7, dtype=np.int64)
        stuck = stuck_at(codes, 0.5, 0.5, np.random.default_rng(0))
        assert set(np.unique(stuck)) <= {0, 255}

    def test_deterministic(self):
        codes = np.arange(500, dtype=np.int64) % 256
        a = stuck_at(codes, 0.1, 0.1, np.random.default_rng(11))
        b = stuck_at(codes, 0.1, 0.1, np.random.default_rng(11))
        assert np.array_equal(a, b)


class TestDeadMaskAndCounts:
    def test_dead_mask_rate_zero_all_false(self, rng):
        assert not sample_dead_mask(50, 0.0, rng).any()

    def test_dead_mask_rate_one_all_true(self, rng):
        assert sample_dead_mask(50, 1.0, rng).all()

    def test_perturb_counts_zero_rates_same_object(self, rng):
        counts = np.arange(10, dtype=np.int64)
        assert perturb_counts(counts, 0.0, 0.0, rng, cap=10) is counts

    def test_perturb_counts_full_drop_silences(self, rng):
        counts = np.arange(1, 11, dtype=np.int64)
        out = perturb_counts(counts, 1.0, 0.0, rng, cap=10)
        assert not out.any()

    def test_perturb_counts_respects_cap(self, rng):
        counts = np.full(100, 10, dtype=np.int64)
        out = perturb_counts(counts, 0.0, 5.0, rng, cap=10)
        assert out.min() >= 0 and out.max() <= 10

    def test_perturb_counts_spurious_can_wake_silent_pixels(self):
        counts = np.zeros(2000, dtype=np.int64)
        out = perturb_counts(
            counts, 0.0, 1.0, np.random.default_rng(2), cap=10
        )
        assert out.sum() > 0


class TestEndpointsConsumeNoRng:
    """Rates of exactly 0.0 and 1.0 are deterministic *and* draw-free.

    A sweep that includes the endpoints must not shift the RNG stream
    position of whatever faults come next — the endpoint paths return
    their deterministic result without touching the generator, which
    we verify by comparing the next draw against a fresh generator.
    """

    @staticmethod
    def _next_draw(rng):
        return float(rng.random())

    def test_flip_bits_ber_one_draw_free(self):
        codes = np.arange(64, dtype=np.int64)
        rng = np.random.default_rng(5)
        flip_bits(codes, 1.0, rng)
        assert self._next_draw(rng) == self._next_draw(np.random.default_rng(5))

    def test_flip_bits_ber_zero_draw_free(self):
        rng = np.random.default_rng(5)
        flip_bits(np.arange(64, dtype=np.int64), 0.0, rng)
        assert self._next_draw(rng) == self._next_draw(np.random.default_rng(5))

    def test_stuck_at_one_rates_draw_free(self):
        codes = np.arange(64, dtype=np.int64)
        for zero_rate, one_rate in ((1.0, 0.0), (0.0, 1.0)):
            rng = np.random.default_rng(6)
            stuck_at(codes, zero_rate, one_rate, rng)
            assert self._next_draw(rng) == self._next_draw(
                np.random.default_rng(6)
            )

    def test_dead_mask_endpoints_draw_free(self):
        for rate in (0.0, 1.0):
            rng = np.random.default_rng(7)
            sample_dead_mask(32, rate, rng)
            assert self._next_draw(rng) == self._next_draw(
                np.random.default_rng(7)
            )

    def test_perturb_counts_full_drop_draw_free(self):
        counts = np.arange(1, 65, dtype=np.int64)
        rng = np.random.default_rng(8)
        out = perturb_counts(counts, 1.0, 0.0, rng, cap=10)
        assert not out.any()
        assert self._next_draw(rng) == self._next_draw(np.random.default_rng(8))


def _flip_mask_in_child(seed, queue):
    """Child-process probe: the XOR mask corrupt_weight_codes applies.

    Module-level so spawn-started children can unpickle it.
    """
    config = FaultConfig(
        weight_bit_flip_ber=0.05,
        stuck_at_zero_rate=0.01,
        stuck_at_one_rate=0.01,
        seed=seed,
    )
    codes = np.arange(4096, dtype=np.int64) % 256
    corrupted = FaultInjector(config).corrupt_weight_codes(codes, "determinism")
    queue.put(np.asarray(codes ^ corrupted, dtype=np.int64).tobytes())


class TestCrossStartMethodDeterminism:
    """The same seed yields identical flip masks in fork and spawn workers.

    Fault corruption is applied inside worker shards; the pool picks
    fork or spawn per platform, so a seed must mean the same corruption
    under both start methods (and in the parent).
    """

    def _mask_under(self, method, seed):
        ctx = multiprocessing.get_context(method)
        queue = ctx.Queue()
        proc = ctx.Process(target=_flip_mask_in_child, args=(seed, queue))
        proc.start()
        try:
            blob = queue.get(timeout=60.0)
        finally:
            proc.join(timeout=60.0)
        return np.frombuffer(blob, dtype=np.int64)

    def test_same_seed_same_mask_across_fork_and_spawn(self):
        methods = [
            m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
        ]
        if len(methods) < 2:
            pytest.skip("platform lacks one of fork/spawn")
        masks = {m: self._mask_under(m, seed=123) for m in methods}
        # Parent-side reference computed with no multiprocessing at all.
        config = FaultConfig(
            weight_bit_flip_ber=0.05,
            stuck_at_zero_rate=0.01,
            stuck_at_one_rate=0.01,
            seed=123,
        )
        codes = np.arange(4096, dtype=np.int64) % 256
        reference = codes ^ FaultInjector(config).corrupt_weight_codes(
            codes, "determinism"
        )
        for method in methods:
            np.testing.assert_array_equal(masks[method], reference)
        assert reference.any()  # the probe actually corrupted something

    def test_different_seeds_differ(self):
        method = multiprocessing.get_all_start_methods()[0]
        a = self._mask_under(method, seed=123)
        b = self._mask_under(method, seed=124)
        assert not np.array_equal(a, b)
