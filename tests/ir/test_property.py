"""Property tests: random mini-programs, serial vs vectorized bitwise.

The bit-identity contract is a property of the shared instruction walk,
not of any particular lowering — so these tests build *random* plans
from the deterministic op subset and assert the serial interpreter and
the vectorized executor agree bitwise on every one.  LFSR_FILL gets its
own input-free programs (the generator op has no batch axis): the
serial walk runs the scalar ``HardwareGaussian`` bit-walk, the
vectorized walk the ``rng_vec`` bulk generator, and both must match.
"""

import numpy as np
import pytest

from repro.core.errors import BackendUnsupported
from repro.hardware.rng_hw import HardwareGaussian
from repro.ir import run_plan, run_plan_serial
from repro.ir import ops
from repro.ir.backends import get_backend
from repro.ir.compile import _Builder

N_RANDOM_PROGRAMS = 20


def _random_program(seed):
    """One random deterministic pipeline ending in THRESH/STORE."""
    rng = np.random.default_rng(seed)
    n_inputs = int(rng.integers(4, 12))
    b = _Builder("mlp")
    b.buffer("x", "input")
    b.emit(
        ops.LOAD_V, "x",
        transform=str(rng.choice(["raw", "norm01"])),
    )
    cur, width = "x", n_inputs
    for k in range(int(rng.integers(2, 6))):
        op = str(
            rng.choice(["gemv", "add", "scale", "relu", "act", "quant"])
        )
        if op == "gemv":
            out_width = int(rng.integers(3, 10))
            w = b.const(f"w{k}", rng.standard_normal((out_width, width)))
            cur = b.emit(ops.GEMV, b.buffer(f"t{k}", "temp"), (cur, w))
            width = out_width
        elif op == "add":
            c = b.const(f"c{k}", rng.standard_normal(width))
            cur = b.emit(ops.ADD, b.buffer(f"t{k}", "temp"), (cur, c))
        elif op == "scale":
            cur = b.emit(
                ops.SCALE, b.buffer(f"t{k}", "temp"), (cur,),
                scale=float(rng.uniform(0.1, 2.0)),
            )
        elif op == "relu":
            cur = b.emit(ops.RELU, b.buffer(f"t{k}", "temp"), (cur,))
        elif op == "act":
            if rng.random() < 0.5:
                cur = b.emit(
                    ops.ACT, b.buffer(f"t{k}", "temp"), (cur,),
                    kernel="sigmoid", slope=float(rng.uniform(0.5, 3.0)),
                )
            else:
                cur = b.emit(
                    ops.ACT, b.buffer(f"t{k}", "temp"), (cur,),
                    kernel="step",
                )
        else:  # quant
            cur = b.emit(
                ops.QUANT, b.buffer(f"t{k}", "temp", "int64"), (cur,),
                scale=float(rng.uniform(0.01, 0.2)),
                min_code=-128, max_code=127,
            )
    winner = b.buffer("winner", "temp", "int64")
    b.emit(ops.THRESH, winner, (cur,))
    b.store("labels", winner)
    batch = rng.integers(0, 256, size=(int(rng.integers(1, 33)), n_inputs))
    return b.finish(), batch.astype(np.float64)


def _lfsr_program(seeds, resolution, count):
    """Input-free generator program: LFSR_FILL then STORE."""
    b = _Builder("mlp")
    g = b.buffer("g", "temp")
    b.emit(
        ops.LFSR_FILL, g, (),
        seeds=tuple(int(s) for s in seeds),
        resolution=int(resolution),
        count=int(count),
    )
    b.store("samples", g, dtype="float64")
    return b.finish(outputs=("samples",))


class TestRandomPrograms:
    @pytest.mark.parametrize("seed", range(N_RANDOM_PROGRAMS))
    def test_serial_equals_vectorized(self, seed):
        plan, batch = _random_program(seed)
        serial = run_plan_serial(plan, batch)
        vectorized = run_plan(plan, batch)
        assert serial.dtype == vectorized.dtype
        np.testing.assert_array_equal(serial, vectorized)

    def test_block_size_invariance(self):
        plan, batch = _random_program(777)
        full = run_plan(plan, batch)
        for block in (1, 3, 7):
            chunked = np.concatenate(
                [
                    run_plan(plan, batch[i : i + block])
                    for i in range(0, len(batch), block)
                ]
            )
            np.testing.assert_array_equal(chunked, full)


class TestBackendsOnRandomPrograms:
    """Every available backend over random plans: bitwise or refuse."""

    @pytest.mark.parametrize("seed", range(0, N_RANDOM_PROGRAMS, 3))
    def test_matches_serial_or_refuses(self, backend_name, seed):
        plan, batch = _random_program(seed)
        engine = get_backend(backend_name)
        if engine.supports(plan) is not None:
            with pytest.raises(BackendUnsupported):
                engine.run(plan, batch)
            return
        serial = run_plan_serial(plan, batch)
        got = run_plan(plan, batch, backend=backend_name)
        assert got.dtype == serial.dtype
        np.testing.assert_array_equal(got, serial)

    def test_lfsr_program(self, backend_name):
        plan = _lfsr_program(TestLfsrFill.SEEDS, 8, 129)
        engine = get_backend(backend_name)
        if engine.supports(plan) is not None:
            with pytest.raises(BackendUnsupported):
                engine.run(plan)
            return
        np.testing.assert_array_equal(
            run_plan(plan, backend=backend_name), run_plan_serial(plan)
        )


class TestLfsrFill:
    SEEDS = (11, 313, 5179, 40503)

    @pytest.mark.parametrize("resolution,count", [(8, 257), (12, 64)])
    def test_serial_equals_vectorized(self, resolution, count):
        plan = _lfsr_program(self.SEEDS, resolution, count)
        serial = run_plan_serial(plan)
        vectorized = run_plan(plan)
        assert serial.shape == (count,)
        np.testing.assert_array_equal(serial, vectorized)

    def test_serial_is_the_hardware_bit_walk(self):
        plan = _lfsr_program(self.SEEDS, 8, 100)
        oracle = HardwareGaussian(
            seeds=list(self.SEEDS), resolution=8
        ).samples(100)
        np.testing.assert_array_equal(run_plan_serial(plan), oracle)
