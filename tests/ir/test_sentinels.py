"""Numeric sentinels: corrupted plans are refused by every backend.

Fuzzes random mini-programs, poisons a float constant (or the input
batch) with NaN/Inf, and asserts that ``run_plan`` raises the typed
:class:`NumericSentinelError` instead of returning a prediction — for
**every** backend available in this environment (the ``backend_name``
parametrization from the IR conftest).  The sentinel lives around the
backend dispatch, so no engine can opt out of it.
"""

import numpy as np
import pytest

from repro.core.errors import BackendUnsupported, NumericSentinelError
from repro.ir import ops, run_plan
from repro.ir.backends import get_backend
from repro.ir.compile import _Builder
from repro.ir.execute import check_plan_consts

from .test_property import _random_program

N_FUZZ_SEEDS = 12


def _poison(plan, rng, value):
    """Overwrite one element of one float const with ``value``.

    Returns the poisoned const's name, or None when the plan has no
    float constants (possible for const-free random programs).
    """
    float_consts = [
        name
        for name, array in sorted(plan.consts.items())
        if np.asarray(array).dtype.kind == "f" and np.asarray(array).size
    ]
    if not float_consts:
        return None
    name = float_consts[int(rng.integers(len(float_consts)))]
    poisoned = np.array(plan.consts[name], dtype=np.float64)
    flat = poisoned.reshape(-1)
    flat[int(rng.integers(flat.size))] = value
    plan.consts[name] = poisoned
    return name


def _gemv_plan(weights):
    """Minimal LOAD_V -> GEMV -> STORE(float) pipeline."""
    b = _Builder("mlp")
    b.buffer("x", "input")
    b.emit(ops.LOAD_V, "x", transform="raw")
    w = b.const("w", weights)
    out = b.emit(ops.GEMV, b.buffer("h", "temp"), ("x", w))
    b.store("scores", out, dtype="float64")
    return b.finish(outputs=("scores",))


class TestPoisonedConsts:
    @pytest.mark.parametrize("seed", range(N_FUZZ_SEEDS))
    @pytest.mark.parametrize("value", [np.nan, np.inf, -np.inf])
    def test_every_backend_refuses_poisoned_plan(self, backend_name, seed, value):
        plan, batch = _random_program(seed)
        rng = np.random.default_rng(seed + 1000)
        if _poison(plan, rng, value) is None:
            pytest.skip("random program drew no float consts")
        with pytest.raises(NumericSentinelError):
            run_plan(plan, batch, backend=backend_name)

    def test_clean_plan_passes_the_const_check(self):
        plan, _batch = _random_program(0)
        check_plan_consts(plan)  # must not raise

    def test_sentinel_fires_before_backend_refusal(self):
        """int8-tiled refuses float plans — but corruption wins.

        The const check runs before dispatch, so even a backend that
        would refuse the plan reports the *corruption*, not its own
        unsupported-plan error: the operator sees the real problem.
        """
        plan = _gemv_plan(np.ones((3, 4)))
        plan.consts["w"] = np.full((3, 4), np.nan)
        with pytest.raises(NumericSentinelError):
            run_plan(plan, np.ones((2, 4)), backend="int8-tiled")


class TestPoisonedInputs:
    @pytest.mark.parametrize("value", [np.nan, np.inf])
    def test_non_finite_input_batch_refused(self, backend_name, value):
        plan = _gemv_plan(np.ones((3, 4)))
        batch = np.ones((2, 4))
        batch[1, 2] = value
        with pytest.raises((NumericSentinelError, BackendUnsupported)) as info:
            run_plan(plan, batch, backend=backend_name)
        if get_backend(backend_name).supports(plan) is None:
            # Backends that accept the plan must report the sentinel.
            assert info.type is NumericSentinelError


class TestPoisonedOutputs:
    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_overflow_to_inf_is_caught_at_the_output(self, backend_name):
        """Finite consts, finite inputs — but the GEMV overflows.

        1e200 * 1e200 exceeds float64 range, so the backend computes
        Inf scores; the output sentinel must refuse them even though
        both pre-dispatch checks passed.
        """
        plan = _gemv_plan(np.full((3, 4), 1e200))
        engine = get_backend(backend_name)
        if engine.supports(plan) is not None:
            with pytest.raises(BackendUnsupported):
                engine.run(plan, np.full((2, 4), 1e200))
            return
        with pytest.raises(NumericSentinelError, match="output"):
            run_plan(plan, np.full((2, 4), 1e200), backend=backend_name)

    def test_integer_label_outputs_are_exempt(self, backend_name):
        """The sentinel only inspects float arrays; labels pass."""
        plan, batch = _random_program(3)
        engine = get_backend(backend_name)
        if engine.supports(plan) is not None:
            pytest.skip("backend refuses this plan shape")
        labels = run_plan(plan, batch, backend=backend_name)
        assert labels.dtype.kind in "iu"
