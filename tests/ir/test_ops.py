"""Instruction-set and plan-structure invariants."""

import numpy as np
import pytest

from repro.core.errors import CompileError
from repro.ir import (
    PLAN_KINDS,
    BufferSpec,
    CompiledPlan,
    Instruction,
    compile_model,
    kind_of,
)
from repro.ir.ops import OPCODES


class TestInstruction:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(CompileError):
            Instruction("FROB", "x")

    def test_params_normalized_to_sorted_pairs(self):
        a = Instruction("GEMV", "y", ("x", "w"), (("cast", "int64"),))
        b = Instruction("GEMV", "y", ("x", "w"), (("cast", "int64"),))
        assert a == b
        assert a.param("cast") == "int64"
        assert a.param("missing", "fallback") == "fallback"

    def test_render_mentions_op_and_buffers(self):
        text = Instruction("ADD", "o", ("a", "b")).render()
        assert "ADD" in text and "o" in text and "a" in text


class TestCompiledPlan:
    def _plan(self):
        return CompiledPlan(
            "mlp",
            [
                Instruction("LOAD_V", "x", (), (("transform", "raw"),)),
                Instruction("LOAD_M", "w"),
                Instruction("GEMV", "y", ("x", "w")),
                Instruction("STORE", "labels", ("y",)),
            ],
            [
                BufferSpec("x", "input"),
                BufferSpec("w", "const"),
                BufferSpec("y", "temp"),
                BufferSpec("labels", "output", "int64"),
            ],
            {"w": np.eye(3)},
        )

    def test_valid_plan_builds(self):
        plan = self._plan()
        assert plan.outputs == ("labels",)
        assert not plan.requires_indices

    def test_undeclared_buffer_rejected(self):
        with pytest.raises(CompileError):
            CompiledPlan(
                "mlp",
                [Instruction("RELU", "ghost", ("ghost",))],
                [BufferSpec("labels", "output", "int64")],
                {},
            )

    def test_missing_const_rejected(self):
        with pytest.raises(CompileError):
            CompiledPlan(
                "mlp",
                [Instruction("LOAD_M", "w")],
                [BufferSpec("w", "const"), BufferSpec("labels", "output")],
                {},
            )

    def test_consts_frozen(self):
        plan = self._plan()
        with pytest.raises(ValueError):
            plan.consts["w"][0, 0] = 5.0

    def test_signature_stable_and_content_sensitive(self):
        a, b = self._plan(), self._plan()
        assert a.signature() == b.signature()
        consts = {"w": np.eye(3) * 2.0}
        c = CompiledPlan(
            a.kind, a.instructions, a.buffers, consts, outputs=a.outputs
        )
        assert c.signature() != a.signature()

    def test_skeleton_roundtrip(self):
        plan = self._plan()
        rebuilt = CompiledPlan.from_skeleton(
            plan.skeleton(), {"w": plan.consts["w"]}
        )
        assert rebuilt.signature() == plan.signature()
        assert rebuilt.instructions == plan.instructions
        assert rebuilt.buffers == plan.buffers

    def test_listing_covers_every_instruction(self):
        plan = self._plan()
        listing = plan.listing()
        for inst in plan.instructions:
            assert inst.op in listing
        assert "labels" in listing

    def test_to_doc_stable_keys(self):
        doc = self._plan().to_doc()
        assert set(doc) == {
            "kind", "instructions", "buffers", "outputs", "signature",
        }


class TestKindDispatch:
    def test_every_kind_compiles_and_reports_itself(
        self, trained_mlp, quantized_mlp, trained_snn, snnwot_model,
        snnbp_model,
    ):
        models = {
            "mlp": trained_mlp,
            "mlp-q": quantized_mlp,
            "snnwt": trained_snn,
            "snnwot": snnwot_model,
            "snnbp": snnbp_model,
        }
        assert set(models) == set(PLAN_KINDS)
        for kind, model in models.items():
            assert kind_of(model) == kind
            plan = compile_model(model)
            assert plan.kind == kind
            assert all(inst.op in OPCODES for inst in plan.instructions)

    def test_unknown_model_rejected(self):
        with pytest.raises(CompileError):
            compile_model(object())

    def test_live_injector_refused(self, trained_snn):
        class _Injector:
            null = False

        trained_snn_like = type(trained_snn).__new__(type(trained_snn))
        trained_snn_like.__dict__.update(trained_snn.__dict__)
        trained_snn_like.fault_injector = _Injector()
        with pytest.raises(CompileError):
            compile_model(trained_snn_like, kind="snnwt")
