"""Plan memo, train bundles, and the content-addressed encode cache."""

import numpy as np
import pytest

from repro.ir import (
    compile_model,
    get_plan,
    plan_cache_stats,
    reset_plan_cache,
    run_plan,
)
from repro.ir.plan_cache import (
    cached_trains,
    context_for,
    encode_signature,
    pack_trains,
    trains_arrays_for_shipping,
    trains_key,
    unpack_trains,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    reset_plan_cache()
    yield
    reset_plan_cache()


class TestPlanMemo:
    def test_compiles_once_per_object(self, trained_mlp):
        first = get_plan(trained_mlp)
        second = get_plan(trained_mlp)
        assert second is first
        stats = plan_cache_stats()
        assert stats["plan_hits"] == 1
        assert stats["plan_misses"] == 1
        assert stats["plan_compiles"] == 1

    def test_reset_clears_memo_and_counters(self, trained_mlp):
        get_plan(trained_mlp)
        reset_plan_cache()
        assert all(v == 0 for v in plan_cache_stats().values())
        get_plan(trained_mlp)
        assert plan_cache_stats()["plan_compiles"] == 1

    def test_failures_not_cached(self, trained_snn):
        from repro.core.errors import CompileError

        class _Injector:
            null = False

        model = type(trained_snn).__new__(type(trained_snn))
        model.__dict__.update(trained_snn.__dict__)
        model.fault_injector = _Injector()
        with pytest.raises(CompileError):
            get_plan(model, kind="snnwt")
        model.fault_injector = None
        assert get_plan(model, kind="snnwt").kind == "snnwt"


class TestTrainBundles:
    def test_pack_unpack_roundtrip(self, trained_snn, digits_small):
        _, test_set = digits_small
        images = np.asarray(test_set.images[:6])
        plan = compile_model(trained_snn)
        ctx = context_for(plan)
        trains = ctx.trains_for(images, list(range(len(images))))
        arrays = pack_trains(trains, range(len(images)))
        rebuilt = unpack_trains(arrays)
        assert sorted(rebuilt) == list(range(len(images)))
        for i, train in enumerate(trains):
            np.testing.assert_array_equal(rebuilt[i].times, train.times)
            np.testing.assert_array_equal(rebuilt[i].inputs, train.inputs)
            np.testing.assert_array_equal(
                rebuilt[i].modulation, train.modulation
            )
            assert rebuilt[i].n_inputs == train.n_inputs
            assert rebuilt[i].duration == train.duration

    def test_cached_trains_counts_hits(self, trained_snn, digits_small):
        _, test_set = digits_small
        images = np.asarray(test_set.images[:4])
        plan = compile_model(trained_snn)
        cached_trains(plan, images)
        first = plan_cache_stats()
        cached_trains(plan, images)
        second = plan_cache_stats()
        assert first["trains_misses"] == 1
        assert second["trains_hits"] == 1
        assert second["trains_misses"] == 1

    def test_disk_bundle_survives_memo_reset(
        self, trained_snn, digits_small
    ):
        _, test_set = digits_small
        images = np.asarray(test_set.images[:4])
        plan = compile_model(trained_snn)
        shipped = trains_arrays_for_shipping(plan, images)
        reset_plan_cache()
        # The in-memory memo is gone; the ArrayBundleCache bundle is
        # not, so the re-read must reproduce the same CSR arrays.
        again = trains_arrays_for_shipping(plan, images)
        assert set(again) == set(shipped)
        for name, array in shipped.items():
            np.testing.assert_array_equal(again[name], array)

    def test_warm_context_serves_without_reencoding(
        self, trained_snn, digits_small
    ):
        _, test_set = digits_small
        images = np.asarray(test_set.images[:8])
        plan = compile_model(trained_snn)
        ctx = context_for(plan, images, warm=True)
        assert ctx.cached_train_count() == len(images)
        cold = run_plan(plan, images, indices=list(range(len(images))))
        warm = run_plan(
            plan, images, indices=list(range(len(images))), ctx=ctx
        )
        np.testing.assert_array_equal(warm, cold)


class TestEncodeSignature:
    def test_weight_independent(self, trained_snn):
        plan = compile_model(trained_snn)
        swapped = type(trained_snn).__new__(type(trained_snn))
        swapped.__dict__.update(trained_snn.__dict__)
        swapped.weights = np.asarray(trained_snn.weights) * 0.5
        plan_swapped = compile_model(swapped, kind="snnwt")
        assert encode_signature(plan_swapped) == encode_signature(plan)
        images = np.zeros((2, plan.consts["weights"].shape[1]))
        assert trains_key(plan_swapped, images) == trains_key(plan, images)

    def test_rejects_plans_without_encode_metadata(self, trained_mlp):
        from repro.core.errors import CompileError

        with pytest.raises(CompileError):
            encode_signature(compile_model(trained_mlp))
