"""Fixtures for the execution-IR suite.

Builds the two derived model kinds (quantized MLP, no-time SNN) from
the session-scoped trained models, and trains the small SNN+BP model
once — so the per-kind golden tests share one training cost.

Tests that take a ``backend_name`` argument are parametrized over
every execution backend *available in this environment* — the
conformance hook: on a machine with torch or jax installed the
golden/property suites automatically grow torch/jax rows, with no
test-code changes.
"""

import pytest

from repro.mlp.quantized import QuantizedMLP
from repro.snn.snn_bp import train_snn_bp
from repro.snn.snn_wot import SNNWithoutTime


def pytest_generate_tests(metafunc):
    if "backend_name" in metafunc.fixturenames:
        from repro.ir.backends import available_backends

        metafunc.parametrize("backend_name", available_backends())


@pytest.fixture(scope="session")
def quantized_mlp(trained_mlp) -> QuantizedMLP:
    return QuantizedMLP(trained_mlp)


@pytest.fixture(scope="session")
def snnwot_model(trained_snn) -> SNNWithoutTime:
    return SNNWithoutTime(trained_snn)


@pytest.fixture(scope="session")
def snnbp_model(digits_small, snn_config_small):
    train_set, _ = digits_small
    return train_snn_bp(snn_config_small, train_set, epochs=4)
