"""Fixtures for the execution-IR suite.

Builds the two derived model kinds (quantized MLP, no-time SNN) from
the session-scoped trained models, and trains the small SNN+BP model
once — so the per-kind golden tests share one training cost.
"""

import pytest

from repro.mlp.quantized import QuantizedMLP
from repro.snn.snn_bp import train_snn_bp
from repro.snn.snn_wot import SNNWithoutTime


@pytest.fixture(scope="session")
def quantized_mlp(trained_mlp) -> QuantizedMLP:
    return QuantizedMLP(trained_mlp)


@pytest.fixture(scope="session")
def snnwot_model(trained_snn) -> SNNWithoutTime:
    return SNNWithoutTime(trained_snn)


@pytest.fixture(scope="session")
def snnbp_model(digits_small, snn_config_small):
    train_set, _ = digits_small
    return train_snn_bp(snn_config_small, train_set, epochs=4)
