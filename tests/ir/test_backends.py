"""Backend registry, selection precedence, and execution-path tests.

Covers the seams the golden/property conformance suites do not: name
resolution (flag > ``REPRO_IR_BACKEND`` > default, loud failure on
typos), the int8-tiled accept/refuse contract, the threaded row-block
scheduler's determinism, plan-cache single-flight counters under
concurrency, and the serving wiring (runner / server / worker spec).
"""

import threading

import numpy as np
import pytest

from repro.core.errors import BackendError, BackendUnsupported
from repro.ir import compile_model, run_plan, run_plan_serial
from repro.ir.backends import (
    DEFAULT_BACKEND,
    ENV_VAR,
    available_backends,
    backend_names,
    get_backend,
    list_backends,
    resolve_backend_name,
)


@pytest.fixture(scope="module")
def test_images(digits_small):
    _, test_set = digits_small
    return np.asarray(test_set.images)


class TestRegistry:
    def test_registration_order(self):
        names = backend_names()
        assert names[:4] == ["serial", "numpy", "numpy-tiled", "int8-tiled"]
        assert {"torch", "jax"} <= set(names)

    def test_numpy_backends_always_available(self):
        assert {"serial", "numpy", "numpy-tiled", "int8-tiled"} <= set(
            available_backends()
        )

    def test_default_backend_is_registered_and_available(self):
        assert DEFAULT_BACKEND in available_backends()

    def test_unknown_name_raises_typed(self):
        with pytest.raises(BackendError, match="unknown execution backend"):
            get_backend("no-such-backend")

    def test_listing_has_stable_keys(self):
        entries = list_backends()
        assert [e["name"] for e in entries] == backend_names()
        for entry in entries:
            assert set(entry) == {
                "name",
                "description",
                "available",
                "unavailable_reason",
                "default",
            }
        defaults = [e["name"] for e in entries if e["default"]]
        assert defaults == [DEFAULT_BACKEND]

    def test_unavailable_plugin_reports_reason(self):
        # torch/jax may or may not be installed; whichever state, the
        # availability report and require_available must agree.
        for name in ("torch", "jax"):
            engine = get_backend(name, require_available=False)
            if engine.available():
                engine.require_available()
            else:
                assert engine.unavailable_reason()
                with pytest.raises(BackendError, match="unavailable"):
                    get_backend(name)


class TestPrecedence:
    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend_name() == DEFAULT_BACKEND

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "serial")
        assert resolve_backend_name() == "serial"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "serial")
        assert resolve_backend_name("numpy") == "numpy"

    def test_unknown_explicit_name_raises(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with pytest.raises(BackendError):
            resolve_backend_name("fast-but-wrong")

    def test_unknown_env_value_raises_not_falls_back(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast-but-wrong")
        with pytest.raises(BackendError):
            resolve_backend_name()


class TestRunPlanDispatch:
    def test_backend_kwarg_routes(self, quantized_mlp, test_images):
        plan = compile_model(quantized_mlp)
        serial = run_plan(plan, test_images[:16], backend="serial")
        default = run_plan(plan, test_images[:16])
        np.testing.assert_array_equal(serial, default)

    def test_env_var_reaches_dispatch(
        self, monkeypatch, trained_mlp, test_images
    ):
        # int8-tiled refuses the float MLP plan, so seeing its typed
        # refusal out of run_plan proves the env override was honoured.
        plan = compile_model(trained_mlp)
        monkeypatch.setenv(ENV_VAR, "int8-tiled")
        with pytest.raises(BackendUnsupported):
            run_plan(plan, test_images[:4])

    def test_unknown_backend_kwarg_raises(self, quantized_mlp, test_images):
        plan = compile_model(quantized_mlp)
        with pytest.raises(BackendError):
            run_plan(plan, test_images[:4], backend="no-such-backend")


class TestInt8Tiled:
    def test_bitwise_on_quantized_plan(self, quantized_mlp, test_images):
        plan = compile_model(quantized_mlp)
        serial = run_plan_serial(plan, test_images)
        got = run_plan(plan, test_images, backend="int8-tiled")
        assert got.dtype == serial.dtype
        np.testing.assert_array_equal(got, serial)

    def test_refusal_is_typed_and_names_instruction(
        self, trained_snn, digits_small
    ):
        plan = compile_model(trained_snn)
        engine = get_backend("int8-tiled")
        reason = engine.supports(plan)
        assert reason is not None and "instruction" in reason
        _, test_set = digits_small
        with pytest.raises(BackendUnsupported, match="int8-tiled"):
            engine.run(
                plan, np.asarray(test_set.images[:4]), indices=[0, 1, 2, 3]
            )


class TestThreadedScheduler:
    def test_thread_count_invariance(
        self, monkeypatch, quantized_mlp, test_images
    ):
        """The threaded row-block merge is bitwise the serial result."""
        plan = compile_model(quantized_mlp)
        serial = run_plan_serial(plan, test_images)
        monkeypatch.setenv("REPRO_IR_THREADS", "1")
        single = run_plan(plan, test_images, backend="numpy-tiled")
        monkeypatch.setenv("REPRO_IR_THREADS", "4")
        threaded = run_plan(plan, test_images, backend="numpy-tiled")
        np.testing.assert_array_equal(single, serial)
        np.testing.assert_array_equal(threaded, serial)

    def test_schedule_splits_only_rowwise_exact_plans(
        self, monkeypatch, quantized_mlp, trained_mlp, test_images
    ):
        from repro.ir.runtime import ExecutionContext

        monkeypatch.setenv("REPRO_IR_THREADS", "4")
        engine = get_backend("numpy-tiled")
        q_plan = compile_model(quantized_mlp)
        blocks = engine._schedule(
            q_plan, test_images, list(range(len(test_images))),
            ExecutionContext(q_plan),
        )
        assert len(blocks) > 1
        assert blocks[0][0] == 0 and blocks[-1][1] == len(test_images)
        assert all(a[1] == b[0] for a, b in zip(blocks, blocks[1:]))
        # Float GEMVs are not rowwise-exact: never split.
        f_plan = compile_model(trained_mlp)
        assert engine._schedule(
            f_plan, test_images, list(range(len(test_images))),
            ExecutionContext(f_plan),
        ) == [(0, len(test_images))]

    def test_small_batches_stay_single_block(self, monkeypatch, quantized_mlp):
        from repro.ir.runtime import ExecutionContext

        monkeypatch.setenv("REPRO_IR_THREADS", "8")
        engine = get_backend("numpy-tiled")
        plan = compile_model(quantized_mlp)
        tiny = np.zeros((8, 784))
        assert engine._schedule(
            plan, tiny, list(range(8)), ExecutionContext(plan)
        ) == [(0, 8)]


class TestPlanCacheSingleFlight:
    def test_concurrent_cold_calls_compile_once(self, trained_mlp):
        from repro.ir.plan_cache import (
            get_plan,
            plan_cache_stats,
            reset_plan_cache,
        )

        reset_plan_cache()
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        plans = [None] * n_threads
        errors = []

        def worker(slot):
            try:
                barrier.wait()
                plans[slot] = get_plan(trained_mlp)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(plan is plans[0] for plan in plans)
        stats = plan_cache_stats()
        assert stats["plan_compiles"] == 1
        assert stats["plan_misses"] == 1
        assert stats["plan_hits"] == n_threads - 1
        reset_plan_cache()

    def test_concurrent_cached_trains_encode_once(self, trained_snn):
        from repro.ir.plan_cache import (
            cached_trains,
            get_plan,
            plan_cache_stats,
            reset_plan_cache,
        )

        reset_plan_cache()
        plan = get_plan(trained_snn)
        images = np.zeros((4, 784))
        n_threads = 6
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads
        errors = []

        def worker(slot):
            try:
                barrier.wait()
                results[slot] = cached_trains(plan, images, persist=False)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(result is results[0] for result in results)
        stats = plan_cache_stats()
        assert stats["trains_misses"] == 1
        assert stats["trains_hits"] == n_threads - 1
        reset_plan_cache()


class TestServingWiring:
    def test_plan_runner_pins_resolved_backend(self, quantized_mlp):
        from repro.ir.plan_cache import get_plan
        from repro.serve.engine import PlanRunner

        runner = PlanRunner(get_plan(quantized_mlp), backend="serial")
        assert runner.backend == "serial"
        assert PlanRunner(get_plan(quantized_mlp)).backend == DEFAULT_BACKEND

    def test_plan_runner_rejects_unknown_backend_at_construction(
        self, quantized_mlp
    ):
        from repro.ir.plan_cache import get_plan
        from repro.serve.engine import PlanRunner

        with pytest.raises(BackendError):
            PlanRunner(get_plan(quantized_mlp), backend="no-such-backend")

    def test_server_stats_report_backends(self, quantized_mlp, test_images):
        from repro.serve.engine import InferenceServer

        with InferenceServer.from_models(
            {"mlp-q": quantized_mlp}, images=test_images, backend="serial"
        ) as server:
            served = server.predict_many("mlp-q", indices=list(range(8)))
            stats = server.stats()
        assert stats["engines"] == {"mlp-q": "plan"}
        assert stats["backends"] == {"mlp-q": "serial"}
        expected = quantized_mlp.predict_images(test_images[:8])
        np.testing.assert_array_equal(served, expected)

    def test_build_runners_rejects_unknown_backend(self, quantized_mlp):
        from repro.serve.engine import build_runners

        with pytest.raises(BackendError):
            build_runners({"mlp-q": quantized_mlp}, backend="turbo")

    def test_swap_model_can_change_backend(self, quantized_mlp, test_images):
        from repro.serve.engine import InferenceServer

        with InferenceServer.from_models(
            {"mlp-q": quantized_mlp}, images=test_images, backend="serial"
        ) as server:
            server.swap_model("mlp-q", quantized_mlp, backend="numpy-tiled")
            assert server.stats()["backends"] == {"mlp-q": "numpy-tiled"}

    def test_worker_spec_ships_resolved_backend(self, quantized_mlp):
        from repro.serve.workers import _publish_plan

        spec = _publish_plan(
            "mlp-q", quantized_mlp, {}, None, None, False, backend="serial"
        )
        assert spec["kind"] == "plan"
        assert spec["backend"] == "serial"
