"""IR-driven cyclesim fast path vs the folded per-image simulators."""

import numpy as np
import pytest

from repro.core.errors import HardwareModelError
from repro.hardware.cyclesim import (
    FoldedMLPSimulator,
    FoldedSNNwotSimulator,
    FoldedSNNwtSimulator,
)
from repro.hardware.sweep import SweepGrid, run_sweep, sample_with_cyclesim
from repro.ir.cyclesim import closed_form_cycles, family_labels


@pytest.fixture(scope="module")
def cyclesim_images(digits_small):
    _, test_set = digits_small
    return np.asarray(test_set.images[:12])


class TestFamilyLabels:
    def test_mlp_matches_folded_simulator(
        self, quantized_mlp, cyclesim_images
    ):
        fast = family_labels("MLP", quantized_mlp, cyclesim_images)
        for ni in (1, 4):
            sim = FoldedMLPSimulator(quantized_mlp, ni=ni)
            # The folded simulator takes normalized pixels; the IR
            # label pass takes the raw serving-format batch.
            slow, cycles = sim.predict_with_cycles(
                cyclesim_images.astype(np.float64) / 255.0
            )
            np.testing.assert_array_equal(fast, slow)
            assert all(c == sim.cycles_per_image() for c in cycles)

    def test_snnwot_matches_folded_simulator(
        self, snnwot_model, cyclesim_images
    ):
        fast = family_labels("SNNwot", snnwot_model, cyclesim_images)
        for ni in (1, 4):
            sim = FoldedSNNwotSimulator(snnwot_model, ni=ni)
            slow, cycles = sim.predict_with_cycles(cyclesim_images)
            np.testing.assert_array_equal(fast, slow)
            assert all(c == sim.cycles_per_image() for c in cycles)

    def test_snnwt_matches_folded_simulator(
        self, trained_snn, cyclesim_images
    ):
        images = cyclesim_images[:6]
        fast = family_labels("SNNwt", trained_snn, images, seed=1)
        for ni in (1, 4):
            sim = FoldedSNNwtSimulator(trained_snn, ni=ni, seed=1)
            slow, cycles = sim.predict_with_cycles(images)
            np.testing.assert_array_equal(fast, slow)
            assert all(c == sim.cycles_per_image() for c in cycles)

    def test_unknown_family_rejected(self, quantized_mlp, cyclesim_images):
        with pytest.raises(HardwareModelError):
            family_labels("SNN-online", quantized_mlp, cyclesim_images)


class TestClosedFormCycles:
    def test_matches_simulator_formulas(
        self, quantized_mlp, snnwot_model, trained_snn
    ):
        for ni in (1, 2, 8, 16):
            assert closed_form_cycles("MLP", quantized_mlp, ni) == (
                FoldedMLPSimulator(quantized_mlp, ni=ni).cycles_per_image()
            )
            assert closed_form_cycles("SNNwot", snnwot_model, ni) == (
                FoldedSNNwotSimulator(
                    snnwot_model, ni=ni
                ).cycles_per_image()
            )
            assert closed_form_cycles("SNNwt", trained_snn, ni) == (
                FoldedSNNwtSimulator(
                    trained_snn, ni=ni
                ).cycles_per_image()
            )

    def test_rejects_expanded(self, quantized_mlp):
        with pytest.raises(HardwareModelError):
            closed_form_cycles("MLP", quantized_mlp, 0)


class TestSampleWithCyclesim:
    def _result(self, mlp_config, snn_config):
        grid = SweepGrid(
            hidden_sizes=(
                mlp_config.n_hidden,
                snn_config.n_neurons,
            ),
            families=("MLP", "SNNwot", "SNNwt"),
            fold_factors=(1, 4, 8),
            mlp_config=mlp_config,
            snn_config=snn_config,
        ).validate()
        return run_sweep(grid)

    def test_document_shape(
        self,
        quantized_mlp,
        snnwot_model,
        trained_snn,
        mlp_config_small,
        snn_config_small,
        digits_small,
    ):
        _, test_set = digits_small
        images = np.asarray(test_set.images[:6])
        labels = np.asarray(test_set.labels[:6])
        result = self._result(mlp_config_small, snn_config_small)
        doc = sample_with_cyclesim(
            result,
            {
                "MLP": quantized_mlp,
                "SNNwot": snnwot_model,
                "SNNwt": trained_snn,
            },
            images,
            labels=labels,
            n_samples=9,
            seed=7,
        )
        assert doc["n_sampled"] == 9
        assert doc["skipped_families"] == []
        assert set(doc["families"]) <= {"MLP", "SNNwot", "SNNwt"}
        for summary in doc["families"].values():
            assert summary["n_images"] == len(images)
            assert 0.0 <= summary["accuracy"] <= 1.0
        for point in doc["points"]:
            family = point["family"]
            assert point["ni"] >= 1
            assert point["sim_cycles_per_image"] >= 1
            assert point["sim_latency_us"] > 0.0
            assert family in {"MLP", "SNNwot", "SNNwt"}
        import json

        json.dumps(doc)  # the document must be JSON-ready

    def test_sampling_is_reproducible(
        self,
        quantized_mlp,
        mlp_config_small,
        snn_config_small,
        cyclesim_images,
    ):
        result = self._result(mlp_config_small, snn_config_small)
        kwargs = dict(n_samples=4, seed=3)
        first = sample_with_cyclesim(
            result, {"MLP": quantized_mlp}, cyclesim_images, **kwargs
        )
        second = sample_with_cyclesim(
            result, {"MLP": quantized_mlp}, cyclesim_images, **kwargs
        )
        assert first["points"] == second["points"]
        # Only MLP was supplied and its topology matches the grid, so
        # nothing is skipped — the other families were never requested.
        assert first["skipped_families"] == []

    def test_unknown_family_rejected(
        self, quantized_mlp, mlp_config_small, snn_config_small,
        cyclesim_images,
    ):
        result = self._result(mlp_config_small, snn_config_small)
        with pytest.raises(HardwareModelError):
            sample_with_cyclesim(
                result, {"SNN-online": quantized_mlp}, cyclesim_images
            )

    def test_no_matching_topology_raises(
        self, quantized_mlp, mlp_config_small, snn_config_small,
        cyclesim_images,
    ):
        grid = SweepGrid(
            hidden_sizes=(mlp_config_small.n_hidden + 1,),
            families=("MLP",),
            fold_factors=(1,),
            mlp_config=mlp_config_small,
            snn_config=snn_config_small,
        ).validate()
        result = run_sweep(grid)
        with pytest.raises(HardwareModelError):
            sample_with_cyclesim(
                result, {"MLP": quantized_mlp}, cyclesim_images
            )
