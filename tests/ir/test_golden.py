"""Per-kind golden tests: one bit-identity assertion per model kind.

These replace the retired pairwise engine-vs-oracle suites: the serial
interpreter is asserted against each kind's retained legacy oracle
once, and the vectorized executor against the interpreter once.  Any
new backend only needs to match the interpreter — enforced here for
every backend available in the environment (``backend_name`` rows):
each either reproduces the serial result bitwise or refuses the plan
with a typed ``BackendUnsupported``.
"""

import numpy as np
import pytest

from repro.core.errors import BackendUnsupported
from repro.ir import compile_model, run_plan, run_plan_serial
from repro.ir.backends import get_backend
from repro.snn.network import SNNTrainer


@pytest.fixture(scope="module")
def test_images(digits_small):
    _, test_set = digits_small
    return np.asarray(test_set.images[:48])


def _assert_serial_and_vectorized(model, images, oracle, indices=None):
    plan = compile_model(model)
    serial = run_plan_serial(plan, images, indices=indices)
    np.testing.assert_array_equal(serial, oracle)
    vectorized = run_plan(plan, images, indices=indices)
    np.testing.assert_array_equal(vectorized, serial)


def _assert_backend_conforms(backend_name, model, images, indices=None):
    """Bitwise-identical to the serial oracle, or a typed refusal."""
    plan = compile_model(model)
    engine = get_backend(backend_name)
    refusal = engine.supports(plan)
    if refusal is not None:
        with pytest.raises(BackendUnsupported):
            engine.run(plan, images, indices=indices)
        return
    serial = run_plan_serial(plan, images, indices=indices)
    got = np.asarray(run_plan(plan, images, indices=indices, backend=backend_name))
    assert got.dtype == np.asarray(serial).dtype
    np.testing.assert_array_equal(got, serial)


class TestGoldenPerKind:
    def test_mlp(self, trained_mlp, test_images):
        _assert_serial_and_vectorized(
            trained_mlp, test_images, trained_mlp.predict_images(test_images)
        )

    def test_mlp_q(self, quantized_mlp, test_images):
        _assert_serial_and_vectorized(
            quantized_mlp,
            test_images,
            quantized_mlp.predict_images(test_images),
        )

    def test_snnwot(self, snnwot_model, test_images):
        _assert_serial_and_vectorized(
            snnwot_model, test_images, snnwot_model.predict(test_images)
        )

    def test_snnbp(self, snnbp_model, test_images):
        _assert_serial_and_vectorized(
            snnbp_model, test_images, snnbp_model.predict(test_images)
        )

    def test_snnwt(self, trained_snn, digits_small):
        _, test_set = digits_small
        subset = test_set.take(24)
        oracle = SNNTrainer(trained_snn).predict_serial(subset)
        _assert_serial_and_vectorized(
            trained_snn,
            np.asarray(subset.images),
            oracle,
            indices=list(range(len(subset))),
        )


class TestBackendConformance:
    """Every available backend: bitwise-equal to serial, or typed refusal."""

    @pytest.mark.parametrize(
        "fixture",
        ["trained_mlp", "quantized_mlp", "snnwot_model", "snnbp_model"],
    )
    def test_deterministic_kinds(
        self, backend_name, fixture, request, test_images
    ):
        model = request.getfixturevalue(fixture)
        _assert_backend_conforms(backend_name, model, test_images)

    def test_snnwt(self, backend_name, trained_snn, digits_small):
        _, test_set = digits_small
        subset = test_set.take(24)
        _assert_backend_conforms(
            backend_name,
            trained_snn,
            np.asarray(subset.images),
            indices=list(range(len(subset))),
        )

    def test_int8_accepts_quantized_kind(self, quantized_mlp):
        plan = compile_model(quantized_mlp)
        assert get_backend("int8-tiled").supports(plan) is None

    def test_int8_refuses_float_kinds(self, trained_mlp, snnwot_model):
        engine = get_backend("int8-tiled")
        for model in (trained_mlp, snnwot_model):
            assert engine.supports(compile_model(model)) is not None


class TestTrainerPlanEngine:
    def test_predict_engines_agree(self, trained_snn, digits_small):
        _, test_set = digits_small
        subset = test_set.take(24)
        trainer = SNNTrainer(trained_snn)
        plan_labels = trainer.predict(subset)
        legacy_labels = trainer.predict(subset, engine="legacy")
        np.testing.assert_array_equal(plan_labels, legacy_labels)

    def test_unknown_engine_rejected(self, trained_snn, digits_small):
        from repro.core.errors import TrainingError

        _, test_set = digits_small
        with pytest.raises(TrainingError):
            SNNTrainer(trained_snn).predict(test_set, engine="turbo")

    def test_evaluate_routes_through_plan(self, trained_snn, digits_small):
        _, test_set = digits_small
        subset = test_set.take(24)
        trainer = SNNTrainer(trained_snn)
        plan_eval = trainer.evaluate(subset)
        legacy_eval = trainer.evaluate(subset, engine="legacy")
        assert plan_eval.accuracy == legacy_eval.accuracy
