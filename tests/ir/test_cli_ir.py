"""``repro ir-dump``: listings, stable JSON, and usage errors."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_USAGE, main
from repro.ir import PLAN_KINDS


class TestIrDump:
    @pytest.mark.parametrize("kind", PLAN_KINDS)
    def test_listing_for_every_kind(self, kind, capsys):
        assert main(["ir-dump", kind]) == 0
        out = capsys.readouterr().out
        assert kind in out
        assert "STORE" in out

    @pytest.mark.parametrize("kind", PLAN_KINDS)
    def test_json_has_stable_keys(self, kind, capsys):
        assert main(["ir-dump", kind, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {
            "kind", "instructions", "buffers", "outputs", "signature",
        }
        assert doc["kind"] == kind
        assert doc["outputs"] == ["labels"]

    def test_unknown_kind_exits_usage(self, capsys):
        assert main(["ir-dump", "transformer"]) == EXIT_USAGE
        err = capsys.readouterr().err
        assert "unknown" in err
        for kind in PLAN_KINDS:
            assert kind in err
