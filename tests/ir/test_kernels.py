"""Edge-case tests for the IR kernels and the tile kernels.

The shapes the model suites never exercise: empty batches, single-row
batches, non-contiguous and Fortran-ordered inputs, tiles larger than
the matrix, and single-row tiles — plus the exactness boundary of the
dgemm integer trick (fallback above 2**53) and the first-wins tie-break
of the fused argmax.
"""

import numpy as np
import pytest

from repro.ir import kernels
from repro.ir.backends import tiles


@pytest.fixture()
def int_matrices(rng):
    x = rng.integers(-128, 128, size=(13, 24)).astype(np.int64)
    w = rng.integers(-128, 128, size=(7, 24)).astype(np.int64)
    return x, w


class TestKernelEdgeCases:
    def test_empty_batch(self):
        empty = np.empty((0, 10))
        w = np.ones((4, 10))
        assert kernels.gemv(empty, w).shape == (0, 4)
        assert kernels.quantize(empty, 0.1, -8, 7).shape == (0, 10)
        assert kernels.relu(empty).shape == (0, 10)
        assert kernels.argmax_rows(np.empty((0, 4))).shape == (0,)
        assert kernels.sigmoid(empty, 2.0).shape == (0, 10)

    def test_single_row(self, rng):
        x = rng.standard_normal((1, 6))
        w = rng.standard_normal((3, 6))
        np.testing.assert_array_equal(kernels.gemv(x, w), x @ w.T)
        assert kernels.argmax_rows(x).shape == (1,)

    def test_fortran_order_input(self, rng):
        x = np.asfortranarray(rng.standard_normal((9, 12)))
        w = rng.standard_normal((5, 12))
        np.testing.assert_array_equal(
            kernels.gemv(x, w), kernels.gemv(np.ascontiguousarray(x), w)
        )

    def test_noncontiguous_slice_input(self, rng):
        base = rng.standard_normal((20, 12))
        view = base[::2]  # stride-2 rows: not C-contiguous
        assert not view.flags["C_CONTIGUOUS"]
        w = rng.standard_normal((5, 12))
        np.testing.assert_array_equal(
            kernels.gemv(view, w), kernels.gemv(view.copy(), w)
        )

    def test_quantize_matches_scalar_reference(self, rng):
        x = rng.standard_normal((4, 4)) * 10
        got = kernels.quantize(x, 0.25, -8, 7)
        ref = np.clip(np.round(x / 0.25), -8, 7).astype(np.int64)
        np.testing.assert_array_equal(got, ref)
        assert got.dtype == np.int64


class TestRowBlocks:
    def test_empty_batch_is_one_empty_block(self):
        assert tiles.row_blocks(0, 128) == [(0, 0)]

    def test_tile_larger_than_matrix(self):
        # Budget dwarfs the data: one block spanning every row.
        assert tiles.row_blocks(10, 64, target_bytes=1 << 20) == [(0, 10)]

    def test_single_row_tiles(self):
        # Budget below one row still makes progress, one row at a time.
        blocks = tiles.row_blocks(4, 1024, target_bytes=8)
        assert blocks == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_blocks_partition_the_rows(self):
        blocks = tiles.row_blocks(100, 100, target_bytes=1000)
        assert blocks[0][0] == 0 and blocks[-1][1] == 100
        assert all(a[1] == b[0] for a, b in zip(blocks, blocks[1:]))


class TestExactIntGemm:
    def test_matches_reference_in_bound(self, int_matrices):
        x, w = int_matrices
        np.testing.assert_array_equal(
            tiles.exact_int_gemm(x, w), x @ w.T.astype(np.int64)
        )

    def test_fallback_above_bound_is_exact(self):
        # Values too large to certify the dgemm trick: the kernel must
        # fall back to the integer matmul, not return rounded floats.
        big = np.int64(1) << 40
        x = np.array([[big, big]], dtype=np.int64)
        w = np.array([[big, 1]], dtype=np.int64)
        assert not tiles._exact_dgemm_ok(float(big), float(big), 2)
        np.testing.assert_array_equal(
            tiles.exact_int_gemm(x, w), x @ w.T.astype(np.int64)
        )

    def test_empty_operands(self):
        out = tiles.exact_int_gemm(
            np.empty((0, 5), dtype=np.int64), np.ones((3, 5), dtype=np.int64)
        )
        assert out.shape == (0, 3) and out.dtype == np.int64


class TestTiledGemv:
    def test_int64_tiling_matches_reference(self, int_matrices, monkeypatch):
        x, w = int_matrices
        ref = kernels.gemv(x, w, cast="int64")
        # Shrink the tile budget so the 13 rows split into many blocks.
        monkeypatch.setenv("REPRO_IR_TILE_BYTES", "512")
        got = tiles.tiled_gemv(x, w, cast="int64")
        assert got.dtype == ref.dtype
        np.testing.assert_array_equal(got, ref)

    def test_float_path_is_single_call(self, rng):
        x = rng.standard_normal((6, 8))
        w = rng.standard_normal((4, 8))
        np.testing.assert_array_equal(tiles.tiled_gemv(x, w), x @ w.T)

    def test_empty_batch(self):
        out = tiles.tiled_gemv(
            np.empty((0, 8), dtype=np.int64),
            np.ones((4, 8), dtype=np.int64),
            cast="int64",
        )
        assert out.shape == (0, 4)

    def test_fortran_order_input(self, int_matrices):
        x, w = int_matrices
        xf = np.asfortranarray(x)
        np.testing.assert_array_equal(
            tiles.tiled_gemv(xf, w, cast="int64"),
            kernels.gemv(x, w, cast="int64"),
        )


class TestFusedQuantGemv:
    def test_matches_unfused_pair(self, rng):
        x = rng.standard_normal((11, 16)) * 3
        w = rng.integers(-128, 128, size=(5, 16)).astype(np.float64)
        acc = tiles.fused_quant_gemv(x, 0.05, -128, 127, w)
        codes = kernels.quantize(x, 0.05, -128, 127)
        ref = kernels.gemv(codes, w, cast="int64")
        # Fused result is exact-integer float64; value-identical.
        np.testing.assert_array_equal(acc.astype(np.int64), ref)
        np.testing.assert_array_equal(acc, ref.astype(np.float64))

    def test_returns_none_above_bound(self):
        w = np.full((2, 4), float(1 << 30))
        assert (
            tiles.fused_quant_gemv(
                np.ones((1, 4)), 1e-9, -(1 << 30), 1 << 30, w
            )
            is None
        )

    def test_empty_batch(self):
        acc = tiles.fused_quant_gemv(
            np.empty((0, 4)), 0.1, -8, 7, np.ones((3, 4))
        )
        assert acc.shape == (0, 3)


class TestFusedGemvThresh:
    def test_single_tile_matches_argmax(self, rng):
        x = rng.standard_normal((9, 12))
        w = rng.standard_normal((6, 12))
        ref = kernels.argmax_rows(kernels.gemv(x, w))
        np.testing.assert_array_equal(tiles.fused_gemv_thresh(x, w), ref)

    def test_multi_tile_matches_argmax_exactly(self, rng):
        # Integer-valued operands keep every score exactly representable,
        # so the tiled running max must match np.argmax bit-for-bit.
        x = rng.integers(0, 8, size=(17, 10)).astype(np.float64)
        w = rng.integers(-4, 5, size=(23, 10)).astype(np.float64)
        ref = kernels.argmax_rows(kernels.gemv(x, w))
        for col_tile in (1, 3, 7, 23, 100):
            np.testing.assert_array_equal(
                tiles.fused_gemv_thresh(x, w, col_tile=col_tile), ref
            )

    def test_first_wins_tie_break(self):
        # Columns 1 and 3 tie at the max; np.argmax picks the first.
        x = np.ones((2, 1))
        w = np.array([[0.0], [5.0], [2.0], [5.0]])
        ref = kernels.argmax_rows(kernels.gemv(x, w))
        assert ref.tolist() == [1, 1]
        for col_tile in (1, 2, 100):
            np.testing.assert_array_equal(
                tiles.fused_gemv_thresh(x, w, col_tile=col_tile), ref
            )

    def test_empty_batch(self):
        out = tiles.fused_gemv_thresh(np.empty((0, 4)), np.ones((3, 4)))
        assert out.shape == (0,) and out.dtype == np.int64
