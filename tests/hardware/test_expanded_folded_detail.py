"""Detail tests for the expanded/folded design internals."""

import pytest

from repro.core.config import MLPConfig, SNNConfig, mnist_mlp_config, mnist_snn_config
from repro.hardware.expanded import (
    MAX_FANIN,
    _max_tree,
    expanded_mlp,
    expanded_snn_wot,
    expanded_snn_wt,
)
from repro.hardware.folded import (
    _tree_levels,
    folded_mlp,
    folded_snn_wot,
    mlp_sram_plans,
    snn_sram_plans,
)

MLP = mnist_mlp_config()
SNN = mnist_snn_config()


class TestMaxTree:
    def test_two_level_structure_for_300_neurons(self):
        netlist = _max_tree(300)
        names = sorted(component.name for component, _count in netlist.entries)
        # 15 first-level 20-input units + one 15-input unit.
        assert any("max(20" in n for n in names)
        assert any("max(15" in n for n in names)
        total_units = sum(count for _c, count in netlist.entries)
        assert total_units == 16

    def test_single_level_when_small(self):
        netlist = _max_tree(MAX_FANIN)
        assert sum(count for _c, count in netlist.entries) == 1

    def test_paper_max_tree_share(self):
        # Section 4.3.2: the max tree is a small share of the smallest
        # folded SNN design (the paper says 5.6%).
        report = folded_snn_wot(SNN, 1)
        max_area = sum(
            area for name, (_c, area) in report.area_breakdown.items() if "max(" in name
        )
        share = max_area / (report.logic_area_mm2 * 1e6)
        assert 0.02 < share < 0.20


class TestTreeLevels:
    @pytest.mark.parametrize("ni,levels", [(1, 1), (2, 2), (4, 3), (8, 4), (16, 5)])
    def test_levels(self, ni, levels):
        assert _tree_levels(ni) == levels


class TestExpandedBreakdowns:
    def test_snnwt_counts_784_rngs(self):
        report = expanded_snn_wt(SNN)
        count, _area = report.area_breakdown["gaussian_rng"]
        assert count == 784

    def test_snnwot_counts_shift_add_per_synapse(self):
        report = expanded_snn_wot(SNN)
        count, _area = report.area_breakdown["shift_add(w12)"]
        assert count == 300 * 784

    def test_mlp_tree_counts(self):
        report = expanded_mlp(MLP)
        assert report.area_breakdown["adder_tree(784,w8)"][0] == 100
        assert report.area_breakdown["adder_tree(100,w8)"][0] == 10

    def test_expanded_energy_per_weight_scaling(self):
        # Energy scales linearly with weight count across topologies.
        small = expanded_mlp(MLP.with_hidden(15))
        large = expanded_mlp(MLP)
        ratio = large.energy_per_image_uj / small.energy_per_image_uj
        assert ratio == pytest.approx(
            MLP.n_weights / MLP.with_hidden(15).n_weights, rel=1e-6
        )


class TestFoldedScalingBehaviour:
    def test_mlp_logic_dominated_by_multipliers_at_high_ni(self):
        report = folded_mlp(MLP, 16)
        mult_area = report.area_breakdown["multiplier(8x8)"][1]
        assert mult_area / (report.logic_area_mm2 * 1e6) > 0.5

    def test_snn_total_dominated_by_sram_at_high_ni(self):
        # Section 4.3.3's causal claim: the SNN loses folded because of
        # synaptic storage.
        report = folded_snn_wot(SNN, 16)
        assert report.sram_area_mm2 > report.logic_area_mm2 * 2

    def test_sram_plans_capacity_for_other_topologies(self):
        for config in (
            MLPConfig(n_inputs=169, n_hidden=60, n_output=10).validate(),
            MLPConfig(n_inputs=3136, n_hidden=400, n_output=10).validate(),
        ):
            for ni in (1, 4, 8, 16):
                for plan in mlp_sram_plans(config, ni):
                    assert plan.total_bits >= plan.weight_bits

    def test_snn_plan_matches_weight_count(self):
        for ni in (1, 16):
            (plan,) = snn_sram_plans(SNN, ni)
            assert plan.weight_bits == SNN.n_weights * 8

    def test_power_orders_of_magnitude(self):
        # Folded designs draw fractions of a watt to a few watts —
        # the embedded regime the paper targets.
        for report in (folded_mlp(MLP, 16), folded_snn_wot(SNN, 16)):
            assert 0.01 < report.power_w < 20.0

    def test_snn_small_config_works(self):
        config = SNNConfig(n_inputs=169).with_neurons(90)
        report = folded_snn_wot(config, 8)
        assert report.total_area_mm2 > 0
        assert report.cycles_per_image == -(-169 // 8) + 7
