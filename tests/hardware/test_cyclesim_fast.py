"""Equivalence tests for the fast hardware-simulator kernels.

Three contracts (see :mod:`repro.hardware.rng_vec` and the fast paths
in :mod:`repro.hardware.cyclesim`):

* the vectorized LFSR/Gaussian RNG emits the **identical bit stream**
  as the serial :class:`repro.hardware.rng_hw.HardwareGaussian`, for
  any interleaving of draw sizes;
* the bulk spike schedule equals the per-pixel serial schedule;
* the closed-form/scan ``run_image`` equals the cycle-by-cycle
  ``run_image_serial`` — winners *and* full traces — and the clean
  GEMV/GEMM paths of the MLP / SNNwot simulators equal their
  rate-zero-injector chunk walks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MLPConfig, SNNConfig
from repro.core.errors import HardwareModelError
from repro.datasets.digits import load_digits
from repro.faults import FaultConfig, FaultInjector
from repro.hardware.cyclesim import (
    FoldedMLPSimulator,
    FoldedSNNwotSimulator,
    FoldedSNNwtSimulator,
)
from repro.hardware.rng_hw import HardwareGaussian, LFSR31
from repro.hardware.rng_vec import (
    _HISTORY_BITS,
    VectorizedHardwareGaussian,
    _VectorLFSR31,
)
from repro.mlp.network import MLP
from repro.mlp.quantized import QuantizedMLP
from repro.mlp.trainer import BackPropTrainer
from repro.snn.network import SNNTrainer, SpikingNetwork
from repro.snn.snn_wot import SNNWithoutTime

SEEDS = [9, 9 * 7 + 3, 9 * 131 + 17, 9 * 8191 + 5]


# ----------------------------------------------------------------------
# Shared trained models
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def trained_snn():
    train_set, test_set = load_digits(n_train=160, n_test=60)
    network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(20))
    SNNTrainer(network).fit(train_set)
    return network, test_set


@pytest.fixture(scope="module")
def quantized_mlp():
    train_set, _ = load_digits(n_train=150, n_test=40)
    network = MLP(MLPConfig(n_hidden=12, epochs=5).validate())
    BackPropTrainer(network).train(train_set, epochs=5)
    return QuantizedMLP(network)


# ----------------------------------------------------------------------
# The vectorized hardware RNG
# ----------------------------------------------------------------------


class TestVectorLFSR:
    def test_bit_stream_identical_across_compaction(self):
        """take() must reproduce serial LFSR31.step() bit for bit, well
        past the ladder's growth doublings and the history compaction
        threshold."""
        serial = LFSR31(12345)
        vector = _VectorLFSR31(12345)
        total = 2 * _HISTORY_BITS + 12_345
        expected = np.fromiter(
            (serial.step() for _ in range(total)), dtype=np.uint8, count=total
        )
        got = []
        taken = 0
        rng = np.random.default_rng(0)
        while taken < total:
            n = min(int(rng.integers(1, 70_000)), total - taken)
            got.append(np.array(vector.take(n), copy=True))
            taken += n
        np.testing.assert_array_equal(np.concatenate(got), expected)

    def test_scalar_next_bits_protocol(self):
        serial = LFSR31(77)
        vector = _VectorLFSR31(77)
        for width in (1, 3, 8, 13, 31):
            assert vector.next_bits(width) == serial.next_bits(width)
        with pytest.raises(HardwareModelError):
            vector.next_bits(0)


class TestVectorizedGaussian:
    @pytest.mark.parametrize("resolution", [5, 8])
    def test_samples_bitwise_equal_serial(self, resolution):
        serial = HardwareGaussian(seeds=SEEDS, resolution=resolution)
        vector = VectorizedHardwareGaussian(seeds=SEEDS, resolution=resolution)
        expected = serial.samples(4_000)
        got = vector.samples(4_000)
        np.testing.assert_array_equal(got, expected)

    def test_interleaved_draw_sizes_preserve_stream(self):
        serial = HardwareGaussian(seeds=SEEDS)
        vector = VectorizedHardwareGaussian(seeds=SEEDS)
        chunks_serial, chunks_vector = [], []
        for n in (1, 17, 256, 3, 1000, 1):
            chunks_serial.append(serial.samples(n))
            chunks_vector.append(vector.samples(n))
        np.testing.assert_array_equal(
            np.concatenate(chunks_vector), np.concatenate(chunks_serial)
        )

    def test_single_sample_and_intervals_match(self):
        serial = HardwareGaussian(seeds=SEEDS)
        vector = VectorizedHardwareGaussian(seeds=SEEDS)
        assert vector.sample() == serial.sample()
        np.testing.assert_array_equal(
            vector.intervals(30.0, 10), serial.intervals(30.0, 10)
        )

    def test_rejects_negative_count(self):
        vector = VectorizedHardwareGaussian(seeds=SEEDS)
        with pytest.raises(HardwareModelError):
            vector.samples(-1)
        assert vector.samples(0).size == 0


# ----------------------------------------------------------------------
# The folded SNNwt fast paths
# ----------------------------------------------------------------------


class TestSpikeScheduleEquivalence:
    def test_bulk_schedule_equals_serial(self, trained_snn):
        network, test_set = trained_snn
        fast = FoldedSNNwtSimulator(network, 16, seed=3)
        serial = FoldedSNNwtSimulator(network, 16, seed=3)
        for image in test_set.images[:4]:
            bulk = fast._spike_schedule(image)
            reference = serial._spike_schedule_serial(image)
            assert len(bulk) == len(reference)
            for t, (a, b) in enumerate(zip(bulk, reference)):
                np.testing.assert_array_equal(
                    np.asarray(a), np.asarray(b), err_msg=f"step {t}"
                )


class TestRunImageEquivalence:
    def test_fast_run_image_equals_serial_walk(self, trained_snn):
        """Winners and full traces must match the cycle-by-cycle oracle
        (both simulators consume identical RNG streams by the schedule
        equivalence above)."""
        network, test_set = trained_snn
        fast = FoldedSNNwtSimulator(network, 8, seed=5)
        serial = FoldedSNNwtSimulator(network, 8, seed=5)
        for image in test_set.images[:8]:
            w_fast, t_fast = fast.run_image(image)
            w_serial, t_serial = serial.run_image_serial(image)
            assert w_fast == w_serial
            assert t_fast == t_serial

    def test_injector_routes_to_serial_walk(self, trained_snn):
        network, test_set = trained_snn
        injector = FaultInjector(FaultConfig(seed=2))  # all rates zero
        faulted = FoldedSNNwtSimulator(network, 8, seed=5, injector=injector)
        clean = FoldedSNNwtSimulator(network, 8, seed=5)
        w_faulted, t_faulted = faulted.run_image(test_set.images[0])
        w_clean, t_clean = clean.run_image(test_set.images[0])
        assert w_faulted == w_clean
        assert t_faulted == t_clean

    def test_predict_with_cycles_matches_predict(self, trained_snn):
        network, test_set = trained_snn
        images = test_set.images[:6]
        labels, cycles = FoldedSNNwtSimulator(network, 16, seed=7).predict_with_cycles(
            images
        )
        expected = FoldedSNNwtSimulator(network, 16, seed=7).predict(images)
        np.testing.assert_array_equal(labels, expected)
        sim = FoldedSNNwtSimulator(network, 16, seed=7)
        assert np.all(cycles == sim.cycles_per_image())


# ----------------------------------------------------------------------
# The folded MLP / SNNwot clean paths
# ----------------------------------------------------------------------


class TestMLPCleanPath:
    @pytest.mark.parametrize("ni", [4, 16])
    def test_gemv_equals_rate_zero_chunk_walk(self, quantized_mlp, ni):
        rng = np.random.default_rng(3)
        images = rng.random((5, 784))
        clean = FoldedMLPSimulator(quantized_mlp, ni)
        walked = FoldedMLPSimulator(
            quantized_mlp, ni, injector=FaultInjector(FaultConfig(seed=4))
        )
        for image in images:
            codes_clean, trace_clean = clean.run_image(image)
            codes_walk, trace_walk = walked.run_image(image)
            np.testing.assert_array_equal(codes_clean, codes_walk)
            assert trace_clean == trace_walk

    def test_predict_with_cycles(self, quantized_mlp):
        rng = np.random.default_rng(4)
        images = rng.random((6, 784))
        sim = FoldedMLPSimulator(quantized_mlp, 8)
        winners, cycles = sim.predict_with_cycles(images)
        np.testing.assert_array_equal(winners, sim.predict(images))
        assert np.all(cycles == sim.cycles_per_image())


class TestSNNwotCleanPath:
    def test_gemv_equals_rate_zero_chunk_walk(self, trained_snn):
        network, test_set = trained_snn
        wot = SNNWithoutTime(network)
        clean = FoldedSNNwotSimulator(wot, 16)
        walked = FoldedSNNwotSimulator(
            wot, 16, injector=FaultInjector(FaultConfig(seed=6))
        )
        for image in test_set.images[:5]:
            w_clean, t_clean = clean.run_image(image)
            w_walk, t_walk = walked.run_image(image)
            assert w_clean == w_walk
            assert t_clean == t_walk

    def test_predict_with_cycles(self, trained_snn):
        network, test_set = trained_snn
        wot = SNNWithoutTime(network)
        sim = FoldedSNNwotSimulator(wot, 16)
        labels, cycles = sim.predict_with_cycles(test_set.images[:6])
        np.testing.assert_array_equal(labels, sim.predict(test_set.images[:6]))
        assert np.all(cycles == sim.cycles_per_image())


# ----------------------------------------------------------------------
# Numerical properties the fast paths rest on
# ----------------------------------------------------------------------


class TestNumericalProperties:
    def test_int64_reduceat_equals_serial_segment_sums(self):
        """Integer addition is associative (int64 wraps modularly), so
        reduceat segments equal left-to-right sums exactly."""
        rng = np.random.default_rng(5)
        rows = rng.integers(-(2**40), 2**40, size=(500, 20), dtype=np.int64)
        bounds = np.sort(rng.choice(500, size=30, replace=False))
        bounds[0] = 0
        got = np.add.reduceat(rows, bounds, axis=0)
        for i, start in enumerate(bounds):
            stop = bounds[i + 1] if i + 1 < bounds.size else rows.shape[0]
            expected = np.zeros(20, dtype=np.int64)
            for r in range(start, stop):
                expected = expected + rows[r]
            np.testing.assert_array_equal(got[i], expected)

    def test_cumsum_is_sequential_left_fold(self):
        """np.cumsum along axis 1 must equal the serial running total —
        the property the bulk spike-time accumulation relies on."""
        rng = np.random.default_rng(6)
        intervals = rng.uniform(1.0, 60.0, size=(50, 40))
        intervals *= 10.0 ** rng.integers(-2, 3, size=intervals.shape)
        got = np.cumsum(intervals, axis=1)
        expected = np.empty_like(intervals)
        for p in range(intervals.shape[0]):
            t = 0.0
            for k in range(intervals.shape[1]):
                t += intervals[p, k]
                expected[p, k] = t
        np.testing.assert_array_equal(got, expected)

    def test_inplace_leak_matches_lut_helper(self):
        from repro.hardware.leak_lut import (
            apply_fixed_point_leak,
            leak_factor_fixed_point,
        )

        code = leak_factor_fixed_point(500.0)
        rng = np.random.default_rng(7)
        potentials = rng.integers(-(2**20), 2**20, size=200, dtype=np.int64)
        expected = apply_fixed_point_leak(potentials.copy(), code)
        inplace = potentials.copy()
        np.multiply(inplace, code, out=inplace)
        np.right_shift(inplace, 15, out=inplace)
        np.testing.assert_array_equal(inplace, expected)
