"""Tests for the hardware component library and netlist roll-ups."""

import pytest

from repro.core.errors import HardwareModelError
from repro.hardware import technology as tech
from repro.hardware.components import (
    Netlist,
    adder,
    adder_tree,
    adder_tree_slices,
    comparator,
    gaussian_rng,
    interpolation_unit,
    max_unit,
    multiplier,
    register,
    shift_add_unit,
    stdp_unit,
)


class TestAdderTreeStructure:
    def test_two_input_tree_is_one_adder(self):
        assert adder_tree_slices(2, 8) == 9  # one adder of width 9

    def test_784_input_8bit_tree_slice_count(self):
        # The count that calibrates FULL_ADDER_AREA against Table 4.
        assert adder_tree_slices(784, 8) == 7824

    def test_slices_grow_with_inputs(self):
        assert adder_tree_slices(100, 8) < adder_tree_slices(200, 8)

    def test_slices_grow_with_width(self):
        assert adder_tree_slices(64, 8) < adder_tree_slices(64, 12)

    def test_tree_depth_in_delay(self):
        shallow = adder_tree(4, 8)
        deep = adder_tree(256, 8)
        assert deep.delay_ns > shallow.delay_ns

    def test_invalid_inputs_rejected(self):
        with pytest.raises(HardwareModelError):
            adder_tree(0, 8)
        with pytest.raises(HardwareModelError):
            adder_tree(4, 0)


class TestOperatorAnchors:
    def test_multiplier_8x8_matches_table4(self):
        assert multiplier(8, 8).area_um2 == pytest.approx(862, rel=0.01)

    def test_mlp_784_tree_matches_table4(self):
        assert adder_tree(784, 8).area_um2 == pytest.approx(45_436, rel=0.01)

    def test_mlp_100_tree_matches_table4(self):
        assert adder_tree(100, 8).area_um2 == pytest.approx(5_657, rel=0.03)

    def test_snn_tree_matches_table4(self):
        # SNNwt per-neuron tree: 60,820 um^2 (we model width 12; 5%).
        assert adder_tree(784, 12).area_um2 == pytest.approx(60_820, rel=0.05)

    def test_max_unit_matches_table4(self):
        assert max_unit(20, 16).area_um2 == pytest.approx(6_081, rel=0.01)

    def test_gaussian_rng_matches_table4(self):
        assert gaussian_rng().area_um2 == 1_749.0

    def test_snnwot_neuron_matches_table4(self):
        # tree + per-input shift-add = 89,006 um^2 per neuron.
        total = adder_tree(784, 12).area_um2 + 784 * shift_add_unit().area_um2
        assert total == pytest.approx(89_006, rel=0.01)


class TestComponents:
    def test_adder_area_scales_with_width(self):
        assert adder(16).area_um2 == 2 * adder(8).area_um2

    def test_register_area(self):
        assert register(10).area_um2 == 10 * tech.REGISTER_BIT_AREA

    def test_comparator(self):
        assert comparator(16).area_um2 == 16 * tech.COMPARE_SELECT_AREA

    def test_interpolation_unit_constant(self):
        assert interpolation_unit().area_um2 == tech.INTERPOLATION_UNIT_AREA

    def test_stdp_unit_scales_with_ni(self):
        assert stdp_unit(16).area_um2 - stdp_unit(1).area_um2 == pytest.approx(
            15 * tech.STDP_UNIT_PER_INPUT_AREA
        )

    def test_negative_cost_impossible(self):
        with pytest.raises(HardwareModelError):
            multiplier(0)


class TestNetlist:
    def test_area_sums_instances(self):
        netlist = Netlist()
        netlist.add(multiplier(8), 10)
        netlist.add(adder(8), 5)
        expected = 10 * multiplier(8).area_um2 + 5 * adder(8).area_um2
        assert netlist.area_um2 == pytest.approx(expected)

    def test_energy_with_activity(self):
        netlist = Netlist().add(adder(8), 4)
        assert netlist.energy_pj(0.5) == pytest.approx(0.5 * 4 * adder(8).energy_pj)

    def test_breakdown_aggregates_same_name(self):
        netlist = Netlist()
        netlist.add(adder(8), 2)
        netlist.add(adder(8), 3)
        count, area = netlist.breakdown()["adder(w8)"]
        assert count == 5
        assert area == pytest.approx(5 * adder(8).area_um2)

    def test_zero_count_skipped(self):
        netlist = Netlist().add(adder(8), 0)
        assert netlist.instance_count() == 0

    def test_negative_count_rejected(self):
        with pytest.raises(HardwareModelError):
            Netlist().add(adder(8), -1)
