"""Tests for technology scaling and the design-space explorer."""

import pytest

from repro.core.config import mnist_mlp_config, mnist_snn_config
from repro.core.errors import HardwareModelError
from repro.hardware.explorer import (
    DesignPoint,
    Requirements,
    enumerate_design_space,
    pareto_frontier,
    recommend,
)
from repro.hardware.folded import folded_mlp
from repro.hardware.scaling import (
    NODES,
    ProcessNode,
    get_node,
    scale_report,
    scaling_factors,
    truenorth_45nm_sanity,
)

MLP = mnist_mlp_config()
SNN = mnist_snn_config()


class TestScaling:
    def test_known_nodes(self):
        assert get_node("65nm").feature_nm == 65.0
        assert get_node("45nm").voltage == 1.1

    def test_unknown_node_rejected(self):
        with pytest.raises(HardwareModelError):
            get_node("3nm")

    def test_identity_scaling(self):
        factors = scaling_factors(get_node("65nm"), get_node("65nm"))
        assert factors.area == factors.delay == factors.energy == 1.0

    def test_shrink_reduces_all_costs(self):
        factors = scaling_factors(get_node("65nm"), get_node("45nm"))
        assert factors.area < 1.0
        assert factors.delay < 1.0
        assert factors.energy < 1.0

    def test_area_scales_quadratically(self):
        factors = scaling_factors(get_node("90nm"), get_node("45nm"))
        assert factors.area == pytest.approx(0.25)
        assert factors.delay == pytest.approx(0.5)

    def test_scale_report_round_trip(self):
        report = folded_mlp(MLP, 4)
        shrunk = scale_report(report, "65nm", "45nm")
        restored = scale_report(shrunk, "45nm", "65nm")
        assert restored.total_area_mm2 == pytest.approx(report.total_area_mm2)
        assert restored.delay_ns == pytest.approx(report.delay_ns)
        assert restored.energy_per_image_uj == pytest.approx(
            report.energy_per_image_uj
        )

    def test_scale_report_preserves_cycles(self):
        report = folded_mlp(MLP, 4)
        shrunk = scale_report(report, "65nm", "45nm")
        assert shrunk.cycles_per_image == report.cycles_per_image

    def test_invalid_node_parameters_rejected(self):
        with pytest.raises(HardwareModelError):
            ProcessNode("bad", -1.0, 1.0)

    def test_truenorth_sanity_numbers(self):
        sanity = truenorth_45nm_sanity()
        # A naive 45->65nm shrink of the published 4.2 mm^2 core is
        # larger than the paper's reimplementation.
        assert sanity["naive_65nm_mm2"] > sanity["paper_reimplementation_mm2"]
        assert sanity["density_gap"] > 1.5

    def test_nodes_registry_complete(self):
        assert {"90nm", "65nm", "45nm", "28nm"} <= set(NODES)


class TestEnumeration:
    def test_design_space_size(self):
        points = enumerate_design_space(MLP, SNN)
        # 4 fold factors x 4 families + 3 expanded = 19.
        assert len(points) == 19

    def test_online_points_flagged(self):
        points = enumerate_design_space(MLP, SNN)
        online = [p for p in points if p.supports_online_learning]
        assert len(online) == 4
        assert all(p.family == "SNN-online" for p in online)

    def test_metric_dispatch(self):
        point = enumerate_design_space(MLP, SNN)[0]
        assert point.metric("area") == point.area_mm2
        assert point.metric("latency") == point.latency_us
        with pytest.raises(HardwareModelError):
            point.metric("beauty")


class TestPareto:
    def test_frontier_is_nondominated(self):
        points = enumerate_design_space(MLP, SNN)
        frontier = pareto_frontier(points, ("area", "latency"))
        assert frontier
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (
                    b.metric("area") <= a.metric("area")
                    and b.metric("latency") <= a.metric("latency")
                    and (
                        b.metric("area") < a.metric("area")
                        or b.metric("latency") < a.metric("latency")
                    )
                )
                assert not dominates

    def test_frontier_sorted_by_first_objective(self):
        frontier = pareto_frontier(
            enumerate_design_space(MLP, SNN), ("area", "latency")
        )
        areas = [p.metric("area") for p in frontier]
        assert areas == sorted(areas)

    def test_expanded_designs_on_latency_frontier(self):
        # Expanded designs are the fastest; they must survive when
        # latency is an objective.
        frontier = pareto_frontier(
            enumerate_design_space(MLP, SNN), ("latency", "area")
        )
        assert any(p.variant == "expanded" for p in frontier)

    def test_single_objective_gives_minimum(self):
        points = enumerate_design_space(MLP, SNN)
        frontier = pareto_frontier(points, ("area",))
        best = min(points, key=lambda p: p.area_mm2)
        assert frontier[0].area_mm2 == best.area_mm2

    def test_empty_objectives_rejected(self):
        with pytest.raises(HardwareModelError):
            pareto_frontier(enumerate_design_space(MLP, SNN), ())


class TestRecommend:
    def test_embedded_budget_selects_folded_mlp(self):
        # The paper's conclusion: at few-mm^2 embedded footprints the
        # MLP wins across the board.
        result = recommend(Requirements(max_area_mm2=8.0), MLP, SNN)
        assert result.chosen is not None
        assert result.chosen.family == "MLP"

    def test_online_learning_selects_snn(self):
        result = recommend(Requirements(needs_online_learning=True), MLP, SNN)
        assert result.chosen is not None
        assert result.chosen.family == "SNN-online"

    def test_online_plus_accuracy_critical_has_no_winner(self):
        result = recommend(
            Requirements(needs_online_learning=True, accuracy_critical=True),
            MLP,
            SNN,
        )
        assert result.chosen is None
        assert any("no current winner" in r for r in result.reasons)

    def test_accuracy_critical_restricts_to_mlp(self):
        result = recommend(Requirements(accuracy_critical=True), MLP, SNN)
        assert result.chosen.family == "MLP"
        assert all(p.family == "MLP" for p in result.feasible)

    def test_impossible_constraints_yield_none(self):
        result = recommend(Requirements(max_area_mm2=0.001), MLP, SNN)
        assert result.chosen is None
        assert not result.feasible

    def test_latency_constraint_can_force_expanded(self):
        # Sub-100ns deadlines are only reachable spatially expanded.
        result = recommend(
            Requirements(max_latency_us=0.05), MLP, SNN, prefer="area"
        )
        assert result.chosen is not None
        assert result.chosen.variant == "expanded"

    def test_summary_mentions_choice(self):
        result = recommend(Requirements(max_area_mm2=8.0), MLP, SNN)
        assert "recommended:" in result.summary()
