"""Calibration tests: the cost model vs every paper anchor.

Each assertion pins one number from the paper's Tables 4, 5, 7 or 9
with an explicit tolerance.  If a technology constant drifts, these
tests say exactly which published anchor broke.
"""

import pytest

from repro.core.config import (
    MLPConfig,
    SNNConfig,
    mnist_mlp_config,
    mnist_snn_config,
)
from repro.hardware.expanded import expanded_mlp, expanded_snn_wot, expanded_snn_wt
from repro.hardware.folded import folded_mlp, folded_snn_wot, folded_snn_wt
from repro.hardware.online import online_snn, stdp_overhead

MLP = mnist_mlp_config()
SNN = mnist_snn_config()

#: Table 7 anchors: (design fn, config, ni) -> (logic, total, delay, energy_uJ, cycles)
TABLE7 = {
    ("MLP", 1): (0.29, 1.05, 2.24, 0.38, 882),
    ("MLP", 4): (0.62, 1.91, 2.24, 0.29, 223),
    ("MLP", 8): (1.02, 3.26, 2.25, 0.30, 113),
    ("MLP", 16): (1.88, 6.36, 2.25, 0.29, 57),
    ("SNNwot", 1): (1.11, 3.17, 1.24, 1.03, 791),
    ("SNNwot", 4): (1.89, 5.34, 1.48, 0.68, 203),
    ("SNNwot", 8): (2.79, 8.91, 1.76, 0.67, 105),
    ("SNNwot", 16): (4.10, 16.33, 1.84, 0.70, 56),
    ("SNNwt", 1): (0.48, 2.56, 1.15, 471.58, 395_500),
    ("SNNwt", 4): (0.84, 4.36, 1.11, 315.33, 101_500),
    ("SNNwt", 8): (1.19, 7.45, 1.18, 307.09, 52_500),
    ("SNNwt", 16): (1.74, 14.25, 1.84, 325.69, 28_000),
}

_FOLDED = {"MLP": (folded_mlp, MLP), "SNNwot": (folded_snn_wot, SNN), "SNNwt": (folded_snn_wt, SNN)}


class TestTable4Expanded:
    def test_mlp_expanded_areas(self):
        report = expanded_mlp(MLP)
        assert report.logic_area_mm2 == pytest.approx(73.14, rel=0.02)
        assert report.sram_area_mm2 == pytest.approx(6.49, rel=0.02)
        assert report.total_area_mm2 == pytest.approx(79.63, rel=0.02)

    def test_mlp_small_expanded_areas(self):
        report = expanded_mlp(MLP.with_hidden(15))
        assert report.logic_area_mm2 == pytest.approx(10.98, rel=0.05)
        assert report.total_area_mm2 == pytest.approx(12.33, rel=0.05)

    def test_snnwot_expanded_areas(self):
        report = expanded_snn_wot(SNN)
        assert report.logic_area_mm2 == pytest.approx(26.79, rel=0.02)
        assert report.total_area_mm2 == pytest.approx(46.06, rel=0.02)

    def test_snnwt_expanded_areas(self):
        report = expanded_snn_wt(SNN)
        assert report.logic_area_mm2 == pytest.approx(19.62, rel=0.07)
        assert report.total_area_mm2 == pytest.approx(38.89, rel=0.05)

    def test_mlp_multiplier_count_matches_paper(self):
        # Table 4: 79,510 multipliers = 78,400 + 1,000 + 110 (sigmoids).
        report = expanded_mlp(MLP)
        count, _area = report.area_breakdown["multiplier(8x8)"]
        assert count == 79_510

    def test_expanded_area_ratio_conclusion(self):
        # Section 4.2.3: expanded MLP far larger than expanded SNN.
        mlp_area = expanded_mlp(MLP).total_area_mm2
        snn_area = expanded_snn_wot(SNN).total_area_mm2
        assert mlp_area / snn_area == pytest.approx(79.63 / 46.06, rel=0.05)


class TestTable7Folded:
    @pytest.mark.parametrize("design,ni", sorted(TABLE7))
    def test_total_area(self, design, ni):
        fn, cfg = _FOLDED[design]
        paper = TABLE7[(design, ni)]
        assert fn(cfg, ni).total_area_mm2 == pytest.approx(paper[1], rel=0.10)

    @pytest.mark.parametrize("design,ni", sorted(TABLE7))
    def test_logic_area(self, design, ni):
        fn, cfg = _FOLDED[design]
        paper = TABLE7[(design, ni)]
        assert fn(cfg, ni).logic_area_mm2 == pytest.approx(paper[0], rel=0.25)

    @pytest.mark.parametrize("design,ni", sorted(TABLE7))
    def test_delay(self, design, ni):
        # SNNwt delays at ni=4/8 are the paper's flat-then-jump outliers
        # (see EXPERIMENTS.md); everything else is within 15%.
        fn, cfg = _FOLDED[design]
        paper = TABLE7[(design, ni)]
        tolerance = 0.50 if design == "SNNwt" and ni in (4, 8) else 0.15
        assert fn(cfg, ni).delay_ns == pytest.approx(paper[2], rel=tolerance)

    @pytest.mark.parametrize("design,ni", sorted(TABLE7))
    def test_energy(self, design, ni):
        fn, cfg = _FOLDED[design]
        paper = TABLE7[(design, ni)]
        assert fn(cfg, ni).energy_per_image_uj == pytest.approx(paper[3], rel=0.25)

    @pytest.mark.parametrize("design,ni", sorted(TABLE7))
    def test_cycles(self, design, ni):
        fn, cfg = _FOLDED[design]
        paper = TABLE7[(design, ni)]
        assert fn(cfg, ni).cycles_per_image == pytest.approx(paper[4], abs=4 * 500)
        if design != "SNNwt":
            assert fn(cfg, ni).cycles_per_image == pytest.approx(paper[4], abs=4)

    def test_headline_ratio_folded_mlp_wins(self):
        # Section 4.3.3: folded MLP area 2.57x lower than folded SNNwot
        # at ni=16, and 2.41x more energy efficient.
        area_ratio = (
            folded_snn_wot(SNN, 16).total_area_mm2 / folded_mlp(MLP, 16).total_area_mm2
        )
        energy_ratio = (
            folded_snn_wot(SNN, 16).energy_per_image_uj
            / folded_mlp(MLP, 16).energy_per_image_uj
        )
        assert area_ratio == pytest.approx(2.57, rel=0.15)
        assert energy_ratio == pytest.approx(2.41, rel=0.25)

    def test_expanded_snn_cheaper_than_expanded_mlp(self):
        # The flip side: fully expanded, the SNN wins on area.
        assert expanded_snn_wot(SNN).total_area_mm2 < expanded_mlp(MLP).total_area_mm2


class TestTable5SmallLayouts:
    def test_small_snn_area(self):
        config = SNNConfig(n_inputs=16).with_neurons(20)
        report = expanded_snn_wt(config)
        assert report.logic_area_mm2 == pytest.approx(0.08, rel=0.35)

    def test_small_mlp_area(self):
        config = MLPConfig(n_inputs=16, n_hidden=10, n_output=10)
        report = expanded_mlp(config)
        assert report.logic_area_mm2 == pytest.approx(0.21, rel=0.35)

    def test_small_mlp_larger_than_small_snn(self):
        # Table 5's qualitative point: at equal scale the expanded MLP
        # is ~2.6x the SNN (multipliers vs adders).
        snn = expanded_snn_wt(SNNConfig(n_inputs=16).with_neurons(20))
        mlp = expanded_mlp(MLPConfig(n_inputs=16, n_hidden=10, n_output=10))
        assert 1.5 < mlp.logic_area_mm2 / snn.logic_area_mm2 < 5.0


class TestTable9Online:
    @pytest.mark.parametrize("ni,paper_total,paper_energy_mj", [
        (1, 4.92, 0.71),
        (4, 7.10, 0.37),
        (8, 10.70, 0.32),
        (16, 19.06, 0.33),
    ])
    def test_online_design_points(self, ni, paper_total, paper_energy_mj):
        report = online_snn(SNN, ni)
        assert report.total_area_mm2 == pytest.approx(paper_total, rel=0.20)
        assert report.energy_per_image_uj / 1e3 == pytest.approx(
            paper_energy_mj, rel=0.25
        )

    def test_overhead_ratios_match_section_441(self):
        # "about 1.34x (ni=16) to 1.93x (ni=1) larger ... cycle time
        # increases by 7% at most".
        low = stdp_overhead(SNN, 16)
        high = stdp_overhead(SNN, 1)
        assert high["area_ratio"] == pytest.approx(1.93, rel=0.10)
        assert low["area_ratio"] == pytest.approx(1.34, rel=0.15)
        assert high["delay_ratio"] <= 1.07 + 1e-9
        assert high["energy_ratio"] == pytest.approx(1.50, rel=0.15)
