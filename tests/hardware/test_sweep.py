"""Tests for the vectorized design-space sweep engine.

The load-bearing property is *bit-identical equivalence*: every row of
the vectorized sweep must match the scalar constructor oracle exactly
(no tolerances), and the fast Pareto extraction must return the same
frontier as the documented pairwise oracle on every input.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.artifacts import ArrayBundleCache
from repro.core.config import mnist_mlp_config, mnist_snn_config
from repro.core.errors import HardwareModelError
from repro.hardware.explorer import (
    DesignPoint,
    enumerate_design_space,
    pareto_frontier,
)
from repro.hardware.designs import DesignReport
from repro.hardware.sweep import (
    EXPANDED,
    FAMILIES,
    Constraints,
    SweepGrid,
    best_index,
    evaluate_grid,
    feasible_mask,
    pareto_frontier_fast,
    pareto_indices,
    pareto_mask,
    run_sweep,
    scalar_design_report,
    snn_vs_ann,
    top_indices,
)

MLP = mnist_mlp_config()
SNN = mnist_snn_config()


def small_grid(**overrides) -> SweepGrid:
    params = dict(
        hidden_sizes=(2, 10, 37, 100, 300, 1000, 1600),
        fold_factors=(EXPANDED, 1, 2, 4, 8, 16),
        weight_bits=(2, 4, 8, 16),
        nodes=("65nm", "28nm"),
        mlp_config=MLP,
        snn_config=SNN,
    )
    params.update(overrides)
    return SweepGrid(**params).validate()


class TestGrid:
    def test_unknown_family_rejected(self):
        with pytest.raises(HardwareModelError):
            small_grid(families=("MLP", "Banana"))

    def test_unknown_node_rejected(self):
        with pytest.raises(HardwareModelError):
            small_grid(nodes=("12nm",))

    def test_empty_hidden_rejected(self):
        with pytest.raises(HardwareModelError):
            small_grid(hidden_sizes=())

    def test_invalid_corners_dropped(self):
        grid = small_grid()
        combos = grid.combos()
        # ni * weight_bits must fit one 128-bit SRAM row.
        assert all(c.ni * c.weight_bits <= 128 for c in combos if c.ni != EXPANDED)
        # There is no expanded SNN-online design.
        assert not any(
            c.family == "SNN-online" and c.ni == EXPANDED for c in combos
        )

    def test_family_ranges_respected(self):
        grid = small_grid()
        result = evaluate_grid(grid)
        mlp_hidden = result.hidden[result.family_code == FAMILIES.index("MLP")]
        snn_hidden = result.hidden[result.family_code != FAMILIES.index("MLP")]
        # MLP hidden range tops out at 1000, SNN neurons at 1600 (Table 1).
        assert mlp_hidden.max() == 1000 and snn_hidden.max() == 1600
        assert mlp_hidden.min() >= 1 and snn_hidden.min() >= 2


class TestEquivalence:
    """Vectorized rows == scalar oracle, bit for bit."""

    @pytest.fixture(scope="class")
    def swept(self):
        grid = small_grid()
        return grid, evaluate_grid(grid)

    def test_sampled_rows_bit_identical(self, swept):
        grid, result = swept
        rng = np.random.default_rng(7)
        for i in rng.choice(result.n_points, size=120, replace=False):
            i = int(i)
            report = scalar_design_report(
                result.family_of(i),
                int(result.ni[i]),
                int(result.hidden[i]),
                int(result.weight_bits[i]),
                result.nodes[int(result.node_code[i])],
                grid.mlp_config,
                grid.snn_config,
            )
            assert float(result.logic_area_mm2[i]) == report.logic_area_mm2
            assert float(result.sram_area_mm2[i]) == report.sram_area_mm2
            assert float(result.delay_ns[i]) == report.delay_ns
            assert int(result.cycles_per_image[i]) == report.cycles_per_image
            assert float(result.energy_per_image_uj[i]) == report.energy_per_image_uj
            assert float(result.total_area_mm2[i]) == report.total_area_mm2
            assert float(result.latency_us[i]) == report.time_per_image_us
            assert float(result.power_w[i]) == report.power_w

    def test_canonical_order_is_deterministic(self, swept):
        grid, result = swept
        again = evaluate_grid(grid)
        for name in result._COLUMNS:
            assert np.array_equal(getattr(result, name), getattr(again, name))

    def test_jobs_match_serial(self, swept):
        grid, serial = swept
        parallel = run_sweep(grid, jobs=4, use_cache=False)
        for name in serial._COLUMNS:
            assert np.array_equal(getattr(serial, name), getattr(parallel, name))

    def test_metric_unknown_raises(self, swept):
        _, result = swept
        with pytest.raises(HardwareModelError):
            result.metric("bogus")

    def test_scalar_oracle_rejects_bad_points(self):
        with pytest.raises(HardwareModelError):
            scalar_design_report("Banana", 1, 10)
        with pytest.raises(HardwareModelError):
            scalar_design_report("SNN-online", EXPANDED, 10)


class TestShardCache:
    def test_round_trip_hits(self, tmp_path):
        grid = small_grid(
            hidden_sizes=(10, 20), weight_bits=(8,), nodes=("65nm",)
        )
        cache = ArrayBundleCache(tmp_path / "cache")
        cold = run_sweep(grid, cache=cache, use_cache=True)
        assert cache.stats.misses > 0 and cache.stats.hits == 0
        warm = run_sweep(grid, cache=cache, use_cache=True)
        assert cache.stats.hits == cache.stats.misses
        for name in cold._COLUMNS:
            assert np.array_equal(getattr(cold, name), getattr(warm, name))

    def test_corrupt_shard_recomputed(self, tmp_path):
        grid = small_grid(
            hidden_sizes=(10,), weight_bits=(8,), nodes=("65nm",)
        )
        cache = ArrayBundleCache(tmp_path / "cache")
        baseline = run_sweep(grid, cache=cache, use_cache=True)
        for bundle in cache.directory.glob("*.npz"):
            bundle.write_bytes(b"garbage")
        again = run_sweep(grid, cache=cache, use_cache=True)
        assert cache.stats.corrupt_evictions > 0
        for name in baseline._COLUMNS:
            assert np.array_equal(getattr(baseline, name), getattr(again, name))


def _oracle_mask(values: np.ndarray) -> np.ndarray:
    n = values.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if (values[j] <= values[i]).all() and (values[j] < values[i]).any():
                mask[i] = False
                break
    return mask


class TestParetoMask:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_pairwise_oracle_on_random_grids(self, k):
        rng = np.random.default_rng(100 + k)
        for trial in range(8):
            n = int(rng.integers(1, 200))
            # Small-integer grids force heavy ties and duplicates.
            values = rng.integers(0, 5, size=(n, k)).astype(float)
            assert np.array_equal(pareto_mask(values), _oracle_mask(values))

    def test_duplicates_all_kept(self):
        values = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert pareto_mask(values).tolist() == [True, True, False]

    def test_tie_one_axis_worse_other_dominated(self):
        values = np.array([[1.0, 1.0], [1.0, 2.0]])
        assert pareto_mask(values).tolist() == [True, False]

    def test_single_and_empty(self):
        assert pareto_mask(np.zeros((1, 3))).tolist() == [True]
        assert pareto_mask(np.zeros((0, 2))).tolist() == []

    def test_non_2d_rejected(self):
        with pytest.raises(HardwareModelError):
            pareto_mask(np.zeros(4))


def _point(family, variant, area, latency) -> DesignPoint:
    cycles = max(int(round(latency * 100.0)), 1)
    return DesignPoint(
        family,
        variant,
        DesignReport(
            name=f"{family} {variant}",
            topology="t",
            logic_area_mm2=area,
            sram_area_mm2=0.0,
            delay_ns=10.0,
            cycles_per_image=cycles,
            energy_per_image_uj=1.0,
        ),
    )


class TestParetoOracle:
    """Satellite: explorer.pareto_frontier edge cases, frozen semantics."""

    def test_duplicates_both_returned(self):
        a = _point("MLP", "a", 1.0, 1.0)
        b = _point("MLP", "b", 1.0, 1.0)
        frontier = pareto_frontier([a, b])
        assert frontier == [a, b]

    def test_tied_point_dominated(self):
        a = _point("MLP", "a", 1.0, 1.0)
        b = _point("MLP", "b", 1.0, 2.0)
        assert pareto_frontier([a, b]) == [a]

    def test_single_point_is_frontier(self):
        a = _point("MLP", "a", 1.0, 1.0)
        assert pareto_frontier([a]) == [a]

    def test_empty_input_empty_frontier(self):
        assert pareto_frontier([]) == []

    def test_unknown_objective_raises_even_when_empty(self):
        with pytest.raises(HardwareModelError):
            pareto_frontier([], objectives=("bogus",))
        with pytest.raises(HardwareModelError):
            pareto_frontier([], objectives=())

    def test_fast_matches_oracle_on_design_space(self):
        points = enumerate_design_space(MLP, SNN)
        for objectives in (
            ("area", "latency"),
            ("energy", "area"),
            ("area", "latency", "energy"),
            ("power",),
        ):
            oracle = pareto_frontier(points, objectives)
            fast = pareto_frontier_fast(points, objectives)
            assert [id(p) for p in fast] == [id(p) for p in oracle]

    def test_fast_matches_oracle_on_ties(self):
        rng = np.random.default_rng(11)
        points = [
            _point("MLP", str(i), float(rng.integers(0, 4)), float(rng.integers(0, 4)))
            for i in range(60)
        ]
        oracle = pareto_frontier(points)
        fast = pareto_frontier_fast(points)
        assert [id(p) for p in fast] == [id(p) for p in oracle]

    def test_fast_validates_like_oracle(self):
        with pytest.raises(HardwareModelError):
            pareto_frontier_fast([], objectives=("bogus",))
        assert pareto_frontier_fast([]) == []


class TestQueries:
    @pytest.fixture(scope="class")
    def result(self):
        return evaluate_grid(
            small_grid(
                hidden_sizes=(10, 50, 100), weight_bits=(4, 8), nodes=("65nm",)
            )
        )

    def test_best_index_minimizes(self, result):
        best = best_index(result, "area")
        assert best is not None
        assert result.metric("area")[best] == result.metric("area").min()

    def test_constraints_respected(self, result):
        constraints = Constraints(max_area_mm2=1.0, needs_online_learning=True)
        mask = feasible_mask(result, constraints)
        assert mask.any()
        assert bool(result.supports_online_learning[mask].all())
        assert float(result.metric("area")[mask].max()) <= 1.0

    def test_infeasible_returns_none(self, result):
        assert best_index(result, "area", Constraints(max_area_mm2=1e-9)) is None

    def test_top_indices_sorted(self, result):
        top = top_indices(result, "edp", 5)
        values = result.metric("edp")[top]
        assert len(top) == 5 and np.all(np.diff(values) >= 0)

    def test_pareto_indices_subset(self, result):
        idx = pareto_indices(result, ("area", "latency"))
        assert 0 < idx.shape[0] < result.n_points

    def test_snn_vs_ann_shape(self, result):
        doc = snn_vs_ann(result, "edp", Constraints(max_area_mm2=2.0))
        assert set(doc) == {"metric", "ann", "snn", "snn_over_ann", "winner"}
        assert doc["ann"]["family"] == "MLP"
        assert doc["snn"]["family"] != "MLP"
        assert doc["winner"] in ("SNN", "ANN")


class TestExploreCLI:
    def test_happy_path_json(self, capsys):
        code = main(
            [
                "explore",
                "--hidden",
                "10,50",
                "--bits",
                "8",
                "--pareto",
                "area,latency",
                "--compare",
                "--json",
                "--no-cache",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["best"] is not None
        assert doc["pareto"]["count"] >= 1
        assert doc["compare"]["winner"] in ("SNN", "ANN", "none")

    def test_unknown_metric_exits_2(self, capsys):
        assert main(["explore", "--hidden", "10", "--metric", "bogus"]) == 2
        assert "unknown metric" in capsys.readouterr().err

    def test_unknown_family_exits_2(self, capsys):
        assert main(["explore", "--hidden", "10", "--families", "Banana"]) == 2
        assert "unknown family" in capsys.readouterr().err

    def test_bad_range_exits_2(self, capsys):
        assert main(["explore", "--hidden", "10:20:0"]) == 2

    def test_infeasible_exits_1(self, capsys):
        code = main(
            ["explore", "--hidden", "10", "--max-area", "1e-9", "--no-cache"]
        )
        assert code == 1

    def test_recommend_json_stable_keys(self, capsys):
        assert main(["recommend", "--max-area", "10", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {
            "chosen",
            "feasible_count",
            "prefer",
            "reasons",
            "requirements",
        }
        assert doc["chosen"]["family"] == "MLP"
        assert doc["feasible_count"] > 0

    def test_recommend_json_infeasible(self, capsys):
        assert main(["recommend", "--max-area", "1e-9", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["chosen"] is None
