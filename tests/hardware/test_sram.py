"""Tests for the SRAM bank model (Table 6)."""

import pytest

from repro.core.errors import HardwareModelError
from repro.hardware.sram import (
    BANK_WIDTH_BITS,
    bank_area_um2,
    bank_read_energy_pj,
    expanded_storage_area_um2,
    plan_layer,
)


class TestPublishedBanks:
    def test_784_deep_bank(self):
        assert bank_area_um2(784) == 108_351.0
        assert bank_read_energy_pj(784) == 44.41

    def test_200_deep_bank(self):
        assert bank_area_um2(200) == 46_002.0
        assert bank_read_energy_pj(200) == 33.05

    def test_128_deep_bank(self):
        assert bank_area_um2(128) == 40_772.0
        assert bank_read_energy_pj(128) == 32.46

    def test_interpolation_monotone(self):
        assert bank_area_um2(300) > bank_area_um2(150)
        assert bank_read_energy_pj(600) > bank_read_energy_pj(150)

    def test_bad_depth_rejected(self):
        with pytest.raises(HardwareModelError):
            bank_area_um2(0)


class TestPackingRule:
    """The recovered Table 6 packing (DESIGN.md section 5)."""

    @pytest.mark.parametrize("ni,expected_banks,expected_depth,neurons_per_bank", [
        (1, 19, 784, 16),
        (4, 75, 200, 4),
        (8, 150, 128, 2),
        (16, 300, 128, 1),
    ])
    def test_snn_layer_matches_paper(self, ni, expected_banks, expected_depth, neurons_per_bank):
        plan = plan_layer(300, 784, ni)
        assert plan.n_banks == expected_banks
        assert plan.depth == expected_depth
        assert plan.neurons_per_bank == neurons_per_bank

    @pytest.mark.parametrize("ni,expected_banks", [(1, 8), (4, 28), (8, 55), (16, 110)])
    def test_mlp_layers_match_paper(self, ni, expected_banks):
        hidden = plan_layer(100, 784, ni)
        output = plan_layer(10, 100, ni)
        assert hidden.n_banks + output.n_banks == expected_banks

    def test_snn_area_matches_paper(self):
        # Table 6 totals: 2.06 / 3.45 / 6.12 / 12.23 mm^2.
        for ni, expected in ((1, 2.06), (4, 3.45), (8, 6.12), (16, 12.23)):
            assert plan_layer(300, 784, ni).area_mm2 == pytest.approx(expected, rel=0.01)

    def test_snn_read_energy_matches_paper(self):
        for ni, expected in ((1, 0.84), (4, 2.48), (8, 4.87), (16, 9.74)):
            energy_nj = plan_layer(300, 784, ni).read_energy_per_cycle_pj / 1e3
            assert energy_nj == pytest.approx(expected, rel=0.01)

    def test_capacity_holds_all_weights(self):
        for ni in (1, 4, 8, 16):
            plan = plan_layer(300, 784, ni)
            assert plan.total_bits >= plan.weight_bits

    def test_ni_too_wide_rejected(self):
        with pytest.raises(HardwareModelError):
            plan_layer(10, 100, 32)  # 32*8 = 256 > 128-bit row

    def test_small_layer_single_bank(self):
        plan = plan_layer(4, 16, 1)
        assert plan.n_banks == 1

    def test_invalid_layer_rejected(self):
        with pytest.raises(HardwareModelError):
            plan_layer(0, 10, 1)
        with pytest.raises(HardwareModelError):
            plan_layer(10, 10, 0)

    def test_bank_width_constant(self):
        assert BANK_WIDTH_BITS == 128


class TestExpandedStorage:
    def test_snn_expanded_matches_table4(self):
        # 235,200 weights -> 19.27 mm^2.
        area = expanded_storage_area_um2(235_200) / 1e6
        assert area == pytest.approx(19.27, rel=0.01)

    def test_mlp_expanded_matches_table4(self):
        area = expanded_storage_area_um2(79_400) / 1e6
        assert area == pytest.approx(6.49, rel=0.01)

    def test_negative_rejected(self):
        with pytest.raises(HardwareModelError):
            expanded_storage_area_um2(-1)
