"""Property tests for the scalar cost model (the sweep oracle).

These pin the qualitative physics the paper's Section 4-5 analysis
relies on — properties every calibration re-fit must preserve:

* spending fold factor (ni lanes) buys latency with area;
* wider weights cost energy (wider datapaths, more SRAM bits read);
* the spatially expanded design is the latency floor of its family.
"""

from __future__ import annotations

import pytest

from repro.core.config import mnist_mlp_config, mnist_snn_config
from repro.hardware.sweep import scalar_design_report

MLP = mnist_mlp_config()
SNN = mnist_snn_config()

FOLD_LADDER = (1, 2, 4, 8, 16)
BIT_LADDER = (2, 4, 6, 8, 12, 16)
FOLDED_FAMILIES = ("MLP", "SNNwot", "SNNwt", "SNN-online")
HIDDEN = {"MLP": (24, 100, 500), "default": (40, 300, 1000)}


def _hidden_for(family):
    return HIDDEN.get(family, HIDDEN["default"])


def _report(family, ni, hidden, weight_bits=8):
    return scalar_design_report(family, ni, hidden, weight_bits, "65nm", MLP, SNN)


class TestFoldExpansion:
    """More lanes: latency falls, area rises (the fold trade-off)."""

    @pytest.mark.parametrize("family", FOLDED_FAMILIES)
    def test_latency_non_increasing_in_ni(self, family):
        for hidden in _hidden_for(family):
            latencies = [
                _report(family, ni, hidden).time_per_image_us
                for ni in FOLD_LADDER
            ]
            assert all(a >= b for a, b in zip(latencies, latencies[1:])), (
                family,
                hidden,
                latencies,
            )

    @pytest.mark.parametrize("family", FOLDED_FAMILIES)
    def test_area_non_decreasing_in_ni(self, family):
        for hidden in _hidden_for(family):
            areas = [
                _report(family, ni, hidden).total_area_mm2 for ni in FOLD_LADDER
            ]
            assert all(a <= b for a, b in zip(areas, areas[1:])), (
                family,
                hidden,
                areas,
            )

    @pytest.mark.parametrize("family", ("MLP", "SNNwot", "SNNwt"))
    def test_expanded_is_latency_floor(self, family):
        for hidden in _hidden_for(family):
            expanded = _report(family, 0, hidden).time_per_image_us
            folded = [
                _report(family, ni, hidden).time_per_image_us
                for ni in FOLD_LADDER
            ]
            assert expanded < min(folded), (family, hidden)


class TestBitWidthGrowth:
    """Wider weights: energy and area never get cheaper."""

    @pytest.mark.parametrize("family", FOLDED_FAMILIES)
    @pytest.mark.parametrize("ni", (1, 8))
    def test_energy_non_decreasing_in_bits(self, family, ni):
        for hidden in _hidden_for(family):
            energies = [
                _report(family, ni, hidden, wb).energy_per_image_uj
                for wb in BIT_LADDER
            ]
            assert all(a <= b for a, b in zip(energies, energies[1:])), (
                family,
                ni,
                hidden,
                energies,
            )

    @pytest.mark.parametrize("family", ("MLP", "SNNwot", "SNNwt"))
    def test_expanded_energy_non_decreasing_in_bits(self, family):
        for hidden in _hidden_for(family):
            energies = [
                _report(family, 0, hidden, wb).energy_per_image_uj
                for wb in BIT_LADDER
            ]
            assert all(a <= b for a, b in zip(energies, energies[1:]))

    @pytest.mark.parametrize("family", FOLDED_FAMILIES)
    def test_logic_area_non_decreasing_in_bits(self, family):
        # SRAM area is deliberately excluded: the banking geometry
        # (rows of 128/(ni*wb) neurons, sqrt term in the bank fit) makes
        # it non-monotone in wb; the datapath is the monotone part.
        for hidden in _hidden_for(family):
            areas = [
                _report(family, 1, hidden, wb).logic_area_mm2 for wb in BIT_LADDER
            ]
            assert all(a <= b for a, b in zip(areas, areas[1:]))


class TestTopologyGrowth:
    """Bigger layers never shrink the design."""

    @pytest.mark.parametrize("family", FOLDED_FAMILIES)
    def test_area_and_energy_grow_with_hidden(self, family):
        sizes = _hidden_for(family)
        reports = [_report(family, 4, h) for h in sizes]
        areas = [r.total_area_mm2 for r in reports]
        energies = [r.energy_per_image_uj for r in reports]
        assert all(a < b for a, b in zip(areas, areas[1:]))
        assert all(a < b for a, b in zip(energies, energies[1:]))
