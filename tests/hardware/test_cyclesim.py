"""Tests for the cycle-accurate folded-datapath simulators.

The key property — mirroring the paper's RTL-vs-simulator validation —
is bit-exactness: the cycle-by-cycle execution must produce exactly
the functional model's outputs, and the cycle counts must equal the
Table 7 formulas.
"""

import numpy as np
import pytest

from repro.core.config import mnist_mlp_config, mnist_snn_config
from repro.core.errors import SimulationError
from repro.hardware.cyclesim import FoldedMLPSimulator, FoldedSNNwotSimulator
from repro.hardware.folded import mlp_cycles, snn_wot_cycles
from repro.mlp.quantized import QuantizedMLP
from repro.snn.snn_wot import SNNWithoutTime


@pytest.fixture(scope="module")
def quantized(trained_mlp_module):
    return QuantizedMLP(trained_mlp_module)


@pytest.fixture(scope="module")
def trained_mlp_module():
    from repro.core.config import MLPConfig
    from repro.datasets.digits import load_digits
    from repro.mlp.network import MLP
    from repro.mlp.trainer import BackPropTrainer

    train_set, _ = load_digits(n_train=200, n_test=50)
    network = MLP(MLPConfig(n_hidden=16, epochs=10).validate())
    BackPropTrainer(network).train(train_set, epochs=10)
    return network


class TestFoldedMLPSimulator:
    @pytest.mark.parametrize("ni", [1, 4, 16])
    def test_bit_exact_vs_functional_model(self, quantized, ni):
        rng = np.random.default_rng(0)
        images = rng.random((5, 784))
        simulator = FoldedMLPSimulator(quantized, ni)
        reference = quantized.forward_codes(images)
        for i, image in enumerate(images):
            codes, _trace = simulator.run_image(image)
            assert np.array_equal(codes, reference[i]), f"mismatch at image {i}"

    @pytest.mark.parametrize("ni", [1, 4, 8, 16])
    def test_cycle_count_matches_table7_formula(self, quantized, ni):
        simulator = FoldedMLPSimulator(quantized, ni)
        config = quantized.config
        _codes, trace = simulator.run_image(np.zeros(784))
        assert trace.cycles == simulator.cycles_per_image()
        assert trace.cycles == mlp_cycles(
            mnist_mlp_config().with_hidden(config.n_hidden), ni
        )

    def test_mac_count_covers_all_weights(self, quantized):
        simulator = FoldedMLPSimulator(quantized, 4)
        _codes, trace = simulator.run_image(np.zeros(784))
        n_weights = (
            quantized.w_hidden_codes.size + quantized.w_output_codes.size
        )
        assert trace.mac_operations == n_weights

    def test_predictions_match_functional(self, quantized):
        rng = np.random.default_rng(1)
        images = rng.random((8, 784))
        simulator = FoldedMLPSimulator(quantized, 8)
        assert np.array_equal(simulator.predict(images), quantized.predict(images))

    def test_bad_ni_rejected(self, quantized):
        with pytest.raises(SimulationError):
            FoldedMLPSimulator(quantized, 0)


class TestFoldedSNNwotSimulator:
    @pytest.fixture(scope="class")
    def wot(self, trained_snn_module):
        return SNNWithoutTime(trained_snn_module)

    @pytest.fixture(scope="class")
    def trained_snn_module(self):
        from repro.core.config import SNNConfig
        from repro.datasets.digits import load_digits
        from repro.snn.network import SNNTrainer, SpikingNetwork

        train_set, _ = load_digits(n_train=160, n_test=40)
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(20))
        SNNTrainer(network).fit(train_set)
        return network

    @pytest.mark.parametrize("ni", [1, 4, 16])
    def test_winner_matches_functional_model(self, wot, ni):
        from repro.datasets.digits import load_digits

        _, test_set = load_digits(n_train=160, n_test=40)
        simulator = FoldedSNNwotSimulator(wot, ni)
        potentials = wot.potentials(test_set.images[:6])
        # The simulator uses integer-rounded weights; compare against
        # the same rounding applied functionally.
        counts = wot.spike_counts(test_set.images[:6]).astype(np.int64)
        expected = np.argmax(counts @ simulator.weight_codes.T, axis=1)
        for i, image in enumerate(test_set.images[:6]):
            winner, _trace = simulator.run_image(image)
            assert winner == expected[i]
        # And the rounded model must agree with the float model almost
        # always (weights are already near-integers).
        float_winners = np.argmax(potentials, axis=1)
        assert np.mean(expected == float_winners) >= 0.8

    @pytest.mark.parametrize("ni", [1, 4, 8, 16])
    def test_cycle_count_matches_table7_formula(self, wot, ni):
        simulator = FoldedSNNwotSimulator(wot, ni)
        _winner, trace = simulator.run_image(np.zeros(784, dtype=np.uint8))
        assert trace.cycles == simulator.cycles_per_image()
        assert trace.cycles == snn_wot_cycles(
            mnist_snn_config().with_neurons(20), ni
        )

    def test_paper_cycle_anchors(self, wot):
        # Table 7: 791 / 203 / 105 / 56 cycles for the 784-input SNN.
        for ni, cycles in ((1, 791), (4, 203), (8, 105), (16, 56)):
            assert FoldedSNNwotSimulator(wot, ni).cycles_per_image() == cycles

    def test_bad_ni_rejected(self, wot):
        with pytest.raises(SimulationError):
            FoldedSNNwotSimulator(wot, -1)
