"""Tests for the GPU reference model and the hardware Gaussian RNG."""

import numpy as np
import pytest

from repro.core.config import mnist_mlp_config, mnist_snn_config
from repro.core.errors import HardwareModelError
from repro.hardware.expanded import expanded_mlp, expanded_snn_wot
from repro.hardware.folded import folded_mlp, folded_snn_wot, folded_snn_wt
from repro.hardware.gpu import MLP_GPU, SNN_GPU, GPUReference, gpu_for
from repro.hardware.rng_hw import (
    CLT_TERMS,
    LFSR31,
    HardwareGaussian,
    lfsr_period_probe,
)


class TestGPUReference:
    def test_table8_mlp_speedups(self):
        mlp = mnist_mlp_config()
        assert MLP_GPU.speedup_of(folded_mlp(mlp, 1)) == pytest.approx(40.44, rel=0.10)
        assert MLP_GPU.speedup_of(folded_mlp(mlp, 16)) == pytest.approx(626.03, rel=0.10)
        assert MLP_GPU.speedup_of(expanded_mlp(mlp)) == pytest.approx(5409.63, rel=0.10)

    def test_table8_snnwot_speedups(self):
        snn = mnist_snn_config()
        # Folded SNNwot delays carry ~15% model residuals (see
        # EXPERIMENTS.md), which propagate into the speedups.
        assert SNN_GPU.speedup_of(folded_snn_wot(snn, 1)) == pytest.approx(59.10, rel=0.25)
        assert SNN_GPU.speedup_of(folded_snn_wot(snn, 16)) == pytest.approx(543.43, rel=0.25)
        assert SNN_GPU.speedup_of(expanded_snn_wot(snn)) == pytest.approx(6086.46, rel=0.30)

    def test_table8_snnwt_slower_than_gpu_at_ni1(self):
        # The paper's striking Table 8 entry: folded SNNwt at ni=1 is
        # *slower* than the GPU (speedup 0.12).
        snn = mnist_snn_config()
        assert SNN_GPU.speedup_of(folded_snn_wt(snn, 1)) < 1.0

    def test_table8_energy_benefits(self):
        mlp = mnist_mlp_config()
        snn = mnist_snn_config()
        assert MLP_GPU.energy_benefit_of(folded_mlp(mlp, 1)) == pytest.approx(
            12_743.14, rel=0.25
        )
        assert SNN_GPU.energy_benefit_of(folded_snn_wot(snn, 1)) == pytest.approx(
            2_799.72, rel=0.25
        )
        assert SNN_GPU.energy_benefit_of(folded_snn_wt(snn, 1)) == pytest.approx(
            6.15, rel=0.25
        )

    def test_gpu_for_name_dispatch(self):
        assert gpu_for("MLP folded ni=16") is MLP_GPU
        assert gpu_for("SNNwot folded ni=1") is SNN_GPU
        with pytest.raises(HardwareModelError):
            gpu_for("TPU")

    def test_invalid_reference_rejected(self):
        with pytest.raises(HardwareModelError):
            GPUReference("bad", -1.0, 1.0)


class TestLFSR:
    def test_seed_zero_rejected(self):
        with pytest.raises(HardwareModelError):
            LFSR31(0)

    def test_state_stays_31_bits(self):
        lfsr = LFSR31(0x7FFFFFFF)
        for _ in range(100):
            lfsr.step()
            assert 0 < lfsr.state < 2**31

    def test_no_short_cycle(self):
        # Primitive polynomial -> period 2^31 - 1; probe a prefix.
        assert lfsr_period_probe(seed=1, probe=50_000)

    def test_next_bits_range(self):
        lfsr = LFSR31(12345)
        for _ in range(50):
            value = lfsr.next_bits(8)
            assert 0 <= value < 256

    def test_deterministic_stream(self):
        a = LFSR31(99)
        b = LFSR31(99)
        assert [a.step() for _ in range(64)] == [b.step() for _ in range(64)]

    def test_bits_look_balanced(self):
        lfsr = LFSR31(7)
        bits = [lfsr.step() for _ in range(4000)]
        assert 0.45 < np.mean(bits) < 0.55


class TestHardwareGaussian:
    def test_requires_four_seeds(self):
        with pytest.raises(HardwareModelError):
            HardwareGaussian([1, 2])
        assert CLT_TERMS == 4

    def test_sample_statistics_match_irwin_hall(self):
        generator = HardwareGaussian([1, 222, 333_333, 44_444_444])
        samples = generator.samples(3000)
        assert samples.mean() == pytest.approx(generator.raw_mean, rel=0.03)
        assert samples.std() == pytest.approx(generator.raw_std, rel=0.10)

    def test_distribution_roughly_gaussian(self):
        # CLT with 4 terms: ~99.9% of samples within 4 sigma.
        generator = HardwareGaussian([5, 6, 7, 8])
        samples = generator.samples(2000).astype(float)
        z = (samples - generator.raw_mean) / generator.raw_std
        assert np.mean(np.abs(z) < 4.0) > 0.995

    def test_intervals_rescaled_to_mean(self):
        generator = HardwareGaussian([9, 10, 11, 12])
        intervals = generator.intervals(mean=50.0, n=2000)
        assert intervals.mean() == pytest.approx(50.0, rel=0.05)
        assert intervals.min() >= 1.0  # one-cycle floor

    def test_bad_mean_rejected(self):
        with pytest.raises(HardwareModelError):
            HardwareGaussian([1, 2, 3, 4]).intervals(mean=0.0, n=10)
