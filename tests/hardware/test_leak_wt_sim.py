"""Tests for the leak interpolator and the cycle-accurate SNNwt sim."""

import numpy as np
import pytest

from repro.core.config import SNNConfig
from repro.core.errors import ConfigError, SimulationError
from repro.hardware.cyclesim import FoldedSNNwtSimulator
from repro.hardware.leak_lut import (
    LEAK_FACTOR_FORMAT,
    ExponentialLUT,
    apply_fixed_point_leak,
    leak_factor_fixed_point,
)


class TestExponentialLUT:
    def test_exact_at_zero(self):
        lut = ExponentialLUT.build(t_leak=500.0)
        assert lut.evaluate(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_interpolation_error_small(self):
        lut = ExponentialLUT.build(t_leak=500.0)
        assert lut.max_error() < 0.01

    def test_monotone_decreasing(self):
        lut = ExponentialLUT.build(t_leak=100.0)
        values = lut.evaluate(np.linspace(0, 300, 200))
        assert np.all(np.diff(values) <= 1e-12)

    def test_clamps_beyond_range(self):
        lut = ExponentialLUT.build(t_leak=100.0, dt_max=200.0)
        assert lut.evaluate(np.array([1e6]))[0] == lut.evaluate(np.array([200.0]))[0]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigError):
            ExponentialLUT.build(t_leak=0.0)
        with pytest.raises(ConfigError):
            ExponentialLUT.build(t_leak=10.0, segments=1)


class TestFixedPointLeak:
    def test_paper_constant(self):
        # t_leak = 500 ms -> exp(-1/500) = 0.998002 -> Q0.15 code 32703.
        assert leak_factor_fixed_point(500.0) == 32703

    def test_factor_accuracy(self):
        code = leak_factor_fixed_point(500.0)
        assert code * LEAK_FACTOR_FORMAT.scale == pytest.approx(
            np.exp(-1 / 500), abs=2e-5
        )

    def test_apply_leak_shrinks_potentials(self):
        code = leak_factor_fixed_point(500.0)
        potentials = np.array([100_000, 0, 5])
        leaked = apply_fixed_point_leak(potentials, code)
        assert leaked[0] < 100_000
        assert leaked[1] == 0
        assert np.all(leaked <= potentials)

    def test_repeated_leak_tracks_exponential(self):
        code = leak_factor_fixed_point(500.0)
        potential = np.array([1_000_000])
        for _ in range(100):
            potential = apply_fixed_point_leak(potential, code)
        exact = 1_000_000 * np.exp(-100 / 500)
        assert potential[0] == pytest.approx(exact, rel=0.01)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigError):
            leak_factor_fixed_point(-1.0)
        with pytest.raises(ConfigError):
            apply_fixed_point_leak(np.array([1]), 1 << 16)


class TestFoldedSNNwtSimulator:
    @pytest.fixture(scope="class")
    def trained(self):
        from repro.datasets.digits import load_digits
        from repro.snn.network import SNNTrainer, SpikingNetwork

        train_set, test_set = load_digits(n_train=160, n_test=60)
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(20))
        SNNTrainer(network).fit(train_set)
        return network, test_set

    def test_cycle_count_matches_table7_structure(self, trained):
        network, _ = trained
        for ni, expected in ((1, 784 * 500), (4, 196 * 500), (16, 49 * 500)):
            simulator = FoldedSNNwtSimulator(network, ni)
            assert simulator.cycles_per_image() == expected

    def test_trace_counts_folded_cycles(self, trained):
        network, test_set = trained
        simulator = FoldedSNNwtSimulator(network, 16)
        _winner, trace = simulator.run_image(test_set.images[0])
        assert trace.cycles == simulator.cycles_per_image()

    def test_predictions_agree_with_functional_model(self, trained):
        # The hardware datapath (LFSR timing, fixed-point leak) must
        # behave like the functional SNN: high prediction agreement on
        # the same images (spike realizations differ, so not exact).
        network, test_set = trained
        simulator = FoldedSNNwtSimulator(network, 16)
        hardware = simulator.predict(test_set.images[:25])
        functional = np.array(
            [
                network.predict_image(image, rng=i)
                for i, image in enumerate(test_set.images[:25])
            ]
        )
        agreement = np.mean(hardware == functional)
        assert agreement > 0.5  # well above the 0.1 chance rate

    def test_accuracy_above_chance(self, trained):
        network, test_set = trained
        simulator = FoldedSNNwtSimulator(network, 8)
        predictions = simulator.predict(test_set.images)
        accuracy = np.mean(predictions == test_set.labels)
        assert accuracy > 0.3

    def test_unlabeled_network_rejected(self):
        from repro.snn.network import SpikingNetwork

        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(10))
        with pytest.raises(SimulationError):
            FoldedSNNwtSimulator(network, 1)

    def test_bad_ni_rejected(self, trained):
        network, _ = trained
        with pytest.raises(SimulationError):
            FoldedSNNwtSimulator(network, 0)
