"""Tests for the TrueNorth core model and the SNN mapping (Section 5)."""

import numpy as np
import pytest

from repro.core.config import SNNConfig
from repro.core.errors import HardwareModelError, TrainingError
from repro.hardware.truenorth import (
    N_AXONS,
    N_AXON_TYPES,
    N_NEURONS,
    TrueNorthClassifier,
    TrueNorthCore,
    map_snn_to_core,
    truenorth_report,
)
from repro.snn.network import SNNTrainer, SpikingNetwork


def make_core(leak=0.0):
    rng = np.random.default_rng(0)
    return TrueNorthCore(
        connectivity=rng.integers(0, 2, size=(N_AXONS, N_NEURONS)).astype(np.int8),
        axon_types=np.arange(N_AXONS) % N_AXON_TYPES,
        type_weights=rng.integers(-100, 100, size=(N_NEURONS, N_AXON_TYPES)).astype(float),
        thresholds=np.full(N_NEURONS, 10.0),
        leak=leak,
    )


@pytest.fixture(scope="module")
def mapped(digits_small_module):
    train_set, test_set = digits_small_module
    network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(40))
    SNNTrainer(network).fit(train_set)
    return network, map_snn_to_core(network), test_set


@pytest.fixture(scope="module")
def digits_small_module():
    from repro.datasets.digits import load_digits

    return load_digits(n_train=240, n_test=80)


class TestCore:
    def test_effective_weights_respect_crossbar(self):
        core = make_core()
        weights = core.effective_weights()
        # Where connectivity is 0, the effective weight must be 0.
        zero_mask = core.connectivity.T == 0
        assert np.all(weights[zero_mask] == 0)

    def test_effective_weights_use_axon_types(self):
        core = make_core()
        weights = core.effective_weights()
        connected = np.argwhere(core.connectivity.T == 1)
        n, a = connected[0]
        assert weights[n, a] == core.type_weights[n, core.axon_types[a]]

    def test_integrate_counts_is_linear(self):
        core = make_core()
        counts = np.zeros(N_AXONS)
        counts[5] = 3
        potentials = core.integrate_counts(counts)
        assert np.allclose(potentials, core.effective_weights()[:, 5] * 3)

    def test_leak_reduces_potentials(self):
        counts = np.zeros(N_AXONS)
        counts[0] = 4
        without = make_core(leak=0.0).integrate_counts(counts)
        with_leak = make_core(leak=1.0).integrate_counts(counts)
        assert np.all(with_leak <= without)

    def test_geometry_validated(self):
        with pytest.raises(HardwareModelError):
            TrueNorthCore(
                connectivity=np.zeros((10, 10), dtype=np.int8),
                axon_types=np.zeros(N_AXONS, dtype=int),
                type_weights=np.zeros((N_NEURONS, N_AXON_TYPES)),
                thresholds=np.zeros(N_NEURONS),
            )

    def test_nine_bit_weight_limit_enforced(self):
        with pytest.raises(HardwareModelError):
            TrueNorthCore(
                connectivity=np.zeros((N_AXONS, N_NEURONS), dtype=np.int8),
                axon_types=np.zeros(N_AXONS, dtype=int),
                type_weights=np.full((N_NEURONS, N_AXON_TYPES), 300.0),
                thresholds=np.zeros(N_NEURONS),
            )


class TestMapping:
    def test_unlabeled_network_rejected(self):
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(10))
        with pytest.raises(TrainingError):
            map_snn_to_core(network)

    def test_too_many_neurons_rejected(self, digits_small_module):
        train_set, _ = digits_small_module
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(300))
        network.neuron_labels = np.zeros(300, dtype=np.int64)
        with pytest.raises(HardwareModelError):
            map_snn_to_core(network)

    def test_mapped_core_weights_within_9bit(self, mapped):
        _network, core, _test = mapped
        assert np.all(np.abs(core.type_weights) < 256)

    def test_mapping_preserves_most_accuracy(self, mapped):
        # Section 5: TrueNorth's constrained format costs ~2% accuracy
        # (89% vs 90.85%).  At our scale: classifier above chance and
        # within 25 points of the unconstrained readout.
        network, _core, test_set = mapped
        from repro.snn.snn_wot import SNNWithoutTime

        classifier = TrueNorthClassifier(network)
        tn_accuracy = classifier.evaluate(test_set).accuracy
        wot_accuracy = SNNWithoutTime(network).evaluate(test_set).accuracy
        assert tn_accuracy > 0.25
        assert tn_accuracy <= wot_accuracy + 0.05  # quantization can't help
        assert wot_accuracy - tn_accuracy < 0.25


class TestCostReport:
    def test_anchored_to_paper(self):
        report = truenorth_report()
        assert report.total_area_mm2 == pytest.approx(3.30, rel=0.01)
        assert report.time_per_image_us == pytest.approx(1024.0, rel=0.01)
        assert report.energy_per_image_uj == pytest.approx(2.48, rel=0.01)

    def test_runs_at_1mhz(self):
        assert truenorth_report().clock_mhz == pytest.approx(1.0)
