"""Tests for DesignReport invariants and design-space monotonicity."""

import pytest

from repro.core.config import mnist_mlp_config, mnist_snn_config
from repro.core.errors import HardwareModelError
from repro.hardware.designs import DesignReport
from repro.hardware.folded import (
    FOLD_FACTORS,
    folded_mlp,
    folded_snn_wot,
    folded_snn_wt,
    mlp_cycles,
    snn_wot_cycles,
    snn_wt_cycles,
)

MLP = mnist_mlp_config()
SNN = mnist_snn_config()


class TestDesignReport:
    def test_derived_quantities(self):
        report = DesignReport(
            name="x", topology="t", logic_area_mm2=1.0, sram_area_mm2=2.0,
            delay_ns=2.0, cycles_per_image=100, energy_per_image_uj=0.5,
        )
        assert report.total_area_mm2 == 3.0
        assert report.time_per_image_ns == 200.0
        assert report.time_per_image_us == pytest.approx(0.2)
        assert report.clock_mhz == 500.0
        assert report.power_w == pytest.approx(0.5e-6 / 200e-9)
        assert report.energy_per_image_nj == 500.0

    def test_summary_contains_key_numbers(self):
        report = folded_mlp(MLP, 4)
        summary = report.summary()
        assert "mm^2" in summary and "cycles" in summary

    def test_invalid_reports_rejected(self):
        with pytest.raises(HardwareModelError):
            DesignReport("x", "t", 1.0, 1.0, 0.0, 1, 1.0)
        with pytest.raises(HardwareModelError):
            DesignReport("x", "t", 1.0, 1.0, 1.0, 0, 1.0)
        with pytest.raises(HardwareModelError):
            DesignReport("x", "t", -1.0, 1.0, 1.0, 1, 1.0)


class TestMonotonicity:
    @pytest.mark.parametrize("fn,cfg", [
        (folded_mlp, MLP), (folded_snn_wot, SNN), (folded_snn_wt, SNN),
    ])
    def test_area_grows_with_ni(self, fn, cfg):
        areas = [fn(cfg, ni).total_area_mm2 for ni in FOLD_FACTORS]
        assert all(b > a for a, b in zip(areas, areas[1:]))

    @pytest.mark.parametrize("fn,cfg", [
        (folded_mlp, MLP), (folded_snn_wot, SNN), (folded_snn_wt, SNN),
    ])
    def test_cycles_shrink_with_ni(self, fn, cfg):
        cycles = [fn(cfg, ni).cycles_per_image for ni in FOLD_FACTORS]
        assert all(b < a for a, b in zip(cycles, cycles[1:]))

    def test_time_per_image_improves_with_ni(self):
        times = [folded_mlp(MLP, ni).time_per_image_ns for ni in FOLD_FACTORS]
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_snn_wt_500x_slower_than_wot(self):
        # One cycle per emulated millisecond, 500 ms presentations.
        for ni in FOLD_FACTORS:
            assert snn_wt_cycles(SNN, ni) == 500 * snn_wot_cycles(SNN, ni)


class TestCycleFormulas:
    def test_mlp_formula(self):
        # ceil(784/ni) + ceil(100/ni) + 2
        assert mlp_cycles(MLP, 1) == 784 + 100 + 2
        assert mlp_cycles(MLP, 16) == 49 + 7 + 2

    def test_snn_wot_formula(self):
        assert snn_wot_cycles(SNN, 1) == 784 + 7
        assert snn_wot_cycles(SNN, 16) == 49 + 7

    def test_ni_over_16_rejected(self):
        with pytest.raises(HardwareModelError):
            folded_mlp(MLP, 32)

    def test_ni_zero_rejected(self):
        with pytest.raises(HardwareModelError):
            folded_snn_wot(SNN, 0)

    def test_breakdown_populated(self):
        report = folded_snn_wot(SNN, 4)
        assert any("multiplier" in name for name in report.area_breakdown)
