"""Tests for the fault-sweep robustness experiment."""

import numpy as np
import pytest

from repro.analysis.fault_sweep import DEFAULT_RATES, fault_sweep
from repro.core.errors import ExperimentError
from repro.core.serialization import CheckpointStore

#: Cheap sweep configuration shared by the tests below.
CHEAP = dict(
    scale=0.4, rates=(0.0, 0.3), trials=1, seed=3, mlp_epochs=40, snn_epochs=1
)


@pytest.fixture(scope="module")
def sweep_result():
    return fault_sweep(**CHEAP)


class TestValidation:
    def test_scale_out_of_range(self):
        with pytest.raises(ExperimentError, match="scale"):
            fault_sweep(scale=0.0)
        with pytest.raises(ExperimentError, match="scale"):
            fault_sweep(scale=1.5)

    def test_bad_rates_rejected(self):
        with pytest.raises(ExperimentError, match="rates"):
            fault_sweep(rates=[0.0, 2.0])
        with pytest.raises(ExperimentError, match="rates"):
            fault_sweep(rates=[])

    def test_bad_trials_rejected(self):
        with pytest.raises(ExperimentError, match="trials"):
            fault_sweep(trials=0)

    def test_default_rates_start_clean_and_increase(self):
        assert DEFAULT_RATES[0] == 0.0
        assert list(DEFAULT_RATES) == sorted(DEFAULT_RATES)


class TestSweepResult:
    def test_one_row_per_rate_with_all_columns(self, sweep_result):
        assert len(sweep_result.rows) == 2
        for row in sweep_result.rows:
            for column in (
                "weight_ber",
                "mlp8_acc",
                "snnwt_acc",
                "snnwot_acc",
                "mlp8_ret%",
                "snnwt_ret%",
                "snnwot_ret%",
            ):
                assert column in row

    def test_rate_zero_row_is_the_clean_baseline(self, sweep_result):
        clean = sweep_result.find_row(weight_ber=0.0)
        # Retention is measured against the first swept rate, so the
        # uninjected row retains exactly 100% for every model.
        assert clean["mlp8_ret%"] == 100.0
        assert clean["snnwt_ret%"] == 100.0
        assert clean["snnwot_ret%"] == 100.0
        # And the models actually learned something at this scale
        # (chance on the 10-class digits workload is 10%).
        assert clean["mlp8_acc"] > 25.0
        assert clean["snnwot_acc"] > 25.0

    def test_heavy_corruption_degrades_every_model(self, sweep_result):
        clean = sweep_result.find_row(weight_ber=0.0)
        heavy = sweep_result.find_row(weight_ber=0.3)
        assert heavy["mlp8_acc"] < clean["mlp8_acc"]
        assert heavy["snnwot_acc"] <= clean["snnwot_acc"]
        assert heavy["snnwt_acc"] <= clean["snnwt_acc"]

    def test_deterministic_given_seed(self, sweep_result):
        again = fault_sweep(**CHEAP)
        assert again.rows == sweep_result.rows

    def test_paper_claims_attached(self, sweep_result):
        assert sweep_result.paper_rows
        assert any(
            "graceful" in row["expectation"] for row in sweep_result.paper_rows
        )


class TestSweepCheckpointing:
    def test_checkpoint_reused_across_runs(self, tmp_path, sweep_result):
        store = CheckpointStore(tmp_path)
        first = fault_sweep(checkpoint=store, **CHEAP)
        checkpoints = sorted(p.name for p in tmp_path.glob("*.npz"))
        assert len(checkpoints) == 2  # one MLP, one SNN
        # Second run must reload the exact same trained models, so the
        # rows are identical; a retrain under a fresh store would be
        # identical anyway (same seed), so also assert the files are
        # untouched (same mtime).
        stamps = {p.name: p.stat().st_mtime_ns for p in tmp_path.glob("*.npz")}
        second = fault_sweep(checkpoint=store, **CHEAP)
        assert second.rows == first.rows
        assert {
            p.name: p.stat().st_mtime_ns for p in tmp_path.glob("*.npz")
        } == stamps
        # Checkpointed or not, the sweep yields the same curve.
        assert first.rows == sweep_result.rows


class TestRegistryIntegration:
    def test_registered_under_fault_sweep(self):
        import repro.analysis  # noqa: F401  (registers experiments)
        from repro.core import registry

        spec = registry.get("fault-sweep")
        assert spec.fn is fault_sweep
        assert "fault" in spec.title.lower() or "fault" in spec.paper_location.lower()
