"""Consistency checks on the embedded paper reference data.

The analysis modules carry the paper's published numbers as reference
rows.  These tests cross-check them against each other and against the
relationships the paper states in prose, so a typo in one table's
constants cannot silently skew a comparison.
"""

import pytest

from repro.analysis.figures import PAPER_FIG6, PAPER_FIG8, PAPER_FIG14
from repro.analysis.tables_accuracy import PAPER_TABLE2, PAPER_TABLE3
from repro.analysis.tables_hardware import (
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
    PAPER_TABLE7,
    PAPER_TABLE8,
    PAPER_TABLE9,
)
from repro.analysis.workloads import PAPER_SEC45, PAPER_SEC5


class TestAccuracyConstants:
    def test_table3_gap_is_583(self):
        # Section 3.1: "the SNN+STDP accuracy is 5.83% less than for
        # the MLP".
        rows = {r["model"]: r["accuracy"] for r in PAPER_TABLE3}
        gap = rows["MLP+BP"] - rows["SNN+STDP - LIF (SNNwt)"]
        assert gap == pytest.approx(5.83, abs=0.01)

    def test_table3_snn_bp_gap_is_225(self):
        # Section 3.2: "only 2.25% of accuracy difference between
        # SNN+BP and MLP+BP".
        rows = {r["model"]: r["accuracy"] for r in PAPER_TABLE3}
        assert rows["MLP+BP"] - rows["SNN+BP"] == pytest.approx(2.25, abs=0.01)

    def test_table3_wot_costs_103(self):
        # Section 4.2.2: "the accuracy difference between the two is
        # 1.03%".
        rows = {r["model"]: r["accuracy"] for r in PAPER_TABLE3}
        delta = rows["SNN+STDP - LIF (SNNwt)"] - rows["SNN+STDP - Simplified (SNNwot)"]
        assert delta == pytest.approx(0.97, abs=0.07)  # 91.82 - 90.85

    def test_table2_contains_querlioz_anchor(self):
        rows = {r["model"]: r["accuracy"] for r in PAPER_TABLE2}
        assert rows["SNN+STDP (Querlioz et al.)"] == 93.50

    def test_fig14_rate_matches_table3(self):
        # Section 5: "82.14% vs 91.82%" at the same topology.
        at_300 = {
            r["coding"]: r["accuracy"] for r in PAPER_FIG14 if r["neurons"] == 300
        }
        assert at_300["rate (Gaussian)"] == pytest.approx(91.82)
        assert at_300["rank order"] == pytest.approx(82.14)

    def test_fig8_anchors_match_table3(self):
        at = {(r["model"], r["neurons"]): r["accuracy"] for r in PAPER_FIG8}
        assert at[("MLP", 100)] == pytest.approx(97.65)
        assert at[("SNN", 300)] == pytest.approx(91.82)
        # Section 4.2.3: MLP with 15 hidden neurons reaches 92.07%.
        assert at[("MLP", 15)] == pytest.approx(92.1, abs=0.1)

    def test_fig6_errors_bracket_table3_mlp(self):
        # Figure 6's a=1 error (~2.35%) matches Table 3's 97.65%.
        errors = {r["activation"]: r["error_percent"] for r in PAPER_FIG6}
        assert errors["sigmoid(a=1)"] == pytest.approx(100 - 97.65, abs=0.1)
        assert errors["step [0/1]"] >= errors["sigmoid(a=16)"] >= errors["sigmoid(a=1)"]


class TestHardwareConstants:
    def test_table4_totals_are_sums(self):
        for row in PAPER_TABLE4:
            assert row["total_mm2"] == pytest.approx(
                row["logic_mm2"] + row["sram_mm2"], abs=0.01
            )

    def test_table5_energy_equals_power_times_delay(self):
        # E = P x delay holds within rounding of the published digits.
        for row in PAPER_TABLE5:
            assert row["energy_nj"] == pytest.approx(
                row["power_w"] * row["delay_ns"], abs=0.03
            )

    def test_table6_totals_consistent_with_banks(self):
        # Per-cycle energy = banks x per-bank read energy for the
        # published bank geometries.
        per_bank = {1: 44.41, 4: 33.05, 8: 32.46, 16: 32.46}
        for row in PAPER_TABLE6:
            if row["network"] == "SNN":
                expected = row["n_banks"] * per_bank[row["ni"]] / 1e3
                assert row["energy_nj"] == pytest.approx(expected, rel=0.01)

    def test_table7_totals_include_table6_sram(self):
        sram = {r["ni"]: r["area_mm2"] for r in PAPER_TABLE6 if r["network"] == "SNN"}
        for row in PAPER_TABLE7:
            if row["design"] == "SNNwot" and row["ni"] != "expanded":
                assert row["total_mm2"] == pytest.approx(
                    row["logic_mm2"] + sram[int(row["ni"])], abs=0.01
                )

    def test_table7_snnwt_cycles_are_500x_wot(self):
        wot = {r["ni"]: r["cycles"] for r in PAPER_TABLE7 if r["design"] == "SNNwot"}
        wt = {r["ni"]: r["cycles"] for r in PAPER_TABLE7 if r["design"] == "SNNwt"}
        for ni in ("1", "4", "8", "16"):
            assert wt[ni] == 500 * wot[ni]

    def test_table8_gpu_times_self_consistent(self):
        # The per-image GPU times implied by different MLP rows agree
        # within a few percent — the property the GPU model relies on.
        t7 = {
            (r["design"], r["ni"]): r
            for r in PAPER_TABLE7
        }
        implied = []
        for ni in ("1", "16"):
            row7 = t7[("MLP", ni)]
            speedup = next(
                r["speedup"] for r in PAPER_TABLE8
                if r["design"] == "MLP" and r["ni"] == ni
            )
            implied.append(row7["cycles"] * row7["delay_ns"] * speedup)
        assert implied[0] == pytest.approx(implied[1], rel=0.02)

    def test_table9_delay_vs_table7_prose(self):
        # The paper says the STDP circuit raises cycle time "by 7% at
        # most", and that holds at ni=1 and ni=16 — but its own Table 9
        # delays at ni=4/8 (1.48/1.81 ns) are ~30-50% above Table 7's
        # SNNwt (1.11/1.18 ns).  Table 9's values instead follow the
        # smooth tree-depth growth our delay model produces; recorded
        # as a paper-internal inconsistency (DESIGN.md section 7).
        wt_delay = {
            int(r["ni"]): r["delay_ns"]
            for r in PAPER_TABLE7
            if r["design"] == "SNNwt" and r["ni"] != "expanded"
        }
        t9 = {r["ni"]: r["delay_ns"] for r in PAPER_TABLE9}
        assert t9[1] <= wt_delay[1] * 1.08
        assert t9[16] <= wt_delay[16] * 1.08
        assert t9[4] > wt_delay[4] * 1.2   # the inconsistent cells
        assert t9[8] > wt_delay[8] * 1.2

    def test_sec5_paper_rows(self):
        rows = {r["design"]: r for r in PAPER_SEC5}
        assert rows["TrueNorth core"]["time_us"] / rows["SNNwot folded ni=1"]["time_us"] > 1000

    def test_sec45_ratio_bands_ordered(self):
        rows = {(r["workload"], r["model"]): r for r in PAPER_SEC45}
        mpeg = rows[("MPEG-7", "SNNwot/MLP area ratio ni=1..16")]
        sad = rows[("SAD", "SNNwot/MLP area ratio ni=1..16")]
        assert mpeg["low"] <= mpeg["high"]
        assert sad["low"] <= sad["high"]
        assert mpeg["low"] > sad["high"]
