"""Tests for the analysis layer: experiments, common helpers, reports.

Only the fast (hardware-model / static) experiments run here; the
training-heavy ones are exercised by the benchmark suite.
"""

import numpy as np
import pytest

import repro.analysis as analysis
from repro.analysis import common
from repro.core import registry


class TestCommonHelpers:
    def test_scale_factor_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert common.scale_factor() == 1.0

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert common.scale_factor() == 0.5

    def test_scale_factor_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        assert common.scale_factor() == 1.0

    def test_scale_factor_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert common.scale_factor() == 0.05

    def test_dataset_caches_return_same_object(self):
        first = common.digits(200, 60)
        second = common.digits(200, 60)
        assert first[0] is second[0]


class TestStaticExperiments:
    def test_table1_matches_paper_exactly(self):
        result = registry.get("table1").run()
        paper = {(r["model"], r["parameter"]): r["value"] for r in result.paper_rows}
        for row in result.rows:
            assert paper[(row["model"], row["parameter"])] == row["value"]

    def test_table2_static(self):
        result = registry.get("table2").run()
        assert result.rows == result.paper_rows

    @pytest.mark.parametrize(
        "experiment_id",
        ["table4", "table5", "table6", "table7", "table8", "table9", "fig5", "scale-study"],
    )
    def test_fast_experiments_produce_rows(self, experiment_id):
        result = registry.get(experiment_id).run()
        assert result.rows, experiment_id
        assert result.experiment_id == experiment_id
        # Every row must be a flat dict with printable values.
        for row in result.rows:
            for value in row.values():
                assert isinstance(value, (int, float, str, np.integer, np.floating))

    def test_table7_contains_all_design_points(self):
        result = registry.get("table7").run()
        designs = {(r["design"], r["ni"]) for r in result.rows}
        for design in ("MLP", "SNNwot", "SNNwt"):
            for ni in ("1", "4", "8", "16", "expanded"):
                assert (design, ni) in designs

    def test_scale_study_is_registered_extension(self):
        spec = registry.get("scale-study")
        assert "Conclusions" in spec.paper_location


class TestReportRendering:
    def test_full_report_subset(self):
        text = analysis.full_report(["table6", "fig5"])
        assert text.index("table6") < text.index("fig5")

    def test_render_handles_heterogeneous_rows(self):
        text = analysis.render_table([{"a": 1}, {"b": 2.5}])
        assert "a" in text and "b" in text

    def test_cli_report_all_fast(self, capsys):
        from repro.cli import main

        assert main(["report", "table4", "table6"]) == 0
        out = capsys.readouterr().out
        assert out.count("measured:") == 2
