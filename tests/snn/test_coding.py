"""Tests for the spike coding schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.snn.coding import (
    GaussianCoder,
    PoissonCoder,
    RankOrderCoder,
    SpikeTrain,
    TimeToFirstSpikeCoder,
    deterministic_counts,
    make_coder,
    mean_interval,
)


class TestMeanInterval:
    def test_full_luminance_is_min_interval(self):
        # 255 -> 50 ms (20 Hz), the paper's anchor.
        assert mean_interval(np.array([255]))[0] == pytest.approx(50.0)

    def test_zero_luminance_is_three_times_slower(self):
        assert mean_interval(np.array([0]))[0] == pytest.approx(150.0)

    def test_monotone_decreasing_in_luminance(self):
        intervals = mean_interval(np.arange(256))
        assert np.all(np.diff(intervals) < 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            mean_interval(np.array([300]))


class TestDeterministicCounts:
    def test_bright_pixel_max_count(self):
        # 500 ms / 50 ms = 10 spikes, the 4-bit hardware cap.
        assert deterministic_counts(np.array([255]))[0] == 10

    def test_dark_pixel_count(self):
        # 500 ms / 150 ms = 3 spikes.
        assert deterministic_counts(np.array([0]))[0] == 3

    def test_monotone_in_luminance(self):
        counts = deterministic_counts(np.arange(256))
        assert np.all(np.diff(counts) >= 0)

    def test_matches_figure7_breakpoints(self):
        # The Figure 7 comparator thresholds correspond to the count
        # increments of the rate law: counts step up near 64, 128, 170,
        # 200, 223, 242, 255 luminance.
        counts = deterministic_counts(np.arange(256))
        jumps = np.flatnonzero(np.diff(counts)) + 1
        for expected in (64, 128, 170, 200):
            assert np.any(np.abs(jumps - expected) <= 2)


class TestRateCoders:
    @pytest.mark.parametrize("coder_cls", [PoissonCoder, GaussianCoder])
    def test_bright_pixels_spike_more(self, coder_cls):
        coder = coder_cls()
        image = np.array([255] * 8 + [20] * 8, dtype=np.uint8)
        counts = coder.encode(image, rng=0).counts()
        assert counts[:8].mean() > counts[8:].mean()

    @pytest.mark.parametrize("coder_cls", [PoissonCoder, GaussianCoder])
    def test_count_cap_respected(self, coder_cls):
        coder = coder_cls()
        image = np.full(16, 255, dtype=np.uint8)
        counts = coder.encode(image, rng=0).counts()
        assert counts.max() <= coder.max_spikes_per_pixel == 10

    def test_mean_rate_matches_law(self):
        # At luminance 255 the mean interval is 50 ms -> about 9-10
        # spikes in a 500 ms window (cap at 10).
        coder = PoissonCoder()
        image = np.full(300, 255, dtype=np.uint8)
        counts = coder.encode(image, rng=0).counts()
        assert 6.5 < counts.mean() <= 10

    def test_gaussian_mean_close_to_poisson_mean(self):
        # Section 4.2.2: Gaussian intervals behave like Poisson ones.
        image = np.full(300, 180, dtype=np.uint8)
        poisson = PoissonCoder().encode(image, rng=0).counts().mean()
        gaussian = GaussianCoder().encode(image, rng=0).counts().mean()
        assert gaussian == pytest.approx(poisson, rel=0.25)

    def test_spike_times_within_duration(self):
        train = PoissonCoder(duration=400).encode(
            np.full(50, 200, dtype=np.uint8), rng=1
        )
        assert train.times.max() < 400

    def test_deterministic_given_rng_seed(self):
        image = np.full(20, 128, dtype=np.uint8)
        a = PoissonCoder().encode(image, rng=9)
        b = PoissonCoder().encode(image, rng=9)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.inputs, b.inputs)


class TestTemporalCoders:
    def test_ttfs_one_spike_per_active_pixel(self):
        image = np.array([0, 100, 200, 255], dtype=np.uint8)
        train = TimeToFirstSpikeCoder().encode(image)
        assert train.n_spikes == 3  # dark pixel silent
        assert train.counts().max() == 1

    def test_ttfs_brighter_spikes_earlier(self):
        image = np.array([50, 250], dtype=np.uint8)
        train = TimeToFirstSpikeCoder().encode(image)
        time_dim = dict(zip(train.inputs, train.times))
        assert time_dim[1] < time_dim[0]

    def test_rank_order_ordering(self):
        image = np.array([10, 240, 120], dtype=np.uint8)
        train = RankOrderCoder().encode(image)
        assert train.inputs.tolist() == [1, 2, 0]  # luminance descending

    def test_rank_order_modulation_decays(self):
        image = np.arange(1, 100, dtype=np.uint8)
        train = RankOrderCoder().encode(image)
        assert np.all(np.diff(train.modulation) <= 0)
        assert train.modulation[0] == 1.0

    def test_rank_order_bad_modulation_rejected(self):
        with pytest.raises(ConfigError):
            RankOrderCoder(modulation=1.5)

    def test_temporal_coders_flagged_not_rate_coded(self):
        assert PoissonCoder.rate_coded and GaussianCoder.rate_coded
        assert not TimeToFirstSpikeCoder.rate_coded
        assert not RankOrderCoder.rate_coded


class TestSpikeTrain:
    def test_sorted_on_construction(self):
        train = SpikeTrain(
            times=np.array([5.0, 1.0, 3.0]),
            inputs=np.array([0, 1, 2]),
            n_inputs=3,
            duration=10.0,
        )
        assert train.times.tolist() == [1.0, 3.0, 5.0]
        assert train.inputs.tolist() == [1, 2, 0]

    def test_counts(self):
        train = SpikeTrain(
            times=np.array([1.0, 2.0, 3.0]),
            inputs=np.array([0, 0, 2]),
            n_inputs=3,
            duration=10.0,
        )
        assert train.counts().tolist() == [2, 0, 1]

    def test_weighted_counts_use_modulation(self):
        train = SpikeTrain(
            times=np.array([1.0, 2.0]),
            inputs=np.array([0, 0]),
            n_inputs=1,
            duration=10.0,
            modulation=np.array([1.0, 0.5]),
        )
        assert train.weighted_counts()[0] == pytest.approx(1.5)

    def test_steps_bucketing(self):
        train = SpikeTrain(
            times=np.array([0.2, 0.7, 1.5]),
            inputs=np.array([0, 1, 2]),
            n_inputs=3,
            duration=3.0,
        )
        steps = train.steps(1.0)
        assert len(steps) == 3
        assert sorted(steps[0].tolist()) == [0, 1]
        assert steps[1].tolist() == [2]
        assert steps[2].tolist() == []

    def test_steps_weighted_matches_steps(self):
        image = np.full(30, 150, dtype=np.uint8)
        train = PoissonCoder().encode(image, rng=0)
        plain = train.steps(1.0)
        weighted = train.steps_weighted(1.0)
        assert len(plain) == len(weighted)
        for p, (inputs, modulation) in zip(plain, weighted):
            assert sorted(p.tolist()) == sorted(inputs.tolist())
            assert np.all(modulation == 1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            SpikeTrain(np.array([1.0]), np.array([0, 1]), 2, 10.0)


class TestMakeCoder:
    def test_all_registered_names(self):
        for name in ("poisson", "gaussian", "rank-order", "time-to-first-spike"):
            assert make_coder(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            make_coder("morse")


class TestCodingProperties:
    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=40, deadline=None)
    def test_counts_bounded_for_any_luminance(self, luminance):
        counts = deterministic_counts(np.array([luminance]))
        assert 3 <= counts[0] <= 10

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_poisson_spikes_always_valid(self, pixels, seed):
        image = np.array(pixels, dtype=np.uint8)
        train = PoissonCoder().encode(image, rng=seed)
        assert np.all(train.times >= 0)
        assert np.all(train.times < train.duration)
        assert np.all(train.inputs < image.size)
        assert train.counts().max() <= 10
