"""Property-based invariants of the WTA spiking network."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SNNConfig
from repro.snn.coding import PoissonCoder, SpikeTrain
from repro.snn.network import SpikingNetwork


def make_network(threshold: float, seed: int = 0) -> SpikingNetwork:
    config = SNNConfig(n_inputs=16, t_period=200.0, epochs=1, seed=seed).with_neurons(6)
    network = SpikingNetwork(config)
    network.population.thresholds[:] = threshold
    return network


@st.composite
def spike_trains(draw):
    n_spikes = draw(st.integers(min_value=0, max_value=120))
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=199.0, allow_nan=False),
            min_size=n_spikes,
            max_size=n_spikes,
        )
    )
    inputs = draw(
        st.lists(
            st.integers(min_value=0, max_value=15),
            min_size=n_spikes,
            max_size=n_spikes,
        )
    )
    return SpikeTrain(
        np.array(times), np.array(inputs, dtype=np.int64), 16, 200.0
    )


class TestPresentationInvariants:
    @given(spike_trains(), st.sampled_from([50.0, 500.0, 5000.0]))
    @settings(max_examples=30, deadline=None)
    def test_output_spikes_sorted_and_in_window(self, train, threshold):
        network = make_network(threshold)
        result = network.present(train)
        times = [t for t, _n in result.output_spikes]
        assert times == sorted(times)
        assert all(0 <= t < train.duration for t in times)

    @given(spike_trains(), st.sampled_from([50.0, 500.0]))
    @settings(max_examples=30, deadline=None)
    def test_winner_is_first_output_spike(self, train, threshold):
        network = make_network(threshold)
        result = network.present(train)
        if result.output_spikes:
            first_time, first_neuron = result.output_spikes[0]
            assert result.winner == first_neuron
            assert result.winner_time == first_time
        else:
            assert result.winner == -1

    @given(spike_trains())
    @settings(max_examples=30, deadline=None)
    def test_refractory_gap_between_same_neuron_spikes(self, train):
        network = make_network(100.0)
        result = network.present(train)
        per_neuron = {}
        for t, neuron in result.output_spikes:
            per_neuron.setdefault(neuron, []).append(t)
        for times in per_neuron.values():
            assert all(
                b - a >= network.config.t_refrac for a, b in zip(times, times[1:])
            )

    @given(spike_trains())
    @settings(max_examples=20, deadline=None)
    def test_potentials_finite_and_weights_untouched(self, train):
        network = make_network(1e9)
        before = network.weights.copy()
        result = network.present(train)
        assert np.all(np.isfinite(result.final_potentials))
        assert np.all(result.final_potentials >= 0.0)
        assert np.array_equal(before, network.weights)

    @given(spike_trains())
    @settings(max_examples=20, deadline=None)
    def test_learning_keeps_weights_in_8bit_range(self, train):
        network = make_network(100.0)
        network.present(train, learn=True)
        assert network.weights.min() >= 0.0
        assert network.weights.max() <= network.config.w_max

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_same_train_is_deterministic(self, seed):
        network_a = make_network(500.0)
        network_b = make_network(500.0)
        image = np.random.default_rng(seed).integers(0, 256, 16, dtype=np.uint8)
        coder = PoissonCoder(duration=200.0)
        train = coder.encode(image, rng=seed)
        result_a = network_a.present(train)
        result_b = network_b.present(train)
        assert result_a.winner == result_b.winner
        assert np.array_equal(result_a.final_potentials, result_b.final_potentials)


class TestThresholdScalingInvariance:
    @given(st.floats(min_value=0.1, max_value=4.0))
    @settings(max_examples=15, deadline=None)
    def test_joint_weight_threshold_scaling_preserves_winner(self, scale):
        # The invariance equalize_thresholds relies on.
        base = make_network(500.0)
        scaled = make_network(500.0)
        scaled.weights = base.weights * scale
        scaled.population.thresholds[:] = 500.0 * scale
        train = integer = PoissonCoder(duration=200.0).encode(
            np.full(16, 200, dtype=np.uint8), rng=3
        )
        assert scaled.present(train).winner == base.present(train).winner
