"""Tests for the exact event-driven simulator vs the 1-ms grid."""

import numpy as np
import pytest

from repro.core.config import SNNConfig
from repro.core.errors import SimulationError
from repro.snn.coding import SpikeTrain
from repro.snn.event_driven import (
    grid_agreement,
    predict_event_driven,
    present_event_driven,
)
from repro.snn.network import SpikingNetwork


def tiny_network(threshold=500.0, n_neurons=6, n_inputs=16):
    config = SNNConfig(n_inputs=n_inputs, t_period=200.0, epochs=1).with_neurons(
        n_neurons
    )
    network = SpikingNetwork(config)
    network.population.thresholds[:] = threshold
    return network


def integer_train(n_inputs=16, duration=200.0, every=10):
    times, inputs = [], []
    for t in range(0, int(duration), every):
        for i in range(n_inputs):
            times.append(float(t))
            inputs.append(i)
    return SpikeTrain(np.array(times), np.array(inputs), n_inputs, duration)


class TestExactEquivalence:
    def test_integer_times_match_grid_exactly(self):
        # On integer spike times the grid introduces no quantization,
        # so winner, winner time and potentials must agree.
        network = tiny_network()
        train = integer_train()
        grid = network.present(train)
        event = present_event_driven(network, train)
        assert event.winner == grid.winner
        assert event.winner_time == pytest.approx(grid.winner_time)
        assert len(event.output_spikes) == len(grid.output_spikes)

    def test_final_potentials_match_on_integer_times(self):
        network = tiny_network(threshold=1e12)  # no firing: pure integration
        train = integer_train()
        grid = network.present(train)
        event = present_event_driven(network, train)
        # The grid decays at step start; the event sim decays over exact
        # gaps — identical for integer arrivals up to the final step.
        assert np.allclose(event.final_potentials, grid.final_potentials, rtol=0.01)

    def test_stop_after_first_spike(self):
        network = tiny_network()
        result = present_event_driven(
            network, integer_train(), stop_after_first_spike=True
        )
        assert result.n_output_spikes == 1


class TestEventDrivenSemantics:
    def test_fractional_times_processed_exactly(self):
        network = tiny_network(threshold=1e12, n_inputs=2, n_neurons=2)
        network.weights[:] = 100.0
        train = SpikeTrain(
            times=np.array([0.25, 100.75]),
            inputs=np.array([0, 1]),
            n_inputs=2,
            duration=200.0,
        )
        result = present_event_driven(network, train)
        # Analytical: 100*exp(-100.5/500) + 100, then decay to 200 ms.
        tau = network.config.t_leak
        expected = (100 * np.exp(-100.5 / tau) + 100) * np.exp(-99.25 / tau)
        assert result.final_potentials[0] == pytest.approx(expected, rel=1e-9)

    def test_simultaneous_spikes_form_one_group(self):
        network = tiny_network(threshold=1e12, n_inputs=4, n_neurons=2)
        network.weights[:] = 1.0
        train = SpikeTrain(
            times=np.array([5.0, 5.0, 5.0, 5.0]),
            inputs=np.arange(4),
            n_inputs=4,
            duration=10.0,
        )
        result = present_event_driven(network, train)
        tau = network.config.t_leak
        assert result.final_potentials[0] == pytest.approx(
            4.0 * np.exp(-5.0 / tau), rel=1e-9
        )

    def test_refractory_respected_at_exact_deadlines(self):
        network = tiny_network(threshold=10.0, n_inputs=2, n_neurons=2)
        network.weights[0, :] = 20.0
        network.weights[1, :] = 0.0  # silence the WTA competitor
        t_refrac = network.config.t_refrac
        train = SpikeTrain(
            times=np.array([1.0, 1.0 + t_refrac / 2, 1.0 + t_refrac + 1.0]),
            inputs=np.zeros(3, dtype=np.int64),
            n_inputs=2,
            duration=200.0,
        )
        result = present_event_driven(network, train)
        spike_times = [t for t, _ in result.output_spikes]
        assert spike_times[0] == pytest.approx(1.0)
        # The mid-refractory spike is ignored; the next fire happens at
        # the post-refractory arrival.
        assert len(spike_times) == 2
        assert spike_times[1] == pytest.approx(1.0 + t_refrac + 1.0)

    def test_wrong_input_count_rejected(self):
        network = tiny_network(n_inputs=16)
        train = SpikeTrain(np.array([1.0]), np.array([0]), 4, 10.0)
        with pytest.raises(SimulationError):
            present_event_driven(network, train)


class TestAgreementOnRealData:
    def test_high_agreement_with_grid(self, trained_snn, digits_small):
        _, test_set = digits_small
        agreement = grid_agreement(trained_snn, test_set.images[:30])
        assert agreement > 0.8

    def test_predict_event_driven(self, trained_snn, digits_small):
        _, test_set = digits_small
        prediction = predict_event_driven(trained_snn, test_set.images[0], rng=0)
        assert -1 <= prediction < 10

    def test_predict_requires_labels(self):
        network = tiny_network()
        with pytest.raises(SimulationError):
            predict_event_driven(network, np.zeros(16, dtype=np.uint8))
