"""Equivalence tests for the fused STDP training engine.

The contract under test (see :mod:`repro.snn.training`): the fused
engine's trained weights, thresholds, homeostasis state and labels are
**bit-identical** to the serial per-image / per-timestep oracle
(:meth:`SNNTrainer.train_serial`), for every coder, both STDP modes,
conscience on and off, multiple seeds and epochs, and with fault
injection active.  Also pins the numerical properties the engine's
bit-identity argument rests on, and the PR 2 model-cache keys (a
training speedup must not silently invalidate cached models).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.artifacts import CODE_VERSION, cache_key, coder_signature
from repro.core.config import SNNConfig
from repro.core.errors import TrainingError
from repro.core.rng import child_rng
from repro.datasets.digits import load_digits
from repro.faults import FaultConfig, FaultInjector
from repro.snn.coding import make_coder
from repro.snn.network import SNNTrainer, SpikingNetwork
from repro.snn.training import FusedSTDPEngine, learn_images_serial

# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_digits():
    return load_digits(n_train=90, n_test=40, seed=5, side=12)


def _config(train_set, seed=13, neurons=15, epochs=1, **overrides) -> SNNConfig:
    return SNNConfig(
        n_inputs=train_set.n_inputs,
        n_neurons=neurons,
        n_labels=train_set.n_classes,
        epochs=epochs,
        seed=seed,
        **overrides,
    )


def _build(config: SNNConfig, coder_name=None):
    coder = None
    if coder_name is not None:
        coder = make_coder(
            coder_name,
            duration=config.t_period,
            max_rate_interval=config.min_spike_interval,
        )
    return SpikingNetwork(config, coder=coder)


def _snapshot(network: SpikingNetwork) -> dict:
    homeostasis = network.homeostasis
    return {
        "weights": network.weights.copy(),
        "thresholds": network.population.thresholds.copy(),
        "activity": homeostasis.activity.copy(),
        "elapsed_ms": homeostasis.elapsed_ms,
        "labels": network.neuron_labels.copy(),
    }


def _assert_identical(fused: dict, serial: dict) -> None:
    np.testing.assert_array_equal(fused["weights"], serial["weights"])
    np.testing.assert_array_equal(fused["thresholds"], serial["thresholds"])
    np.testing.assert_array_equal(fused["activity"], serial["activity"])
    assert fused["elapsed_ms"] == serial["elapsed_ms"]
    np.testing.assert_array_equal(fused["labels"], serial["labels"])


def _train_both(config, tiny_digits, coder_name=None, conscience=True, faults=None):
    """Train one network per engine; return (fused, serial) snapshots."""
    train_set, _ = tiny_digits
    snapshots = []
    for engine in ("fused", "serial"):
        network = _build(config, coder_name)
        if faults is not None:
            network.fault_injector = FaultInjector(faults)
        trainer = SNNTrainer(network, conscience=conscience)
        trainer.train(train_set, engine=engine)
        network.equalize_thresholds()
        trainer.label(train_set)
        snapshots.append(_snapshot(network))
    return snapshots


# ----------------------------------------------------------------------
# Trainer-level equivalence (the acceptance criterion)
# ----------------------------------------------------------------------


class TestTrainerEquivalence:
    @pytest.mark.parametrize("seed", [13, 101])
    @pytest.mark.parametrize("epochs", [1, 2])
    def test_seeds_and_epochs(self, tiny_digits, seed, epochs):
        config = _config(tiny_digits[0], seed=seed, epochs=epochs)
        fused, serial = _train_both(config, tiny_digits)
        _assert_identical(fused, serial)

    @pytest.mark.parametrize(
        "coder_name", ["poisson", "gaussian", "time-to-first-spike", "rank-order"]
    )
    def test_every_coder(self, tiny_digits, coder_name):
        config = _config(tiny_digits[0])
        fused, serial = _train_both(config, tiny_digits, coder_name=coder_name)
        _assert_identical(fused, serial)

    def test_sampled_stdp_mode(self, tiny_digits):
        config = _config(tiny_digits[0], stdp_mode="sampled")
        fused, serial = _train_both(config, tiny_digits)
        _assert_identical(fused, serial)

    def test_conscience_off(self, tiny_digits):
        config = _config(tiny_digits[0])
        fused, serial = _train_both(config, tiny_digits, conscience=False)
        _assert_identical(fused, serial)

    def test_fault_injection_rate_zero(self, tiny_digits):
        config = _config(tiny_digits[0])
        faults = FaultConfig(seed=3)
        fused, serial = _train_both(config, tiny_digits, faults=faults)
        _assert_identical(fused, serial)

    def test_fault_injection_active(self, tiny_digits):
        """Spike-stream corruption consumes the injector's cached
        per-stream generator; both engines must consume it in the same
        per-image order."""
        config = _config(tiny_digits[0])
        faults = FaultConfig(
            spike_drop_rate=0.1, spike_spurious_rate=0.05, seed=3
        )
        fused, serial = _train_both(config, tiny_digits, faults=faults)
        _assert_identical(fused, serial)

    def test_rejects_unknown_engine(self, tiny_digits):
        config = _config(tiny_digits[0])
        trainer = SNNTrainer(_build(config))
        with pytest.raises(TrainingError):
            trainer.train(tiny_digits[0], engine="warp")


# ----------------------------------------------------------------------
# Engine-level equivalence (shared-stream contract)
# ----------------------------------------------------------------------


class TestEngineStream:
    def test_windowed_calls_match_one_serial_pass(self, tiny_digits):
        """Splitting learn_images into windows (the retention study's
        probe pattern) must consume the shared stream exactly like one
        serial pass over the same images."""
        train_set, _ = tiny_digits
        config = _config(train_set)
        serial_net = _build(config)
        SNNTrainer(serial_net).train(train_set, engine="serial")
        serial_rng = child_rng(config.seed, "post-train")
        fused_net = _build(config)
        trainer = SNNTrainer(fused_net)
        # Reproduce train()'s pre-steps, then drive the engine in
        # uneven windows over the same shuffled order.
        sample = train_set.images[: min(len(train_set), 500)]
        fused_net.initialize_prototype_weights(
            sample, rng=child_rng(config.seed, "snn-prototypes")
        )
        fused_net.calibrate_thresholds(sample[:200])
        rng = child_rng(config.seed, "snn-train-spikes")
        order = child_rng(config.seed, "snn-train-order-0").permutation(
            len(train_set)
        )
        engine = FusedSTDPEngine(fused_net)
        images = train_set.images[order]
        for start, stop in ((0, 7), (7, 40), (40, 41), (41, len(images))):
            engine.learn_images(images[start:stop], rng)
        np.testing.assert_array_equal(fused_net.weights, serial_net.weights)
        np.testing.assert_array_equal(
            fused_net.population.thresholds, serial_net.population.thresholds
        )
        del serial_rng, trainer

    def test_winners_match_serial_helper(self, tiny_digits):
        train_set, _ = tiny_digits
        config = _config(train_set)
        fused_net = _build(config)
        serial_net = _build(config)
        for net in (fused_net, serial_net):
            net.initialize_prototype_weights(
                train_set.images, rng=child_rng(config.seed, "snn-prototypes")
            )
            net.calibrate_thresholds(train_set.images[:60])
        fused_winners = FusedSTDPEngine(fused_net).learn_images(
            train_set.images, rng=child_rng(config.seed, "stream")
        )
        serial_winners = learn_images_serial(
            serial_net, train_set.images, rng=child_rng(config.seed, "stream")
        )
        np.testing.assert_array_equal(fused_winners, np.asarray(serial_winners))
        np.testing.assert_array_equal(fused_net.weights, serial_net.weights)

    def test_scipy_free_fallback_path(self, tiny_digits, monkeypatch):
        """With the lfilter scan disabled the gated Python loop must
        still be bit-identical (the path SciPy-free installs run)."""
        import repro.snn.training as training_mod

        monkeypatch.setattr(training_mod, "_lfilter", None)
        config = _config(tiny_digits[0])
        fused, serial = _train_both(config, tiny_digits)
        _assert_identical(fused, serial)

    def test_minimum_width_network(self, tiny_digits):
        """The smallest config the ranges allow (n_neurons = 2) still
        hits the count-class scatter's general branch."""
        train_set, _ = tiny_digits
        config = _config(train_set, neurons=2)
        fused, serial = _train_both(config, tiny_digits)
        _assert_identical(fused, serial)


# ----------------------------------------------------------------------
# Numerical properties the bit-identity argument rests on
# ----------------------------------------------------------------------


class TestNumericalProperties:
    def test_lfilter_matches_serial_leak_recurrence(self):
        """scipy.signal.lfilter([1], [1, -d]) must reproduce the serial
        v[t] = (v[t-1] * d) + C[t] recurrence bit for bit (DF2T's
        round(C + round(d*v)) equals it by IEEE commutativity)."""
        scipy_signal = pytest.importorskip("scipy.signal")
        rng = np.random.default_rng(7)
        for trial in range(50):
            d = float(rng.uniform(0.5, 1.0))
            c = rng.uniform(-50, 300, size=(40, 6))
            c *= 10.0 ** rng.integers(-3, 4, size=c.shape)
            expected = np.empty_like(c)
            v = np.zeros(c.shape[1])
            for t in range(c.shape[0]):
                v = (v * d) + c[t]
                expected[t] = v
            got = scipy_signal.lfilter([1.0], [1.0, -d], c, axis=0)
            np.testing.assert_array_equal(got, expected)

    def test_add_reduce_axis1_is_left_fold(self):
        """np.add.reduce(rows, axis=1) on (m, c, N) float blocks must be
        a strict sequential row fold for N >= 2 — the property the
        count-class contribution scatter relies on."""
        rng = np.random.default_rng(11)
        for c in (2, 3, 5, 9, 17):
            for n in (2, 3, 15):
                rows = rng.uniform(0, 255, size=(4, c, n))
                rows *= 10.0 ** rng.integers(-6, 7, size=rows.shape)
                expected = np.zeros((4, n))
                for k in range(c):
                    expected = expected + rows[:, k, :]
                got = np.add.reduce(rows, axis=1)
                np.testing.assert_array_equal(got, expected)

    def test_supported_always_true_with_scipy(self, tiny_digits):
        pytest.importorskip("scipy.signal")
        config = _config(tiny_digits[0])
        network = _build(config)
        engine = FusedSTDPEngine(network)
        # Even with negative weights the filter path stays exact.
        network.weights[0, 0] = -1.0
        assert engine.supported()


# ----------------------------------------------------------------------
# Cache-key stability (PR 2 keys must survive the engine swap)
# ----------------------------------------------------------------------


class TestCacheKeyStability:
    #: Keys recorded on the PR 2 tree; the fused engine trains
    #: bit-identical models, so neither the code-version salt nor any
    #: key component may change.
    PINNED_SNN_KEY = "63aa5a9ae746fc0f426d1971fb691d9b668312de8dd3751395d71d79095af9db"
    PINNED_MLP_KEY = "aef83cfc4bd2b507ae82384895a8c920d6e125665e3010d357779adb305bfad0"

    def test_code_version_unchanged(self):
        assert CODE_VERSION == "pr2-batched-1"

    def test_snn_cache_key_pinned(self):
        train, _ = load_digits(n_train=80, n_test=40, seed=5)
        key = cache_key(
            "snn",
            SNNConfig(epochs=1, seed=11).with_neurons(12),
            train,
            {"epochs": 2, "coder": coder_signature(None), "recipe": "stdp-v1"},
        )
        assert key == self.PINNED_SNN_KEY

    def test_mlp_cache_key_pinned(self):
        from repro.core.config import mnist_mlp_config

        train, _ = load_digits(n_train=80, n_test=40, seed=5)
        key = cache_key(
            "mlp",
            mnist_mlp_config(),
            train,
            {"epochs": 40, "batch_size": 16, "recipe": "bp-v1"},
        )
        assert key == self.PINNED_MLP_KEY
