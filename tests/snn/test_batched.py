"""Equivalence tests for the batched SNN inference engine.

The contract under test (see :mod:`repro.snn.batched`): batched
predictions are **bit-identical** to the per-image reference path at
every batch size, for every coder, with and without fault injectors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SNNConfig
from repro.core.errors import SimulationError, TrainingError
from repro.core.rng import child_rng
from repro.datasets.base import Dataset
from repro.datasets.digits import load_digits
from repro.faults import FaultConfig, FaultInjector
from repro.faults.apply import corrupt_spiking_network
from repro.snn.batched import (
    TEST_SPIKE_STREAM,
    SpikeTrainBatch,
    batch_winners,
    encode_shared,
    gather_contribution,
    predict_batch,
    present_batch,
)
from repro.snn.coding import (
    SpikeTrain,
    deterministic_counts,
    deterministic_counts_batch,
    make_coder,
)
from repro.snn.network import SNNTrainer, SpikingNetwork, train_snn

BATCH_SIZES = (1, 7, 64)


# ----------------------------------------------------------------------
# Fixtures: one tiny trained network per coder (module-scoped)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_digits():
    return load_digits(n_train=100, n_test=40, seed=5, side=12)


def _train_tiny(coder_name: str, tiny_digits):
    train_set, _ = tiny_digits
    config = SNNConfig(
        n_inputs=train_set.n_inputs,
        n_neurons=20,
        n_labels=train_set.n_classes,
        epochs=1,
        seed=13,
    )
    coder = make_coder(
        coder_name,
        duration=config.t_period,
        max_rate_interval=config.min_spike_interval,
    )
    return train_snn(config, train_set, coder=coder)


@pytest.fixture(scope="module", params=["poisson", "gaussian", "rank-order"])
def tiny_network(request, tiny_digits):
    return _train_tiny(request.param, tiny_digits)


# ----------------------------------------------------------------------
# The shared accumulation primitive
# ----------------------------------------------------------------------


class TestGatherContribution:
    def test_strictly_sequential_accumulation(self):
        """np.add.reduce over axis 0 must equal a left-to-right Python
        sum bit for bit — the property both simulators rely on."""
        rng = np.random.default_rng(0)
        for k in (2, 3, 5, 8, 17, 40):
            weights = rng.uniform(0, 255, size=(30, 50))
            weights *= 10.0 ** rng.integers(-6, 7, size=weights.shape)
            inputs = rng.integers(0, 50, size=k)
            expected = np.zeros(30)
            for j in inputs:
                expected = expected + weights[:, j]
            got = gather_contribution(weights, inputs)
            np.testing.assert_array_equal(got, expected)

    def test_modulation_applied_per_spike(self):
        rng = np.random.default_rng(1)
        weights = rng.uniform(0, 9, size=(6, 10))
        inputs = np.array([3, 3, 7])
        modulation = np.array([1.0, 0.5, 0.25])
        expected = np.zeros(6)
        for j, m in zip(inputs, modulation):
            expected = expected + weights[:, j] * m
        np.testing.assert_array_equal(
            gather_contribution(weights, inputs, modulation), expected
        )

    def test_uniform_modulation_fast_path_is_exact(self):
        rng = np.random.default_rng(2)
        weights = rng.uniform(0, 9, size=(6, 10))
        inputs = np.array([1, 2, 2, 9])
        ones = np.ones(4)
        np.testing.assert_array_equal(
            gather_contribution(weights, inputs, ones),
            gather_contribution(weights, inputs, None),
        )


# ----------------------------------------------------------------------
# The CSR-by-(step, rank) batch representation
# ----------------------------------------------------------------------


def _random_trains(rng, n_trains=5, n_inputs=12, duration=30.0):
    trains = []
    for _ in range(n_trains):
        n = int(rng.integers(0, 60))
        trains.append(
            SpikeTrain(
                times=rng.uniform(0, duration, size=n),
                inputs=rng.integers(0, n_inputs, size=n),
                n_inputs=n_inputs,
                duration=duration,
            )
        )
    return trains


class TestSpikeTrainBatch:
    def test_segments_hold_at_most_one_spike_per_row(self):
        rng = np.random.default_rng(3)
        batch = SpikeTrainBatch.from_trains(_random_trains(rng))
        for t in range(batch.n_steps):
            for k in range(batch.n_ranks):
                s0 = batch.boundaries[t * batch.n_ranks + k]
                s1 = batch.boundaries[t * batch.n_ranks + k + 1]
                rows = batch.rows[s0:s1]
                assert len(np.unique(rows)) == len(rows)

    def test_rank_order_reproduces_per_image_step_order(self):
        """Walking ranks in order must reproduce each train's per-step
        spike order (what makes the scatter accumulation sequential)."""
        rng = np.random.default_rng(4)
        trains = _random_trains(rng)
        batch = SpikeTrainBatch.from_trains(trains)
        for row, train in enumerate(trains):
            for t, (inputs, modulation) in enumerate(train.steps_weighted(1.0)):
                rebuilt, rebuilt_mod = [], []
                for k in range(batch.n_ranks):
                    s0 = batch.boundaries[t * batch.n_ranks + k]
                    s1 = batch.boundaries[t * batch.n_ranks + k + 1]
                    mask = batch.rows[s0:s1] == row
                    rebuilt.extend(batch.inputs[s0:s1][mask])
                    rebuilt_mod.extend(batch.modulation[s0:s1][mask])
                np.testing.assert_array_equal(np.asarray(rebuilt), inputs)
                np.testing.assert_array_equal(np.asarray(rebuilt_mod), modulation)

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(SimulationError):
            SpikeTrainBatch.from_trains([])
        a = SpikeTrain(times=[1.0], inputs=[0], n_inputs=4, duration=10.0)
        b = SpikeTrain(times=[1.0], inputs=[0], n_inputs=5, duration=10.0)
        with pytest.raises(SimulationError):
            SpikeTrainBatch.from_trains([a, b])

    def test_all_empty_trains(self):
        trains = [
            SpikeTrain(times=[], inputs=[], n_inputs=4, duration=5.0)
            for _ in range(3)
        ]
        batch = SpikeTrainBatch.from_trains(trains)
        assert batch.batch == 3
        assert batch.boundaries[-1] == 0


# ----------------------------------------------------------------------
# Bit-identity: batched vs per-image simulation
# ----------------------------------------------------------------------


class TestPresentBatchBitIdentity:
    def test_full_run_matches_present_exactly(self, tiny_network, tiny_digits):
        """Winners, times, spike counts AND final potentials must match
        the per-image grid simulator bit for bit (no early exit)."""
        _, test_set = tiny_digits
        rng = child_rng(99, "test-batch-vs-present")
        trains = encode_shared(tiny_network, test_set.images[:16], rng)
        result = present_batch(tiny_network, SpikeTrainBatch.from_trains(trains))
        for row, train in enumerate(trains):
            reference = tiny_network.present(train)
            assert result.winners[row] == reference.winner
            if reference.winner >= 0:
                assert result.winner_times[row] == reference.winner_time
            assert result.n_output_spikes[row] == reference.n_output_spikes
            np.testing.assert_array_equal(
                result.final_potentials[row], reference.final_potentials
            )

    def test_readout_matches_at_all_batch_sizes(self, tiny_network, tiny_digits):
        _, test_set = tiny_digits
        rng = child_rng(7, "test-batch-winners")
        trains = encode_shared(tiny_network, test_set.images, rng)
        reference = np.array(
            [tiny_network.present(train).readout() for train in trains]
        )
        for batch_size in BATCH_SIZES:
            winners = batch_winners(tiny_network, trains, batch_size=batch_size)
            np.testing.assert_array_equal(winners, reference)


class TestPredictEquivalence:
    # The batched-vs-serial oracle sweep moved to the IR layer: the
    # per-kind golden tests (tests/ir/test_golden.py) pin the serial
    # interpreter to predict_serial and the vectorized executor to the
    # interpreter, which covers every batch size once.

    def test_predictions_independent_of_shard(self, tiny_network, tiny_digits):
        """A shard evaluated with explicit indices must reproduce the
        whole-set predictions at those positions (worker-count and
        evaluation-order independence)."""
        _, test_set = tiny_digits
        whole = predict_batch(tiny_network, test_set.images)
        indices = [31, 2, 17]
        shard = predict_batch(
            tiny_network, test_set.images[indices], indices=indices
        )
        np.testing.assert_array_equal(shard, whole[indices])

    def test_predict_requires_labels(self, tiny_digits):
        train_set, test_set = tiny_digits
        config = SNNConfig(
            n_inputs=train_set.n_inputs,
            n_neurons=8,
            n_labels=train_set.n_classes,
        )
        network = SpikingNetwork(config)
        with pytest.raises(TrainingError):
            predict_batch(network, test_set.images)

    def test_batch_size_validated(self, tiny_network):
        with pytest.raises(SimulationError):
            batch_winners(tiny_network, [], batch_size=0)

    def test_evaluate_uses_batched_path(self, tiny_network, tiny_digits):
        _, test_set = tiny_digits
        trainer = SNNTrainer(tiny_network)
        result = trainer.evaluate(test_set)
        serial = trainer.predict_serial(test_set)
        assert result.accuracy == pytest.approx(
            float(np.mean(serial == test_set.labels))
        )


class TestFaultInjectorEquivalence:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_batched_equals_serial_under_spike_faults(
        self, tiny_digits, batch_size
    ):
        """The injector's advancing spike-fault stream is consumed in
        dataset order by both paths, so predictions stay identical."""
        network = _train_tiny("poisson", tiny_digits)
        _, test_set = tiny_digits
        fault_config = FaultConfig(
            spike_drop_rate=0.1, spike_spurious_rate=0.05, seed=21
        )
        serial_clone = corrupt_spiking_network(
            network, FaultInjector(fault_config)
        )
        assert serial_clone.fault_injector is not None
        serial = SNNTrainer(serial_clone).predict_serial(test_set)
        batched_clone = corrupt_spiking_network(
            network, FaultInjector(fault_config)
        )
        batched = SNNTrainer(batched_clone).predict(
            test_set, batch_size=batch_size
        )
        np.testing.assert_array_equal(batched, serial)


# ----------------------------------------------------------------------
# Labeling pass and stop-after-first-spike semantics
# ----------------------------------------------------------------------


class TestLabelingBatched:
    def test_label_matches_legacy_shared_rng_loop(self, tiny_network, tiny_digits):
        train_set, _ = tiny_digits
        subset = Dataset(
            images=train_set.images[:30],
            labels=train_set.labels[:30],
            n_classes=train_set.n_classes,
            name=train_set.name,
        )
        # Legacy semantics: one shared rng consumed in dataset order.
        config = tiny_network.config
        legacy_rng = child_rng(config.seed, "snn-label-spikes")
        legacy = []
        for image in subset.images:
            train = tiny_network.coder.encode(image, rng=legacy_rng)
            legacy.append(tiny_network.present(train).readout())
        trainer = SNNTrainer(tiny_network)
        saved_labels = tiny_network.neuron_labels
        try:
            labeler = trainer.label(subset)
            batched_rng = child_rng(config.seed, "snn-label-spikes")
            trains = encode_shared(tiny_network, subset.images, batched_rng)
            winners = batch_winners(tiny_network, trains)
            np.testing.assert_array_equal(winners, np.asarray(legacy))
            assert labeler.labels().shape == (config.n_neurons,)
        finally:
            tiny_network.neuron_labels = saved_labels

    def test_stop_after_first_spike_retires_rows(self, tiny_network, tiny_digits):
        _, test_set = tiny_digits
        rng = child_rng(5, "test-stop-first")
        trains = encode_shared(tiny_network, test_set.images[:8], rng)
        batch = SpikeTrainBatch.from_trains(trains)
        stopped = present_batch(tiny_network, batch, stop_after_first_spike=True)
        fired = stopped.winners >= 0
        assert np.all(stopped.n_output_spikes[fired] == 1)
        for row, train in enumerate(trains):
            reference = tiny_network.present(train, stop_after_first_spike=True)
            assert stopped.winners[row] == reference.winner


# ----------------------------------------------------------------------
# Vectorized converters
# ----------------------------------------------------------------------


class TestDeterministicCountsBatch:
    def test_rows_match_per_image_converter(self):
        rng = np.random.default_rng(8)
        images = rng.integers(0, 256, size=(9, 36), dtype=np.uint8)
        batched = deterministic_counts_batch(images)
        assert batched.shape == (9, 36)
        for row, image in enumerate(images):
            np.testing.assert_array_equal(batched[row], deterministic_counts(image))
