"""Edge cases of the retention study and its bounded-window schedule.

The happy-path forgetting curve lives in ``test_retention.py``; these
pin down the degenerate-but-legal corners the live continual learner
now leans on: empty learning phases, single-class tasks, zero initial
accuracy, and the bit-exactness of windowed vs. one-shot training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SNNConfig
from repro.core.errors import TrainingError
from repro.core.rng import child_rng
from repro.snn.network import SpikingNetwork
from repro.snn.retention import (
    RetentionPoint,
    RetentionStudy,
    retention_curve,
    window_bounds,
)
from repro.snn.training import FusedSTDPEngine


@pytest.fixture(scope="module")
def digits_tiny():
    from repro.datasets.digits import load_digits

    return load_digits(n_train=120, n_test=60)


class TestWindowBounds:
    def test_exact_cover_without_overlap(self):
        assert list(window_bounds(6, 2)) == [(0, 2), (2, 4), (4, 6)]

    def test_short_final_window(self):
        assert list(window_bounds(7, 3)) == [(0, 3), (3, 6), (6, 7)]

    def test_window_larger_than_total(self):
        assert list(window_bounds(3, 10)) == [(0, 3)]

    def test_empty_stream_yields_nothing(self):
        assert list(window_bounds(0, 5)) == []

    def test_bad_arguments_raise(self):
        with pytest.raises(TrainingError, match="window"):
            list(window_bounds(5, 0))
        with pytest.raises(TrainingError, match="total"):
            list(window_bounds(-1, 5))


class TestDegenerateStudies:
    def test_zero_initial_accuracy_is_legal(self):
        """A network that knew nothing had nothing to forget."""
        study = RetentionStudy(
            points=[
                RetentionPoint(0, 0.0, 0.1, 0.0),
                RetentionPoint(50, 0.25, 0.3, 0.1),
            ]
        )
        assert study.forgetting == -0.25
        assert study.relative_forgetting == 0.0

    def test_empty_task_b_phase(self, digits_tiny):
        """``task_b_images=0`` is an empty learning phase: one baseline
        probe, zero forgetting — not a crash."""
        train_set, test_set = digits_tiny
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(20))
        study = retention_curve(
            network,
            train_set,
            test_set,
            probe_every=50,
            task_b_images=0,
        )
        assert [p.images_seen for p in study.points] == [0]
        assert study.forgetting == 0.0
        assert study.relative_forgetting == 0.0
        assert study.points[0].field_drift == 0.0

    def test_single_class_tasks(self, digits_tiny):
        """One class per task is the smallest legal split; accuracies
        stay within [0, 1] and the probe schedule still holds."""
        train_set, test_set = digits_tiny
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(20))
        study = retention_curve(
            network,
            train_set,
            test_set,
            task_a_classes=(0,),
            task_b_classes=(1,),
            probe_every=30,
            task_b_images=60,
        )
        assert [p.images_seen for p in study.points] == [0, 30, 60]
        for point in study.points:
            assert 0.0 <= point.task_a_accuracy <= 1.0
            assert 0.0 <= point.task_b_accuracy <= 1.0

    def test_empty_probe_points_raise(self):
        study = RetentionStudy()
        with pytest.raises(TrainingError):
            study.initial_accuracy
        with pytest.raises(TrainingError):
            study.forgetting


class TestWindowedTrainingEquivalence:
    def test_windowed_learning_matches_one_shot(self, digits_tiny):
        """The bounded-window schedule is pure bookkeeping: slicing one
        presentation stream into windows (with a shared spike RNG)
        leaves weights and thresholds bit-identical to a single
        ``learn_images`` call — the property that lets the continual
        learner and the retention study share one schedule."""
        train_set, _ = digits_tiny
        config = SNNConfig(epochs=1).with_neurons(20)
        images = np.asarray(train_set.images[:40])

        whole = SpikingNetwork(config)
        FusedSTDPEngine(whole).learn_images(
            images, rng=child_rng(config.seed, "edge-equivalence")
        )

        windowed = SpikingNetwork(config)
        engine = FusedSTDPEngine(windowed)
        rng = child_rng(config.seed, "edge-equivalence")
        for start, upto in window_bounds(len(images), 9):
            engine.learn_images(images[start:upto], rng=rng)

        np.testing.assert_array_equal(windowed.weights, whole.weights)
        np.testing.assert_array_equal(
            np.asarray(windowed.thresholds), np.asarray(whole.thresholds)
        )
