"""Tests for the STDP rule (sampled, soft-bound and expected forms)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.snn.stdp import STDPRule


class TestLTPMask:
    def test_window_inclusive(self):
        rule = STDPRule(t_ltp=45.0)
        last_pre = np.array([100.0, 55.0, 54.9, 101.0, -np.inf])
        mask = rule.ltp_mask(last_pre, t_post=100.0)
        assert mask.tolist() == [True, True, False, False, False]

    def test_never_spiked_is_ltd(self):
        rule = STDPRule()
        mask = rule.ltp_mask(np.array([-np.inf]), t_post=10.0)
        assert not mask[0]


class TestConstantStep:
    def test_ltp_increments_ltd_decrements(self):
        rule = STDPRule(t_ltp=45.0, ltp_step=1.0, ltd_step=1.0, soft=False)
        weights = np.array([100.0, 100.0])
        rule.apply(weights, np.array([90.0, 10.0]), t_post=100.0)
        assert weights.tolist() == [101.0, 99.0]

    def test_clamps_at_bounds(self):
        rule = STDPRule(ltp_step=10.0, ltd_step=10.0, w_min=0.0, w_max=255.0, soft=False)
        weights = np.array([250.0, 5.0])
        rule.apply(weights, np.array([99.0, 10.0]), t_post=100.0)
        assert weights.tolist() == [255.0, 0.0]

    def test_returns_ltp_mask(self):
        rule = STDPRule(soft=False)
        mask = rule.apply(np.array([1.0]), np.array([99.0]), 100.0)
        assert mask.tolist() == [True]


class TestSoftBound:
    def test_update_shrinks_near_bounds(self):
        rule = STDPRule(ltp_step=10.0, ltd_step=10.0, soft=True, beta=2.5)
        low = np.array([10.0])
        high = np.array([245.0])
        rule.apply(low, np.array([99.0]), 100.0)   # LTP on a low weight
        rule.apply(high, np.array([99.0]), 100.0)  # LTP on a high weight
        assert (low[0] - 10.0) > (high[0] - 245.0) > 0

    def test_soft_never_exceeds_bounds(self):
        rule = STDPRule(ltp_step=50.0, ltd_step=50.0, soft=True)
        weights = np.array([254.0, 1.0])
        rule.apply(weights, np.array([99.0, 0.0]), 100.0)
        assert weights[0] <= 255.0 and weights[1] >= 0.0


class TestExpectedApply:
    def test_matches_expectation_of_sampled_rule(self):
        # E[sampled update] over the spike-window randomness must equal
        # the expected_apply update (constant-step case, away from rails).
        rule = STDPRule(t_ltp=45.0, ltp_step=2.0, ltd_step=1.0, soft=False)
        q = np.array([0.7, 0.3])
        start = np.array([100.0, 100.0])

        expected = start.copy()
        rule.expected_apply(expected, q)

        rng = np.random.default_rng(0)
        trials = 4000
        accumulated = np.zeros(2)
        for _ in range(trials):
            weights = start.copy()
            in_window = rng.random(2) < q
            last_pre = np.where(in_window, 90.0, 10.0)
            rule.apply(weights, last_pre, t_post=100.0)
            accumulated += weights - start
        mean_update = accumulated / trials
        assert np.allclose(mean_update, expected - start, atol=0.08)

    def test_probability_one_is_pure_ltp(self):
        rule = STDPRule(ltp_step=3.0, ltd_step=1.0, soft=False)
        weights = np.array([100.0])
        rule.expected_apply(weights, np.array([1.0]))
        assert weights[0] == 103.0

    def test_probability_zero_is_pure_ltd(self):
        rule = STDPRule(ltp_step=3.0, ltd_step=1.0, soft=False)
        weights = np.array([100.0])
        rule.expected_apply(weights, np.array([0.0]))
        assert weights[0] == 99.0

    def test_shape_mismatch_rejected(self):
        rule = STDPRule()
        with pytest.raises(ConfigError):
            rule.expected_apply(np.zeros(3), np.zeros(2))

    @given(
        st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=20),
        st.lists(st.floats(min_value=0, max_value=255), min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_expected_apply_keeps_bounds(self, probabilities, weights):
        size = min(len(probabilities), len(weights))
        rule = STDPRule(ltp_step=30.0, ltd_step=30.0, soft=True)
        w = np.array(weights[:size])
        rule.expected_apply(w, np.array(probabilities[:size]))
        assert np.all(w >= 0.0) and np.all(w <= 255.0)


class TestDeltaCurve:
    def test_figure4_shape(self):
        # LTP inside [0, t_ltp]; LTD for negative dt or beyond the window.
        rule = STDPRule(t_ltp=45.0, ltp_step=1.0, ltd_step=1.0)
        assert rule.delta(10.0) == 1.0
        assert rule.delta(45.0) == 1.0
        assert rule.delta(46.0) == -1.0
        assert rule.delta(-5.0) == -1.0


class TestValidation:
    def test_bad_window_rejected(self):
        with pytest.raises(ConfigError):
            STDPRule(t_ltp=0.0)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigError):
            STDPRule(w_min=10.0, w_max=5.0)

    def test_negative_steps_rejected(self):
        with pytest.raises(ConfigError):
            STDPRule(ltp_step=-1.0)

    def test_bad_beta_rejected(self):
        with pytest.raises(ConfigError):
            STDPRule(beta=0.0)
