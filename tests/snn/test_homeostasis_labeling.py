"""Tests for the homeostasis controller and the self-labeling pass."""

import numpy as np
import pytest

from repro.core.errors import ConfigError, TrainingError
from repro.snn.homeostasis import HomeostasisController
from repro.snn.labeling import NeuronLabeler


def make_controller(n=4, epoch=1000.0, threshold=2.0, rate=0.1, **kwargs):
    return HomeostasisController(n, epoch, threshold, rate, **kwargs)


class TestHomeostasis:
    def test_no_update_before_epoch(self):
        controller = make_controller()
        thresholds = np.full(4, 100.0)
        assert not controller.advance(999.0, thresholds)
        assert np.all(thresholds == 100.0)

    def test_update_at_epoch_boundary(self):
        controller = make_controller()
        thresholds = np.full(4, 100.0)
        controller.record_firing(0)
        controller.record_firing(0)
        controller.record_firing(0)  # above threshold 2 -> punished
        assert controller.advance(1000.0, thresholds)
        assert thresholds[0] == pytest.approx(110.0)   # +rate
        assert thresholds[1] == pytest.approx(90.0)    # -rate (activity 0 < 2)

    def test_paper_update_expression(self):
        # threshold += sign(activity - H) * threshold * r
        controller = make_controller(threshold=2.0, rate=0.05)
        thresholds = np.array([200.0, 200.0, 200.0, 200.0])
        for _ in range(5):
            controller.record_firing(2)
        controller.advance(1000.0, thresholds)
        assert thresholds[2] == pytest.approx(200.0 * 1.05)

    def test_activity_exactly_at_threshold_unchanged(self):
        controller = make_controller(threshold=2.0)
        thresholds = np.full(4, 100.0)
        controller.record_firing(1)
        controller.record_firing(1)
        controller.advance(1000.0, thresholds)
        assert thresholds[1] == 100.0  # sign(0) = 0

    def test_multiple_epochs_in_one_advance(self):
        controller = make_controller()
        thresholds = np.full(4, 100.0)
        controller.advance(2500.0, thresholds)
        assert controller.epochs_completed == 2

    def test_activity_resets_each_epoch(self):
        controller = make_controller()
        thresholds = np.full(4, 100.0)
        controller.record_firing(0)
        controller.advance(1000.0, thresholds)
        assert controller.activity[0] == 0

    def test_min_threshold_floor(self):
        controller = make_controller(rate=0.9)
        thresholds = np.full(4, 1.5)
        controller.advance(1000.0, thresholds)
        assert np.all(thresholds >= controller.min_threshold)

    def test_asymmetric_down_rate(self):
        controller = make_controller(rate=0.3, down_rate=0.01)
        thresholds = np.full(4, 100.0)
        controller.record_firing(0)
        controller.record_firing(0)
        controller.record_firing(0)
        controller.advance(1000.0, thresholds)
        assert thresholds[0] == pytest.approx(130.0)
        assert thresholds[1] == pytest.approx(99.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigError):
            make_controller().advance(-1.0, np.ones(4))

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigError):
            make_controller(epoch=0.0)
        with pytest.raises(ConfigError):
            make_controller(rate=0.0)
        with pytest.raises(ConfigError):
            make_controller(down_rate=-0.1)


class TestLabeler:
    def test_majority_label_assigned(self):
        labeler = NeuronLabeler(2, 3)
        for _ in range(3):
            labeler.record(0, 1)
        labeler.record(0, 2)
        labeler.record(1, 0)
        labels = labeler.labels()
        assert labels[0] == 1
        assert labels[1] == 0

    def test_never_winning_neuron_gets_minus_one(self):
        labeler = NeuronLabeler(3, 2)
        labeler.record(0, 0)
        assert labeler.labels()[1] == -1
        assert labeler.labels()[2] == -1

    def test_no_fire_presentation_still_counted(self):
        labeler = NeuronLabeler(2, 2)
        labeler.record(-1, 0)
        assert labeler.label_presentations[0] == 1
        assert labeler.win_counts.sum() == 0

    def test_scores_normalized_by_label_frequency(self):
        # Paper: score divides by presentations of that label to absorb
        # class imbalance.  Neuron 0 wins 2/10 of label 0 and 1/1 of
        # label 1 -> label 1 must score higher.
        labeler = NeuronLabeler(1, 2)
        for _ in range(8):
            labeler.record(-1, 0)
        for _ in range(2):
            labeler.record(0, 0)
        labeler.record(0, 1)
        scores = labeler.scores()
        assert scores[0, 1] > scores[0, 0]
        assert labeler.labels()[0] == 1

    def test_coverage(self):
        labeler = NeuronLabeler(4, 2)
        labeler.record(0, 0)
        labeler.record(1, 1)
        assert labeler.coverage() == 0.5

    def test_empty_labeler_rejects_labels(self):
        with pytest.raises(TrainingError):
            NeuronLabeler(2, 2).labels()

    def test_out_of_range_label_rejected(self):
        with pytest.raises(ConfigError):
            NeuronLabeler(2, 2).record(0, 5)

    def test_out_of_range_winner_rejected(self):
        with pytest.raises(ConfigError):
            NeuronLabeler(2, 2).record(7, 0)
