"""Tests for the LIF population dynamics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.snn.lif import LIFParameters, LIFPopulation


def make_population(n=4, threshold=10.0, **params):
    defaults = dict(t_leak=100.0, t_inhibit=5.0, t_refrac=20.0)
    defaults.update(params)
    return LIFPopulation(n, LIFParameters(**defaults), threshold)


class TestParameters:
    def test_decay_factor_exponential(self):
        params = LIFParameters(t_leak=100.0)
        assert params.decay_factor(100.0) == pytest.approx(np.exp(-1.0))

    def test_decay_factor_identity_at_zero(self):
        assert LIFParameters().decay_factor(0.0) == 1.0

    def test_negative_leak_rejected(self):
        with pytest.raises(ConfigError):
            LIFParameters(t_leak=-5.0)

    def test_negative_dt_rejected(self):
        with pytest.raises(ConfigError):
            LIFParameters().decay_factor(-1.0)

    @given(st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_decay_composes_multiplicatively(self, dt1, dt2):
        # The analytical solution property the hardware exploits:
        # decaying by dt1 then dt2 equals decaying by dt1+dt2.
        params = LIFParameters(t_leak=50.0)
        combined = params.decay_factor(dt1 + dt2)
        stepwise = params.decay_factor(dt1) * params.decay_factor(dt2)
        assert combined == pytest.approx(stepwise, rel=1e-9)


class TestPopulation:
    def test_initial_state(self):
        population = make_population()
        assert np.all(population.potentials == 0)
        assert np.all(population.active_mask(0.0))

    def test_integrate_only_active(self):
        population = make_population(n=3)
        population.inhibited_until[1] = 100.0
        active = population.active_mask(0.0)
        population.integrate(np.ones(3), active)
        assert population.potentials.tolist() == [1.0, 0.0, 1.0]

    def test_decay_reduces_potential(self):
        population = make_population()
        population.potentials[:] = 8.0
        population.decay(50.0, np.ones(4, dtype=bool))
        assert np.all(population.potentials == pytest.approx(8.0 * np.exp(-0.5)))

    def test_fired_requires_threshold_and_active(self):
        population = make_population(threshold=5.0)
        population.potentials[:] = np.array([6.0, 4.0, 6.0, 6.0])
        population.refractory_until[2] = 10.0
        fired = population.fired(population.active_mask(0.0))
        assert fired.tolist() == [0, 3]

    def test_fire_resets_and_inhibits_others(self):
        population = make_population(n=3)
        population.potentials[:] = 7.0
        population.fire(1, now=10.0)
        assert population.potentials[1] == 0.0
        assert population.refractory_until[1] == 30.0  # +t_refrac
        assert population.inhibited_until[0] == 15.0   # +t_inhibit
        assert population.inhibited_until[2] == 15.0
        # The firing neuron is not self-inhibited.
        assert population.inhibited_until[1] == -np.inf

    def test_refractory_neuron_inactive_then_active(self):
        population = make_population()
        population.fire(0, now=0.0)
        assert not population.active_mask(10.0)[0]
        assert population.active_mask(20.0)[0]

    def test_inhibition_shorter_than_refractory(self):
        population = make_population()
        population.fire(0, now=0.0)
        # Others recover after t_inhibit=5, the firer after t_refrac=20.
        assert population.active_mask(6.0)[1]
        assert not population.active_mask(6.0)[0]

    def test_inhibition_extends_not_shrinks(self):
        population = make_population(n=3)
        population.inhibited_until[2] = 50.0
        population.fire(0, now=10.0)
        assert population.inhibited_until[2] == 50.0  # keeps the later deadline

    def test_reset_for_presentation_keeps_thresholds(self):
        population = make_population()
        population.thresholds[:] = 42.0
        population.potentials[:] = 5.0
        population.fire(0, now=0.0)
        population.reset_for_presentation()
        assert np.all(population.potentials == 0)
        assert np.all(population.active_mask(0.0))
        assert np.all(population.thresholds == 42.0)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigError):
            make_population(n=0)
        with pytest.raises(ConfigError):
            make_population(threshold=0.0)
