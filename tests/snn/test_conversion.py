"""Tests for MLP-to-SNN conversion (the Section 3.2 bridging direction)."""

import numpy as np
import pytest

from repro.core.errors import ConfigError, TrainingError
from repro.snn.conversion import ConvertedSNN, conversion_sweep, convert_mlp


class TestConversion:
    def test_converted_predictions_valid(self, trained_mlp, digits_small):
        _, test_set = digits_small
        converted = convert_mlp(trained_mlp)
        predictions = converted.predict(test_set.normalized()[:10], timesteps=50, rng=0)
        assert predictions.shape == (10,)
        assert predictions.min() >= 0 and predictions.max() < 10

    def test_accuracy_approaches_mlp(self, trained_mlp, digits_small):
        # The conversion promise: with enough timesteps the spiking
        # execution recovers most of the MLP's accuracy.
        train_set, test_set = digits_small
        converted = convert_mlp(trained_mlp, calibration=train_set)
        result = converted.evaluate(test_set, timesteps=150, rng=0)
        mlp_accuracy = float(
            np.mean(trained_mlp.predict_dataset(test_set) == test_set.labels)
        )
        assert result.accuracy > mlp_accuracy - 0.15

    def test_more_timesteps_not_worse(self, trained_mlp, digits_small):
        train_set, test_set = digits_small
        converted = convert_mlp(trained_mlp, calibration=train_set)
        short = converted.evaluate(test_set, timesteps=5, rng=0).accuracy
        long = converted.evaluate(test_set, timesteps=150, rng=0).accuracy
        assert long >= short - 0.05

    def test_sweep_monotone_trend(self, trained_mlp, digits_small):
        train_set, test_set = digits_small
        results = conversion_sweep(
            trained_mlp,
            test_set.take(60),
            timesteps_list=[5, 50, 200],
            calibration=train_set,
            rng=0,
        )
        assert len(results) == 3
        assert results[-1].snn_accuracy >= results[0].snn_accuracy - 0.05
        # The final gap to the MLP is small.
        assert results[-1].gap < 0.2

    def test_deterministic_given_rng(self, trained_mlp, digits_small):
        _, test_set = digits_small
        converted = convert_mlp(trained_mlp)
        a = converted.predict(test_set.normalized()[:5], timesteps=20, rng=3)
        b = converted.predict(test_set.normalized()[:5], timesteps=20, rng=3)
        assert np.array_equal(a, b)

    def test_bad_timesteps_rejected(self, trained_mlp):
        converted = convert_mlp(trained_mlp)
        with pytest.raises(ConfigError):
            converted.simulate(np.zeros((1, 784)), timesteps=0)

    def test_wrong_input_size_rejected(self, trained_mlp):
        converted = convert_mlp(trained_mlp)
        with pytest.raises(ConfigError):
            converted.simulate(np.zeros((1, 100)), timesteps=5)

    def test_empty_calibration_rejected(self, trained_mlp, digits_small):
        train_set, _ = digits_small
        with pytest.raises(TrainingError):
            convert_mlp(trained_mlp, calibration=train_set.subset(np.array([], dtype=int)))

    def test_bridges_beyond_stdp(self, trained_mlp, trained_snn, digits_small):
        # The converted network (BP-trained weights run as spikes)
        # should beat the STDP-trained SNN — the paper's Section 3.2
        # point that the learning rule, not spiking, is the bottleneck.
        from repro.snn.network import SNNTrainer

        train_set, test_set = digits_small
        converted = convert_mlp(trained_mlp, calibration=train_set)
        converted_accuracy = converted.evaluate(test_set, timesteps=150, rng=0).accuracy
        stdp_accuracy = SNNTrainer(trained_snn).evaluate(test_set).accuracy
        assert converted_accuracy > stdp_accuracy
