"""Tests for the spiking network, trainer and WTA dynamics."""

import numpy as np
import pytest

from repro.core.config import SNNConfig
from repro.core.errors import TrainingError
from repro.snn.coding import PoissonCoder, SpikeTrain
from repro.snn.network import SNNTrainer, SpikingNetwork, train_snn
from repro.snn.snn_wot import SNNWithoutTime, relabel_for_counts


def tiny_config(**overrides):
    base = dict(n_inputs=16, t_period=200.0, epochs=1, seed=3)
    base.update(overrides)
    return SNNConfig(**base).with_neurons(overrides.pop("n_neurons", 8)).validate()


def burst_train(n_inputs=16, duration=200.0):
    """A deterministic train: all inputs spike every 10 ms."""
    times = []
    inputs = []
    for t in range(0, int(duration), 10):
        for i in range(n_inputs):
            times.append(float(t))
            inputs.append(i)
    return SpikeTrain(np.array(times), np.array(inputs), n_inputs, duration)


class TestPresentation:
    def test_strong_input_fires_some_neuron(self):
        network = SpikingNetwork(tiny_config())
        network.population.thresholds[:] = 500.0
        result = network.present(burst_train())
        assert result.winner >= 0
        assert result.winner_time < 200.0

    def test_no_fire_when_threshold_unreachable(self):
        network = SpikingNetwork(tiny_config())
        network.population.thresholds[:] = 1e12
        result = network.present(burst_train())
        assert result.winner == -1
        assert result.readout() == int(np.argmax(result.final_potentials))

    def test_stop_after_first_spike(self):
        network = SpikingNetwork(tiny_config())
        network.population.thresholds[:] = 500.0
        result = network.present(burst_train(), stop_after_first_spike=True)
        assert result.n_output_spikes == 1

    def test_learning_changes_weights(self):
        network = SpikingNetwork(tiny_config())
        network.population.thresholds[:] = 500.0
        before = network.weights.copy()
        network.present(burst_train(), learn=True)
        assert not np.array_equal(before, network.weights)

    def test_no_learning_keeps_weights(self):
        network = SpikingNetwork(tiny_config())
        network.population.thresholds[:] = 500.0
        before = network.weights.copy()
        network.present(burst_train(), learn=False)
        assert np.array_equal(before, network.weights)

    def test_winner_takes_all_one_spike_per_instant(self):
        # Even if several neurons cross threshold in the same ms, only
        # one fires (the others are inhibited).
        network = SpikingNetwork(tiny_config())
        network.population.thresholds[:] = 100.0
        result = network.present(burst_train())
        times = [t for t, _n in result.output_spikes]
        assert len(times) == len(set(times))

    def test_refractory_blocks_refire(self):
        network = SpikingNetwork(tiny_config())
        network.population.thresholds[:] = 100.0
        result = network.present(burst_train())
        per_neuron = {}
        for t, neuron in result.output_spikes:
            per_neuron.setdefault(neuron, []).append(t)
        for times in per_neuron.values():
            gaps = np.diff(times)
            assert np.all(gaps >= network.config.t_refrac)

    def test_presentation_resets_state(self):
        network = SpikingNetwork(tiny_config())
        network.population.thresholds[:] = 500.0
        first = network.present(burst_train())
        second = network.present(burst_train())
        assert first.winner == second.winner


class TestCalibrationAndEqualization:
    def test_calibrate_sets_reachable_thresholds(self, digits_small):
        train_set, _ = digits_small
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(10))
        network.calibrate_thresholds(train_set.images[:50])
        result = network.present_image(train_set.images[0], rng=0)
        # With factor 0.7 a typical image should make someone fire.
        assert result.winner >= 0

    def test_equalize_preserves_first_spike_winner(self, digits_small):
        train_set, _ = digits_small
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(10))
        network.calibrate_thresholds(train_set.images[:50])
        before = [
            network.present_image(img, rng=7).winner
            for img in train_set.images[:10]
        ]
        network.equalize_thresholds()
        after = [
            network.present_image(img, rng=7).winner
            for img in train_set.images[:10]
        ]
        assert np.all(np.isclose(network.thresholds, network.thresholds[0]))
        # Scaling weights and thresholds together preserves (almost all)
        # first-spike winners; allow one flip from weight clipping.
        assert sum(a != b for a, b in zip(before, after)) <= 1

    def test_equalize_keeps_weights_in_8bit_range(self, trained_snn):
        assert trained_snn.weights.min() >= 0.0
        assert trained_snn.weights.max() <= trained_snn.config.w_max

    def test_prototype_init_uses_images(self, digits_small):
        train_set, _ = digits_small
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(10))
        network.initialize_prototype_weights(train_set.images, rng=0)
        fields = network.receptive_fields()
        assert fields.shape == (10, 28, 28)
        # Prototype fields must be image-like: strongly non-uniform.
        assert fields.std() > 20.0

    def test_prototype_init_wrong_size_rejected(self):
        network = SpikingNetwork(tiny_config())
        with pytest.raises(TrainingError):
            network.initialize_prototype_weights(np.zeros((4, 99)))


class TestTrainerEndToEnd:
    def test_fit_labels_neurons(self, trained_snn):
        assert trained_snn.neuron_labels is not None
        assert trained_snn.neuron_labels.shape == (40,)

    def test_accuracy_well_above_chance(self, trained_snn, digits_small):
        _, test_set = digits_small
        result = SNNTrainer(trained_snn).evaluate(test_set)
        assert result.accuracy > 0.4  # chance is 0.1

    def test_predict_without_labels_rejected(self, digits_small):
        train_set, _ = digits_small
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(10))
        with pytest.raises(TrainingError):
            network.predict_image(train_set.images[0])

    def test_train_snn_convenience(self, digits_small):
        train_set, test_set = digits_small
        network = train_snn(
            SNNConfig(epochs=1).with_neurons(20), train_set.take(120)
        )
        assert network.neuron_labels is not None

    def test_bad_homeo_images_rejected(self, trained_snn):
        with pytest.raises(TrainingError):
            SNNTrainer(SpikingNetwork(tiny_config()), homeo_images=0)

    def test_sampled_mode_trains(self, digits_small):
        train_set, _ = digits_small
        config = SNNConfig(epochs=1, stdp_mode="sampled").with_neurons(10)
        network = SpikingNetwork(config)
        SNNTrainer(network).train(train_set.take(60))
        # Weights moved off the prototype initialization.
        reference = SpikingNetwork(config)
        reference.initialize_prototype_weights(
            train_set.take(60).images[:500],
            rng=__import__("repro.core.rng", fromlist=["child_rng"]).child_rng(
                config.seed, "snn-prototypes"
            ),
        )
        assert not np.array_equal(network.weights, reference.weights)


class TestSNNwot:
    def test_requires_labeled_network(self):
        network = SpikingNetwork(tiny_config())
        with pytest.raises(TrainingError):
            SNNWithoutTime(network)

    def test_potentials_are_weight_count_products(self, trained_snn, digits_small):
        _, test_set = digits_small
        wot = SNNWithoutTime(trained_snn)
        counts = wot.spike_counts(test_set.images[:3]).astype(np.float64)
        expected = counts @ trained_snn.weights.T
        assert np.allclose(wot.potentials(test_set.images[:3]), expected)

    def test_counts_are_4bit(self, trained_snn, digits_small):
        _, test_set = digits_small
        counts = SNNWithoutTime(trained_snn).spike_counts(test_set.images[:5])
        assert counts.min() >= 0 and counts.max() <= 10

    def test_accuracy_close_to_timed_readout(self, trained_snn, digits_small):
        # Section 4.2.2: removing timing costs ~1% accuracy.  At our
        # scale allow a generous band, but the two readouts must land
        # in the same regime.
        train_set, test_set = digits_small
        timed = SNNTrainer(trained_snn).evaluate(test_set).accuracy
        wot = relabel_for_counts(trained_snn, train_set).evaluate(test_set).accuracy
        assert abs(timed - wot) < 0.25

    def test_predictions_use_neuron_labels(self, trained_snn, digits_small):
        _, test_set = digits_small
        wot = SNNWithoutTime(trained_snn)
        predictions = wot.predict_dataset(test_set)
        valid = set(trained_snn.neuron_labels.tolist())
        assert set(predictions.tolist()) <= valid
