"""Tests for the SNN trained with back-propagation (Section 3.2)."""

import numpy as np
import pytest

from repro.core.config import SNNConfig
from repro.core.errors import TrainingError
from repro.snn.snn_bp import BackPropSNN, train_snn_bp


def config(n_neurons=40, **overrides):
    base = SNNConfig(**overrides)
    return base.with_neurons(n_neurons).validate()


class TestConstruction:
    def test_neuron_groups_cover_all_labels(self):
        model = BackPropSNN(config())
        assert set(model.neuron_labels.tolist()) == set(range(10))

    def test_groups_balanced(self):
        model = BackPropSNN(config(n_neurons=40))
        counts = np.bincount(model.neuron_labels)
        assert counts.min() == counts.max() == 4

    def test_too_few_neurons_rejected(self):
        with pytest.raises(TrainingError):
            BackPropSNN(config(n_neurons=5))

    def test_bad_learning_rate_rejected(self):
        with pytest.raises(TrainingError):
            BackPropSNN(config(), learning_rate=0.0)


class TestTraining:
    def test_loss_decreases(self, digits_small):
        train_set, _ = digits_small
        model = BackPropSNN(config())
        losses = model.train(train_set, epochs=8)
        assert losses[-1] < losses[0]

    def test_learns_digits(self, digits_small):
        train_set, test_set = digits_small
        model = train_snn_bp(config(n_neurons=50), train_set, epochs=12)
        assert model.evaluate(test_set).accuracy > 0.5

    def test_forward_uses_spike_counts(self, digits_small):
        train_set, _ = digits_small
        model = BackPropSNN(config())
        counts = model.spike_counts(train_set.images[:2])
        # Normalized 4-bit counts in [0, 1].
        assert counts.min() >= 0.0 and counts.max() <= 1.0

    def test_zero_epochs_rejected(self, digits_small):
        train_set, _ = digits_small
        with pytest.raises(TrainingError):
            BackPropSNN(config()).train(train_set, epochs=0)

    def test_prediction_in_label_range(self, digits_small):
        train_set, test_set = digits_small
        model = train_snn_bp(config(), train_set.take(100), epochs=3)
        predictions = model.predict_dataset(test_set)
        assert predictions.min() >= 0 and predictions.max() < 10

    def test_bridges_toward_mlp(self, digits_small, trained_snn, trained_mlp):
        # Section 3.2's key result: replacing STDP with BP on the same
        # spiking substrate recovers most of the accuracy gap to the MLP.
        from repro.mlp.trainer import evaluate_mlp
        from repro.snn.network import SNNTrainer

        train_set, test_set = digits_small
        snn_bp = train_snn_bp(config(n_neurons=50), train_set, epochs=12)
        bp_acc = snn_bp.evaluate(test_set).accuracy
        stdp_acc = SNNTrainer(trained_snn).evaluate(test_set).accuracy
        assert bp_acc > stdp_acc - 0.05  # at least comparable, usually above
