"""Edge-case tests for the batched engine feeding the serving layer.

The serving layer (:mod:`repro.serve`) coalesces arbitrary request
mixes into micro-batches, so the batched kernel must stay bit-identical
to the serial reference even at degenerate shapes: empty request sets,
single-row batches, batches larger than the dataset, duplicated
indices (requeue-after-shard-death re-encodes the same request), and
batches mixing spike trains from different coders (uniform and
non-uniform modulation in one kernel invocation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SNNConfig
from repro.core.errors import SimulationError
from repro.datasets.digits import load_digits
from repro.snn.batched import (
    SpikeTrainBatch,
    batch_winners,
    encode_indexed,
    predict_batch,
    present_batch,
)
from repro.snn.coding import make_coder
from repro.snn.network import SNNTrainer, train_snn


@pytest.fixture(scope="module")
def tiny_digits():
    return load_digits(n_train=90, n_test=24, seed=11, side=12)


def _train_tiny(coder_name: str, tiny_digits):
    train_set, _ = tiny_digits
    config = SNNConfig(
        n_inputs=train_set.n_inputs,
        n_neurons=16,
        n_labels=train_set.n_classes,
        epochs=1,
        seed=17,
    )
    coder = make_coder(
        coder_name,
        duration=config.t_period,
        max_rate_interval=config.min_spike_interval,
    )
    return train_snn(config, train_set, coder=coder)


@pytest.fixture(scope="module")
def network(tiny_digits):
    return _train_tiny("poisson", tiny_digits)


class TestEmptyBatch:
    """Zero requests is a routing no-op, not an error."""

    def test_predict_batch_on_zero_images(self, network, tiny_digits):
        _, test_set = tiny_digits
        labels = predict_batch(network, test_set.images[:0])
        assert labels.shape == (0,)

    def test_batch_winners_on_zero_trains(self, network):
        winners = batch_winners(network, [])
        assert winners.shape == (0,)
        assert winners.dtype == np.int64

    def test_kernel_itself_rejects_empty(self):
        """Only the *kernel* refuses B=0; callers return early instead
        of constructing a degenerate CSR batch."""
        with pytest.raises(SimulationError):
            SpikeTrainBatch.from_trains([])


class TestSingleRowBatch:
    def test_batch_size_one_equals_serial(self, network, tiny_digits):
        _, test_set = tiny_digits
        serial = SNNTrainer(network).predict_serial(test_set)
        batched = predict_batch(network, test_set.images, batch_size=1)
        np.testing.assert_array_equal(batched, serial)

    def test_single_image_request_matches_whole_set_row(
        self, network, tiny_digits
    ):
        """A one-image micro-batch with an explicit dataset index must
        reproduce the whole-set prediction at that position — the
        invariant that lets the server coalesce requests freely."""
        _, test_set = tiny_digits
        whole = predict_batch(network, test_set.images)
        for index in (0, 5, len(test_set.images) - 1):
            single = predict_batch(
                network, test_set.images[index : index + 1], indices=[index]
            )
            assert single.shape == (1,)
            assert single[0] == whole[index]


class TestOversizedBatch:
    def test_batch_size_larger_than_dataset(self, network, tiny_digits):
        """batch_size > B runs as one partial chunk, bit-identical to
        the serial oracle (no padding rows leak into the readout)."""
        _, test_set = tiny_digits
        serial = SNNTrainer(network).predict_serial(test_set)
        batched = predict_batch(
            network, test_set.images, batch_size=4 * len(test_set.images)
        )
        np.testing.assert_array_equal(batched, serial)


class TestDuplicateIndices:
    def test_repeated_index_is_idempotent(self, network, tiny_digits):
        """Serving requeues a request when its shard dies; re-encoding
        the same index must draw the same per-image RNG stream and so
        the same prediction, wherever it lands in the batch."""
        _, test_set = tiny_digits
        indices = [7, 3, 7, 7, 12, 3]
        rows = test_set.images[indices]
        labels = predict_batch(network, rows, indices=indices)
        whole = predict_batch(network, test_set.images)
        np.testing.assert_array_equal(labels, whole[indices])
        assert labels[0] == labels[2] == labels[3]
        assert labels[1] == labels[5]


class TestMixedCoderBatch:
    def test_mixed_modulation_batch_matches_per_image(self, tiny_digits):
        """One kernel invocation over trains from different coders —
        uniform (poisson) and attenuated (rank-order) modulation
        interleaved — matches the per-image simulator row by row.
        Guards the uniform-modulation fast path against misfiring on a
        mixed batch."""
        network = _train_tiny("poisson", tiny_digits)
        _, test_set = tiny_digits
        config = network.config
        rank_coder = make_coder(
            "rank-order",
            duration=config.t_period,
            max_rate_interval=config.min_spike_interval,
        )
        images = test_set.images[:12]
        poisson_trains = encode_indexed(network, images, range(len(images)))
        saved_coder = network.coder
        try:
            network.coder = rank_coder
            rank_trains = encode_indexed(network, images, range(len(images)))
        finally:
            network.coder = saved_coder
        # Interleave: even rows poisson (modulation == 1), odd rows
        # rank-order (modulation < 1).
        mixed = []
        for j in range(len(images)):
            mixed.append(poisson_trains[j] if j % 2 == 0 else rank_trains[j])
        batch = SpikeTrainBatch.from_trains(mixed)
        assert not batch.uniform_modulation
        result = present_batch(network, batch)
        for row, train in enumerate(mixed):
            reference = network.present(train)
            assert result.winners[row] == reference.winner
            np.testing.assert_array_equal(
                result.final_potentials[row], reference.final_potentials
            )

    def test_mixed_batch_readout_matches_batch_winners(self, tiny_digits):
        """batch_winners over a mixed-coder train list (as the serving
        path produces when coalescing) equals per-train readouts."""
        network = _train_tiny("gaussian", tiny_digits)
        _, test_set = tiny_digits
        config = network.config
        images = test_set.images[:10]
        gaussian = encode_indexed(network, images, range(len(images)))
        saved = network.coder
        try:
            network.coder = make_coder(
                "rank-order",
                duration=config.t_period,
                max_rate_interval=config.min_spike_interval,
            )
            ranked = encode_indexed(network, images, range(len(images)))
        finally:
            network.coder = saved
        mixed = gaussian[:5] + ranked[5:]
        reference = np.array(
            [network.present(train).readout() for train in mixed]
        )
        for batch_size in (1, 3, 64):
            winners = batch_winners(network, mixed, batch_size=batch_size)
            np.testing.assert_array_equal(winners, reference)
