"""Tests for the memory-retention study (Section 3.2's discussion)."""

import numpy as np
import pytest

from repro.core.config import SNNConfig
from repro.core.errors import TrainingError
from repro.snn.network import SNNTrainer, SpikingNetwork
from repro.snn.retention import (
    RetentionStudy,
    receptive_field_drift,
    retention_curve,
)


@pytest.fixture(scope="module")
def retention_study(digits_retention):
    train_set, test_set = digits_retention
    network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(30))
    return retention_curve(
        network,
        train_set,
        test_set,
        probe_every=60,
        task_b_images=180,
    )


@pytest.fixture(scope="module")
def digits_retention():
    from repro.datasets.digits import load_digits

    return load_digits(n_train=300, n_test=120)


class TestRetentionCurve:
    def test_probe_schedule(self, retention_study):
        seen = [p.images_seen for p in retention_study.points]
        assert seen == [0, 60, 120, 180]

    def test_task_a_learned_initially(self, retention_study):
        # After phase A, task-A accuracy is far above the 20% chance
        # level of its 5-class subset at this tiny scale.
        assert retention_study.initial_accuracy > 0.35

    def test_task_b_improves_during_phase_b(self, retention_study):
        first = retention_study.points[0].task_b_accuracy
        last = retention_study.points[-1].task_b_accuracy
        assert last > first - 0.05

    def test_drift_grows_monotonically(self, retention_study):
        drifts = [p.field_drift for p in retention_study.points]
        assert all(b >= a for a, b in zip(drifts, drifts[1:]))
        assert drifts[-1] > 0.0

    def test_forgetting_is_bounded(self, retention_study):
        # STDP with WTA keeps old receptive fields reasonably stable
        # ("sufficient lateral inhibition stabilizes receptive fields"):
        # task A must not collapse to chance.
        assert retention_study.final_accuracy > 0.15

    def test_summary_properties(self, retention_study):
        assert retention_study.forgetting == pytest.approx(
            retention_study.initial_accuracy - retention_study.final_accuracy
        )

    def test_empty_study_rejected(self):
        with pytest.raises(TrainingError):
            _ = RetentionStudy().initial_accuracy

    def test_bad_probe_every_rejected(self, digits_retention):
        train_set, test_set = digits_retention
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(10))
        with pytest.raises(TrainingError):
            retention_curve(network, train_set, test_set, probe_every=0)

    def test_missing_task_rejected(self, digits_retention):
        train_set, test_set = digits_retention
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(10))
        with pytest.raises(TrainingError):
            retention_curve(
                network, train_set, test_set, task_a_classes=(), probe_every=10
            )


class TestFieldDrift:
    def test_drift_sequence(self, digits_retention):
        train_set, _ = digits_retention
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(20))
        SNNTrainer(network).train(train_set.take(100))
        drifts = receptive_field_drift(network, train_set, n_presentations=60)
        assert len(drifts) == 3
        assert all(b >= a for a, b in zip(drifts, drifts[1:]))

    def test_no_learning_no_drift(self, digits_retention):
        train_set, _ = digits_retention
        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(20))
        network.calibrate_thresholds(train_set.images[:50])
        before = network.weights.copy()
        rng = np.random.default_rng(0)
        for image in train_set.images[:20]:
            network.present_image(image, learn=False, rng=rng)
        assert np.array_equal(before, network.weights)
