"""Shared fixtures: small datasets and pre-trained small models.

Session-scoped so the expensive artifacts (dataset synthesis, model
training) happen once per test run; tests must not mutate them —
anything that trains or mutates builds its own instance.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import MLPConfig, SNNConfig
from repro.datasets.digits import load_digits
from repro.mlp.network import MLP
from repro.mlp.trainer import BackPropTrainer
from repro.snn.network import SNNTrainer, SpikingNetwork


@pytest.fixture(scope="session", autouse=True)
def _isolated_model_cache(tmp_path_factory):
    """Point the content-addressed model cache at a per-run tmp dir.

    Keeps test runs from writing ``.repro-cache`` into the repository
    and from reusing models cached by earlier runs of different code.
    """
    from repro.core.artifacts import reset_default_cache

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("model-cache"))
    reset_default_cache()
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    reset_default_cache()


@pytest.fixture(scope="session")
def digits_small():
    """A small digits train/test pair shared across the suite."""
    return load_digits(n_train=240, n_test=80)


@pytest.fixture(scope="session")
def mlp_config_small() -> MLPConfig:
    return MLPConfig(n_hidden=24, learning_rate=0.5, epochs=120).validate()


@pytest.fixture(scope="session")
def snn_config_small() -> SNNConfig:
    return SNNConfig(epochs=2).with_neurons(40).validate()


@pytest.fixture(scope="session")
def trained_mlp(digits_small, mlp_config_small) -> MLP:
    """An MLP trained on the small digits set (do not mutate)."""
    train_set, _ = digits_small
    network = MLP(mlp_config_small)
    BackPropTrainer(network, batch_size=16).train(train_set, epochs=120)
    return network


@pytest.fixture(scope="session")
def trained_snn(digits_small, snn_config_small) -> SpikingNetwork:
    """An SNN trained and labeled on the small digits set (do not mutate)."""
    train_set, _ = digits_small
    network = SpikingNetwork(snn_config_small)
    SNNTrainer(network).fit(train_set)
    return network


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
