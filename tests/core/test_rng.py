"""Tests for the deterministic RNG plumbing."""

import numpy as np

from repro.core.rng import DEFAULT_SEED, as_seed, child_rng, make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(42).integers(0, 1000, 5).tolist() == make_rng(42).integers(0, 1000, 5).tolist()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 2**31, 10)
        b = make_rng(2).integers(0, 2**31, 10)
        assert not np.array_equal(a, b)

    def test_none_uses_default_seed(self):
        assert make_rng(None).integers(0, 1000, 3).tolist() == make_rng(DEFAULT_SEED).integers(0, 1000, 3).tolist()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator


class TestChildRng:
    def test_streams_are_deterministic(self):
        a = child_rng(7, "weights").integers(0, 1000, 5)
        b = child_rng(7, "weights").integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_streams_are_decorrelated(self):
        a = child_rng(7, "weights").integers(0, 2**31, 50)
        b = child_rng(7, "spikes").integers(0, 2**31, 50)
        assert not np.array_equal(a, b)

    def test_different_parents_differ(self):
        a = child_rng(1, "weights").integers(0, 2**31, 20)
        b = child_rng(2, "weights").integers(0, 2**31, 20)
        assert not np.array_equal(a, b)

    def test_spawn_returns_one_per_stream(self):
        rngs = spawn_rngs(3, "a", "b", "c")
        assert len(rngs) == 3
        assert all(isinstance(r, np.random.Generator) for r in rngs)


class TestAsSeed:
    def test_int_passthrough(self):
        assert as_seed(5) == 5

    def test_none_gives_default(self):
        assert as_seed(None) == DEFAULT_SEED

    def test_generator_gives_int(self):
        assert isinstance(as_seed(np.random.default_rng(0)), int)
