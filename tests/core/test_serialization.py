"""Tests for model save/load round-trips."""

import json

import numpy as np
import pytest

from repro.core.errors import ReproError, SerializationError
from repro.core.serialization import (
    CheckpointStore,
    load_mlp,
    load_model,
    load_snn,
    save_mlp,
    save_model,
    save_snn,
)


class TestMLPRoundTrip:
    def test_weights_identical(self, trained_mlp, tmp_path):
        path = tmp_path / "mlp.npz"
        save_mlp(trained_mlp, path)
        loaded = load_mlp(path)
        assert np.array_equal(loaded.w_hidden, trained_mlp.w_hidden)
        assert np.array_equal(loaded.b_output, trained_mlp.b_output)

    def test_predictions_identical(self, trained_mlp, digits_small, tmp_path):
        _, test_set = digits_small
        path = tmp_path / "mlp.npz"
        save_mlp(trained_mlp, path)
        loaded = load_mlp(path)
        assert np.array_equal(
            loaded.predict_dataset(test_set), trained_mlp.predict_dataset(test_set)
        )

    def test_config_restored(self, trained_mlp, tmp_path):
        path = tmp_path / "mlp.npz"
        save_mlp(trained_mlp, path)
        assert load_mlp(path).config == trained_mlp.config


class TestSNNRoundTrip:
    def test_state_identical(self, trained_snn, tmp_path):
        path = tmp_path / "snn.npz"
        save_snn(trained_snn, path)
        loaded = load_snn(path)
        assert np.array_equal(loaded.weights, trained_snn.weights)
        assert np.array_equal(
            loaded.population.thresholds, trained_snn.population.thresholds
        )
        assert np.array_equal(loaded.neuron_labels, trained_snn.neuron_labels)

    def test_predictions_identical(self, trained_snn, digits_small, tmp_path):
        _, test_set = digits_small
        path = tmp_path / "snn.npz"
        save_snn(trained_snn, path)
        loaded = load_snn(path)
        original = [
            trained_snn.predict_image(img, rng=i)
            for i, img in enumerate(test_set.images[:10])
        ]
        restored = [
            loaded.predict_image(img, rng=i)
            for i, img in enumerate(test_set.images[:10])
        ]
        assert original == restored

    def test_unlabeled_network_round_trips(self, tmp_path):
        from repro.core.config import SNNConfig
        from repro.snn.network import SpikingNetwork

        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(10))
        path = tmp_path / "snn.npz"
        save_snn(network, path)
        assert load_snn(path).neuron_labels is None

    def test_snn_wot_works_after_reload(self, trained_snn, digits_small, tmp_path):
        from repro.snn.snn_wot import SNNWithoutTime

        _, test_set = digits_small
        path = tmp_path / "snn.npz"
        save_snn(trained_snn, path)
        wot = SNNWithoutTime(load_snn(path))
        original = SNNWithoutTime(trained_snn).predict_dataset(test_set)
        assert np.array_equal(wot.predict_dataset(test_set), original)


class TestSuffixlessPaths:
    """save_* must return the path numpy actually wrote.

    ``np.savez`` appends ``.npz`` when the name lacks it; the save
    functions mirror that rule so a suffixless caller path round-trips.
    """

    def test_mlp_suffixless_round_trip(self, trained_mlp, tmp_path):
        requested = tmp_path / "mlp-checkpoint"  # no suffix
        written = save_mlp(trained_mlp, requested)
        assert written.exists()
        assert written.name == "mlp-checkpoint.npz"
        loaded = load_mlp(written)
        assert np.array_equal(loaded.w_hidden, trained_mlp.w_hidden)

    def test_snn_suffixless_round_trip(self, trained_snn, tmp_path):
        written = save_snn(trained_snn, tmp_path / "snn-checkpoint")
        assert written.exists()
        assert written.name == "snn-checkpoint.npz"
        loaded = load_snn(written)
        assert np.array_equal(loaded.weights, trained_snn.weights)

    def test_multi_dot_name_not_mangled(self, trained_mlp, tmp_path):
        # with_suffix would have clobbered ".v2"; the name-append must not.
        written = save_mlp(trained_mlp, tmp_path / "model.v2")
        assert written.name == "model.v2.npz"
        assert written.exists()

    def test_explicit_npz_suffix_unchanged(self, trained_mlp, tmp_path):
        written = save_mlp(trained_mlp, tmp_path / "model.npz")
        assert written == tmp_path / "model.npz"
        assert written.exists()


class TestCorruptConfigJSON:
    """A corrupted checkpointed config fails inside the error hierarchy."""

    def _rewrite_config(self, path, new_config_text):
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["config"] = np.array(new_config_text)
        np.savez(path, **arrays)

    def test_invalid_json_raises_serialization_error(self, trained_mlp, tmp_path):
        path = save_mlp(trained_mlp, tmp_path / "mlp.npz")
        self._rewrite_config(path, "{not json")
        with pytest.raises(SerializationError, match="not valid JSON"):
            load_mlp(path)

    def test_non_object_json_raises(self, trained_mlp, tmp_path):
        path = save_mlp(trained_mlp, tmp_path / "mlp.npz")
        self._rewrite_config(path, json.dumps([1, 2, 3]))
        with pytest.raises(SerializationError, match="JSON object"):
            load_mlp(path)

    def test_unknown_field_raises(self, trained_mlp, tmp_path):
        path = save_mlp(trained_mlp, tmp_path / "mlp.npz")
        payload = json.loads(json.dumps(trained_mlp.config.__dict__))
        payload["bogus_field"] = 1
        self._rewrite_config(path, json.dumps(payload))
        with pytest.raises(SerializationError, match="unknown or missing"):
            load_mlp(path)

    def test_serialization_error_is_repro_error(self):
        assert issubclass(SerializationError, ReproError)


class TestBackPropSNNRoundTrip:
    def test_round_trip_preserves_predictions(self, tmp_path, digits_small):
        from repro.core.config import SNNConfig
        from repro.core.serialization import load_snn_bp, save_snn_bp
        from repro.snn.snn_bp import BackPropSNN

        train_set, test_set = digits_small
        config = SNNConfig(
            n_inputs=train_set.n_inputs,
            n_neurons=20,
            n_labels=train_set.n_classes,
        ).validate()
        model = BackPropSNN(config, learning_rate=0.3)
        model.train(train_set, epochs=1)
        path = save_snn_bp(model, tmp_path / "bp")
        loaded = load_snn_bp(path)
        assert loaded.learning_rate == model.learning_rate
        np.testing.assert_array_equal(loaded.weights, model.weights)
        np.testing.assert_array_equal(
            loaded.neuron_labels, model.neuron_labels
        )
        np.testing.assert_array_equal(
            loaded.predict(test_set.images), model.predict(test_set.images)
        )
        # kind-dispatching loader and saver both recognize it
        assert load_model(path).learning_rate == model.learning_rate
        assert save_model(model, tmp_path / "bp2").name == "bp2.npz"


class TestSaveModelDispatch:
    def test_dispatches_both_kinds(self, trained_mlp, trained_snn, tmp_path):
        assert save_model(trained_mlp, tmp_path / "a").name == "a.npz"
        assert save_model(trained_snn, tmp_path / "b").name == "b.npz"

    def test_unknown_object_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot serialize"):
            save_model(object(), tmp_path / "x")


class TestCheckpointStore:
    def test_round_trip(self, trained_mlp, tmp_path):
        store = CheckpointStore(tmp_path / "ckpts")
        assert not store.has("mlp")
        store.save("mlp", trained_mlp)
        assert store.has("mlp")
        loaded = store.load("mlp")
        assert np.array_equal(loaded.w_hidden, trained_mlp.w_hidden)

    def test_keys_sanitized(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.path_for("a/b c:d").name == "a_b_c_d.npz"
        with pytest.raises(SerializationError, match="sanitizes"):
            store.path_for("")

    def test_load_missing_key_raises(self, tmp_path):
        with pytest.raises(SerializationError, match="no checkpoint"):
            CheckpointStore(tmp_path).load("nope")

    def test_load_or_train_trains_once(self, trained_mlp, tmp_path):
        store = CheckpointStore(tmp_path)
        calls = []

        def train():
            calls.append(1)
            return trained_mlp

        first = store.load_or_train("m", train)
        second = store.load_or_train("m", train)
        assert len(calls) == 1
        assert np.array_equal(first.w_hidden, second.w_hidden)

    def test_corrupt_checkpoint_falls_back_to_retraining(
        self, trained_mlp, tmp_path
    ):
        store = CheckpointStore(tmp_path)
        store.path_for("m").write_bytes(b"garbage, not an npz archive")
        calls = []

        def train():
            calls.append(1)
            return trained_mlp

        model = store.load_or_train("m", train)
        assert len(calls) == 1
        assert np.array_equal(model.w_hidden, trained_mlp.w_hidden)
        # The bad file was overwritten with a valid checkpoint.
        assert np.array_equal(store.load("m").w_hidden, trained_mlp.w_hidden)

    def test_clear_removes_all(self, trained_mlp, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", trained_mlp)
        store.save("b", trained_mlp)
        assert store.clear() == 2
        assert not store.has("a")


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_mlp(tmp_path / "nope.npz")

    def test_kind_mismatch(self, trained_mlp, tmp_path):
        path = tmp_path / "mlp.npz"
        save_mlp(trained_mlp, path)
        with pytest.raises(ReproError, match="expected snn"):
            load_snn(path)

    def test_load_model_dispatches(self, trained_mlp, trained_snn, tmp_path):
        mlp_path = tmp_path / "a.npz"
        snn_path = tmp_path / "b.npz"
        save_mlp(trained_mlp, mlp_path)
        save_snn(trained_snn, snn_path)
        from repro.mlp.network import MLP
        from repro.snn.network import SpikingNetwork

        assert isinstance(load_model(mlp_path), MLP)
        assert isinstance(load_model(snn_path), SpikingNetwork)

    def test_version_mismatch(self, trained_mlp, tmp_path):
        import numpy as np

        path = tmp_path / "mlp.npz"
        save_mlp(trained_mlp, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.array(99)
        np.savez(path, **arrays)
        with pytest.raises(ReproError, match="format version"):
            load_mlp(path)


class TestCheckpointIntegrity:
    """SHA-256 sidecars on checkpoints (PR5 artifact hardening)."""

    def test_save_writes_a_verifying_sidecar(self, trained_mlp, tmp_path):
        from repro.core.artifacts import digest_sidecar, verify_digest_sidecar

        store = CheckpointStore(tmp_path)
        path = store.save("m", trained_mlp)
        sidecar = digest_sidecar(path)
        assert sidecar.exists()
        assert verify_digest_sidecar(path) is True

    def test_bit_flip_is_caught_and_evicted(self, trained_mlp, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("m", trained_mlp)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01  # flip one bit mid-archive
        path.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="integrity"):
            store.load("m")
        assert store.corrupt_evictions == 1
        assert not path.exists()  # evicted, not left to poison reloads

    def test_load_or_train_retrains_after_corruption(
        self, trained_mlp, tmp_path
    ):
        from repro.core.artifacts import verify_digest_sidecar

        store = CheckpointStore(tmp_path)
        path = store.save("m", trained_mlp)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        calls = []

        def train():
            calls.append(1)
            return trained_mlp

        model = store.load_or_train("m", train)
        assert calls == [1]  # the corrupt checkpoint forced a retrain
        assert np.array_equal(model.w_hidden, trained_mlp.w_hidden)
        # The replacement checkpoint verifies again.
        assert verify_digest_sidecar(store.path_for("m")) is True
        assert np.array_equal(store.load("m").w_hidden, trained_mlp.w_hidden)

    def test_legacy_checkpoint_without_sidecar_loads(
        self, trained_mlp, tmp_path
    ):
        from repro.core.artifacts import digest_sidecar

        store = CheckpointStore(tmp_path)
        path = store.save("m", trained_mlp)
        digest_sidecar(path).unlink()  # pre-PR5 layout
        loaded = store.load("m")
        assert np.array_equal(loaded.w_hidden, trained_mlp.w_hidden)
        assert store.corrupt_evictions == 0

    def test_clear_removes_sidecars_too(self, trained_mlp, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", trained_mlp)
        store.save("b", trained_mlp)
        assert store.clear() == 2
        assert list(tmp_path.glob("*.sha256")) == []
