"""Tests for model save/load round-trips."""

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.core.serialization import (
    load_mlp,
    load_model,
    load_snn,
    save_mlp,
    save_snn,
)


class TestMLPRoundTrip:
    def test_weights_identical(self, trained_mlp, tmp_path):
        path = tmp_path / "mlp.npz"
        save_mlp(trained_mlp, path)
        loaded = load_mlp(path)
        assert np.array_equal(loaded.w_hidden, trained_mlp.w_hidden)
        assert np.array_equal(loaded.b_output, trained_mlp.b_output)

    def test_predictions_identical(self, trained_mlp, digits_small, tmp_path):
        _, test_set = digits_small
        path = tmp_path / "mlp.npz"
        save_mlp(trained_mlp, path)
        loaded = load_mlp(path)
        assert np.array_equal(
            loaded.predict_dataset(test_set), trained_mlp.predict_dataset(test_set)
        )

    def test_config_restored(self, trained_mlp, tmp_path):
        path = tmp_path / "mlp.npz"
        save_mlp(trained_mlp, path)
        assert load_mlp(path).config == trained_mlp.config


class TestSNNRoundTrip:
    def test_state_identical(self, trained_snn, tmp_path):
        path = tmp_path / "snn.npz"
        save_snn(trained_snn, path)
        loaded = load_snn(path)
        assert np.array_equal(loaded.weights, trained_snn.weights)
        assert np.array_equal(
            loaded.population.thresholds, trained_snn.population.thresholds
        )
        assert np.array_equal(loaded.neuron_labels, trained_snn.neuron_labels)

    def test_predictions_identical(self, trained_snn, digits_small, tmp_path):
        _, test_set = digits_small
        path = tmp_path / "snn.npz"
        save_snn(trained_snn, path)
        loaded = load_snn(path)
        original = [
            trained_snn.predict_image(img, rng=i)
            for i, img in enumerate(test_set.images[:10])
        ]
        restored = [
            loaded.predict_image(img, rng=i)
            for i, img in enumerate(test_set.images[:10])
        ]
        assert original == restored

    def test_unlabeled_network_round_trips(self, tmp_path):
        from repro.core.config import SNNConfig
        from repro.snn.network import SpikingNetwork

        network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(10))
        path = tmp_path / "snn.npz"
        save_snn(network, path)
        assert load_snn(path).neuron_labels is None

    def test_snn_wot_works_after_reload(self, trained_snn, digits_small, tmp_path):
        from repro.snn.snn_wot import SNNWithoutTime

        _, test_set = digits_small
        path = tmp_path / "snn.npz"
        save_snn(trained_snn, path)
        wot = SNNWithoutTime(load_snn(path))
        original = SNNWithoutTime(trained_snn).predict_dataset(test_set)
        assert np.array_equal(wot.predict_dataset(test_set), original)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_mlp(tmp_path / "nope.npz")

    def test_kind_mismatch(self, trained_mlp, tmp_path):
        path = tmp_path / "mlp.npz"
        save_mlp(trained_mlp, path)
        with pytest.raises(ReproError, match="expected snn"):
            load_snn(path)

    def test_load_model_dispatches(self, trained_mlp, trained_snn, tmp_path):
        mlp_path = tmp_path / "a.npz"
        snn_path = tmp_path / "b.npz"
        save_mlp(trained_mlp, mlp_path)
        save_snn(trained_snn, snn_path)
        from repro.mlp.network import MLP
        from repro.snn.network import SpikingNetwork

        assert isinstance(load_model(mlp_path), MLP)
        assert isinstance(load_model(snn_path), SpikingNetwork)

    def test_version_mismatch(self, trained_mlp, tmp_path):
        import numpy as np

        path = tmp_path / "mlp.npz"
        save_mlp(trained_mlp, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.array(99)
        np.savez(path, **arrays)
        with pytest.raises(ReproError, match="format version"):
            load_mlp(path)
