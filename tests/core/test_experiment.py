"""Tests for the experiment runner and registry."""

import pytest

from repro.core.errors import ExperimentError
from repro.core.experiment import ExperimentResult, ExperimentSpec, run_timed
from repro.core import registry


def make_result(**overrides):
    base = dict(
        experiment_id="t", title="T",
        rows=[{"a": 1, "b": 2}, {"a": 3, "c": 4}],
    )
    base.update(overrides)
    return ExperimentResult(**base)


class TestExperimentResult:
    def test_column_names_first_seen_order(self):
        assert make_result().column_names() == ["a", "b", "c"]

    def test_find_row_matches(self):
        assert make_result().find_row(a=3) == {"a": 3, "c": 4}

    def test_find_row_multiple_criteria(self):
        assert make_result().find_row(a=1, b=2) == {"a": 1, "b": 2}

    def test_find_row_missing_raises(self):
        with pytest.raises(ExperimentError):
            make_result().find_row(a=99)

    def test_run_timed_stamps_elapsed(self):
        result = run_timed(lambda: make_result())
        assert result.elapsed_seconds >= 0.0


class TestRegistry:
    def test_analysis_registers_all_artifacts(self):
        import repro.analysis  # noqa: F401  (triggers registration)

        ids = registry.all_ids()
        for expected in (
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "table8", "table9", "fig5", "fig6", "fig8", "fig14",
            "sec45", "sec5",
        ):
            assert expected in ids

    def test_get_unknown_raises_with_known_list(self):
        import repro.analysis  # noqa: F401

        with pytest.raises(ExperimentError, match="unknown experiment"):
            registry.get("table99")

    def test_duplicate_registration_rejected(self):
        import repro.analysis  # noqa: F401

        with pytest.raises(ExperimentError, match="duplicate"):
            registry.register("table1", "again")(lambda: None)

    def test_spec_run_returns_result(self):
        import repro.analysis  # noqa: F401

        spec = registry.get("table6")
        assert isinstance(spec, ExperimentSpec)
        result = spec.run()
        assert result.rows
        assert result.elapsed_seconds >= 0.0

    def test_iter_specs_sorted(self):
        import repro.analysis  # noqa: F401

        ids = [spec.experiment_id for spec in registry.iter_specs()]
        assert ids == sorted(ids)
