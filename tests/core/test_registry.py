"""Focused tests for registry error paths, isolated from the global state.

``tests/core/test_experiment.py`` covers the registry as populated by
``repro.analysis``; these tests swap in an empty registry (restored by
``monkeypatch``) so the error paths are exercised hermetically.
"""

import pytest

from repro.core import registry
from repro.core.errors import ExperimentError
from repro.core.experiment import ExperimentResult


@pytest.fixture()
def empty_registry(monkeypatch):
    """Run against a private, initially-empty registry dict."""
    monkeypatch.setattr(registry, "_REGISTRY", {})


def make_fn(experiment_id="x"):
    def fn(**_kwargs):
        return ExperimentResult(experiment_id=experiment_id, title="T")

    return fn


class TestRegistration:
    def test_register_and_get(self, empty_registry):
        fn = registry.register("exp-a", "Experiment A", "Table 0")(make_fn())
        spec = registry.get("exp-a")
        assert spec.fn is fn
        assert spec.title == "Experiment A"
        assert spec.paper_location == "Table 0"

    def test_duplicate_registration_raises(self, empty_registry):
        registry.register("exp-a", "first")(make_fn())
        with pytest.raises(ExperimentError, match="duplicate experiment id 'exp-a'"):
            registry.register("exp-a", "second")(make_fn())

    def test_unknown_id_lists_known_ids(self, empty_registry):
        registry.register("exp-a", "A")(make_fn())
        registry.register("exp-b", "B")(make_fn())
        with pytest.raises(ExperimentError, match="exp-a, exp-b"):
            registry.get("nosuch")

    def test_unknown_id_on_empty_registry(self, empty_registry):
        with pytest.raises(ExperimentError, match="none registered"):
            registry.get("nosuch")

    def test_clear_empties(self, empty_registry):
        registry.register("exp-a", "A")(make_fn())
        registry.clear()
        assert registry.all_ids() == []

    def test_iter_specs_in_id_order(self, empty_registry):
        for experiment_id in ("zz", "aa", "mm"):
            registry.register(experiment_id, experiment_id.upper())(make_fn())
        assert [s.experiment_id for s in registry.iter_specs()] == [
            "aa",
            "mm",
            "zz",
        ]


class TestFindRowMismatch:
    def test_mismatch_names_experiment_and_criteria(self):
        result = ExperimentResult(
            experiment_id="exp-a", title="T", rows=[{"k": 1}]
        )
        with pytest.raises(ExperimentError, match="exp-a") as excinfo:
            result.find_row(k=2)
        assert "'k': 2" in str(excinfo.value)

    def test_mismatch_on_empty_rows(self):
        with pytest.raises(ExperimentError, match="no row matching"):
            ExperimentResult(experiment_id="e", title="T").find_row(any_key=1)
