"""Tests for the resilient experiment runner (retry/timeout/degrade/resume)."""

import time

import pytest

from repro.core.errors import ExperimentError, ExperimentTimeoutError
from repro.core.experiment import (
    ExperimentResult,
    FailureRecord,
    ResilientRunner,
    RunPolicy,
)
from repro.core.rng import DEFAULT_SEED


def make_result(**overrides) -> ExperimentResult:
    base = dict(experiment_id="t", title="T", rows=[{"a": 1}])
    base.update(overrides)
    return ExperimentResult(**base)


def runner(sleep=lambda _s: None, **policy_kwargs) -> ResilientRunner:
    return ResilientRunner(RunPolicy(**policy_kwargs), sleep=sleep)


class TestRunPolicy:
    def test_defaults_validate(self):
        assert RunPolicy().validate() == RunPolicy()

    def test_negative_retries_rejected(self):
        with pytest.raises(ExperimentError, match="retries"):
            RunPolicy(retries=-1).validate()

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ExperimentError, match="timeout"):
            RunPolicy(timeout_seconds=0.0).validate()

    def test_bad_backoff_rejected(self):
        with pytest.raises(ExperimentError, match="backoff"):
            RunPolicy(backoff_seconds=-1.0).validate()
        with pytest.raises(ExperimentError, match="backoff"):
            RunPolicy(backoff_factor=0.5).validate()

    def test_bad_degrade_scale_rejected(self):
        with pytest.raises(ExperimentError, match="degrade"):
            RunPolicy(degrade_scales=(1.5,)).validate()


class TestSuccessFirstTry:
    def test_single_attempt_no_failures(self):
        calls = []

        def fn(seed: int = 0):
            calls.append(seed)
            return make_result()

        result = runner(retries=3).run(fn, seed=5)
        assert result.attempts == 1
        assert result.failures == []
        assert not result.degraded
        assert calls == [5]  # the caller's seed is untouched

    def test_elapsed_time_stamped(self):
        result = runner().run(lambda: make_result())
        assert result.elapsed_seconds >= 0.0


class TestRetryThenSuccess:
    def test_failures_recorded_then_success(self):
        attempts = []

        def fn(seed: int = 0):
            attempts.append(seed)
            if len(attempts) < 3:
                raise ValueError(f"boom {len(attempts)}")
            return make_result()

        result = runner(retries=3).run(fn, seed=10)
        assert result.attempts == 3
        assert len(result.failures) == 2
        assert [f["error"] for f in result.failures] == ["ValueError"] * 2
        assert [f["kind"] for f in result.failures] == ["error"] * 2
        assert not result.degraded

    def test_retries_reseed_deterministically(self):
        seeds = []

        def fn(seed: int = 0):
            seeds.append(seed)
            if len(seeds) < 3:
                raise ValueError("boom")
            return make_result()

        runner(retries=2).run(fn, seed=10)
        assert seeds == [10, 10 + 1009, 10 + 2018]

    def test_reseed_defaults_when_no_seed_given(self):
        seeds = []

        def fn(seed: int = 0):
            seeds.append(seed)
            if len(seeds) < 2:
                raise ValueError("boom")
            return make_result()

        runner(retries=1).run(fn)
        assert seeds == [0, DEFAULT_SEED + 1009]

    def test_reseed_disabled(self):
        seeds = []

        def fn(seed: int = 0):
            seeds.append(seed)
            if len(seeds) < 2:
                raise ValueError("boom")
            return make_result()

        runner(retries=1, reseed=False).run(fn, seed=4)
        assert seeds == [4, 4]

    def test_exponential_backoff_sequence(self):
        sleeps = []
        calls = []

        def fn():
            calls.append(1)
            if len(calls) < 4:
                raise ValueError("boom")
            return make_result()

        runner(
            sleep=sleeps.append, retries=3, backoff_seconds=0.5, backoff_factor=2.0
        ).run(fn)
        assert sleeps == [0.5, 1.0, 2.0]


class TestTimeout:
    def test_timeout_triggers_retry(self):
        calls = []

        def fn():
            calls.append(1)
            if len(calls) == 1:
                time.sleep(5.0)  # blows the budget; thread is abandoned
            return make_result()

        result = runner(retries=1, timeout_seconds=0.2).run(fn)
        assert result.attempts == 2
        assert len(calls) == 2
        assert result.failures[0]["kind"] == "timeout"
        assert "wall-clock" in result.failures[0]["message"]

    def test_timeout_exhaustion_raises_timeout_history(self):
        def fn():
            time.sleep(5.0)
            return make_result()

        with pytest.raises(ExperimentError) as excinfo:
            runner(timeout_seconds=0.1).run(fn, experiment_id="slow")
        assert "slow" in str(excinfo.value)
        assert excinfo.value.failure_records[0]["kind"] == "timeout"

    def test_worker_exception_propagates_through_timeout_path(self):
        def fn():
            raise KeyError("inner")

        with pytest.raises(ExperimentError):
            runner(timeout_seconds=5.0).run(fn)


class TestGracefulDegradation:
    def test_degrades_after_exhausted_retries(self):
        seen = []

        def fn(scale: float = 1.0, seed: int = 0):
            seen.append(scale)
            if scale > 0.5:
                raise ValueError("full fidelity too big")
            return make_result()

        result = runner(retries=1, degrade_scales=(0.5, 0.25)).run(fn, scale=1.0)
        assert seen == [1.0, 1.0, 0.5]
        assert result.degraded
        assert result.attempts == 3
        assert len(result.failures) == 2
        assert "degraded to scale=0.5" in result.notes

    def test_no_degradation_when_fn_lacks_scale(self):
        calls = []

        def fn():
            calls.append(1)
            raise ValueError("boom")

        with pytest.raises(ExperimentError):
            runner(degrade_scales=(0.5, 0.25)).run(fn)
        assert len(calls) == 1  # no scale keyword -> no fallback levels

    def test_failure_records_carry_scale(self):
        def fn(scale: float = 1.0):
            if scale == 1.0:
                raise ValueError("boom")
            return make_result()

        result = runner(degrade_scales=(0.5,)).run(fn, scale=1.0)
        assert result.failures[0]["scale"] == 1.0


class TestExhaustion:
    def test_all_attempts_fail_raises_with_history(self):
        def fn():
            raise ValueError("always")

        with pytest.raises(ExperimentError, match="all 3 attempt"):
            try:
                runner(retries=2).run(fn, experiment_id="doomed")
            except ExperimentError as error:
                assert len(error.failure_records) == 3
                assert error.__cause__ is not None
                raise

    def test_unnamed_function_uses_dunder_name(self):
        def kaboom():
            raise ValueError("x")

        with pytest.raises(ExperimentError, match="kaboom"):
            runner().run(kaboom)


class TestCheckpointResume:
    def test_checkpoint_skips_retraining_across_retries(self, tmp_path):
        from repro.core.config import MLPConfig
        from repro.mlp.network import MLP

        trainings = []
        attempts = []

        def fn(checkpoint=None, seed: int = 0):
            attempts.append(1)

            def train():
                trainings.append(1)
                return MLP(MLPConfig(n_hidden=4).validate())

            model = checkpoint.load_or_train("model", train)
            assert model is not None
            if len(attempts) < 3:
                raise ValueError("post-training failure")
            return make_result()

        result = runner(retries=3, checkpoint_dir=str(tmp_path)).run(fn)
        assert result.attempts == 3
        assert len(trainings) == 1  # attempts 2 and 3 resumed the checkpoint

    def test_checkpoint_not_passed_when_unsupported(self, tmp_path):
        def fn():
            return make_result()

        # Would raise TypeError if the runner forced a checkpoint kwarg.
        assert runner(checkpoint_dir=str(tmp_path)).run(fn).attempts == 1

    def test_explicit_checkpoint_kwarg_wins(self, tmp_path):
        sentinel = object()
        seen = []

        def fn(checkpoint=None):
            seen.append(checkpoint)
            return make_result()

        runner(checkpoint_dir=str(tmp_path)).run(fn, checkpoint=sentinel)
        assert seen == [sentinel]


class TestFailureRecord:
    def test_as_row_rounds_elapsed(self):
        record = FailureRecord(
            attempt=1,
            scale=0.5,
            seed=3,
            kind="error",
            error="ValueError",
            message="boom",
            elapsed_seconds=0.123456,
        )
        row = record.as_row()
        assert row["elapsed_seconds"] == 0.123
        assert row["attempt"] == 1 and row["kind"] == "error"


class TestTimeoutErrorType:
    def test_timeout_is_experiment_error(self):
        assert issubclass(ExperimentTimeoutError, ExperimentError)
