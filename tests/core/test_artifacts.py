"""Tests for the content-addressed trained-model cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import artifacts
from repro.core.artifacts import (
    CacheStats,
    ModelCache,
    cache_enabled,
    cache_key,
    cached_train,
    coder_signature,
    dataset_signature,
)
from repro.core.config import MLPConfig, SNNConfig
from repro.datasets.base import Dataset
from repro.datasets.digits import load_digits
from repro.mlp.network import MLP
from repro.snn.coding import GaussianCoder, PoissonCoder


@pytest.fixture()
def tiny_pair():
    return load_digits(n_train=60, n_test=20, seed=2, side=10)


@pytest.fixture()
def cache(tmp_path):
    return ModelCache(tmp_path / "cache")


def _mlp_factory(config, calls):
    def factory():
        calls.append(1)
        return MLP(config)

    return factory


class TestKeys:
    def test_key_is_stable(self, tiny_pair):
        train_set, _ = tiny_pair
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        assert cache_key("mlp", config, train_set) == cache_key(
            "mlp", config, train_set
        )

    def test_key_changes_with_config(self, tiny_pair):
        train_set, _ = tiny_pair
        a = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        b = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=9)
        assert cache_key("mlp", a, train_set) != cache_key("mlp", b, train_set)

    def test_key_changes_with_dataset_content(self, tiny_pair):
        train_set, _ = tiny_pair
        images = np.array(train_set.images, copy=True)
        images[0, 0] ^= 1  # single-bit content change
        altered = Dataset(
            images=images,
            labels=train_set.labels,
            n_classes=train_set.n_classes,
            name=train_set.name,
        )
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        assert cache_key("mlp", config, train_set) != cache_key(
            "mlp", config, altered
        )

    def test_key_changes_with_train_params_and_kind(self, tiny_pair):
        train_set, _ = tiny_pair
        config = SNNConfig(n_inputs=train_set.n_inputs, n_neurons=8)
        base = cache_key("snn", config, train_set, {"epochs": 3})
        assert base != cache_key("snn", config, train_set, {"epochs": 4})
        assert base != cache_key("snnbp", config, train_set, {"epochs": 3})

    def test_dataset_signature_includes_labels(self, tiny_pair):
        train_set, _ = tiny_pair
        labels = np.array(train_set.labels, copy=True)
        labels[0] = (labels[0] + 1) % train_set.n_classes
        relabeled = Dataset(
            images=train_set.images,
            labels=labels,
            n_classes=train_set.n_classes,
            name=train_set.name,
        )
        assert dataset_signature(train_set) != dataset_signature(relabeled)

    def test_coder_signature_distinguishes_coders(self):
        poisson = PoissonCoder(duration=100.0, max_rate_interval=50.0)
        gaussian = GaussianCoder(duration=100.0, max_rate_interval=50.0)
        shorter = PoissonCoder(duration=50.0, max_rate_interval=50.0)
        assert coder_signature(poisson) != coder_signature(gaussian)
        assert coder_signature(poisson) != coder_signature(shorter)
        assert coder_signature(None) == {"class": None}


class TestModelCache:
    def test_miss_then_hit(self, cache, tiny_pair):
        train_set, _ = tiny_pair
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        calls = []
        first = cache.get_or_train(
            "mlp", config, train_set, _mlp_factory(config, calls)
        )
        second = cache.get_or_train(
            "mlp", config, train_set, _mlp_factory(config, calls)
        )
        assert len(calls) == 1  # second call trained nothing
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "errors": 0,
            "corrupt_evictions": 0,
            "capacity_evictions": 0,
        }
        np.testing.assert_array_equal(first.w_hidden, second.w_hidden)

    def test_corrupt_entry_falls_back_to_retraining(self, cache, tiny_pair):
        train_set, _ = tiny_pair
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        calls = []
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, calls))
        key = cache_key("mlp", config, train_set)
        cache.path_for(key).write_bytes(b"not an npz archive")
        model = cache.get_or_train(
            "mlp", config, train_set, _mlp_factory(config, calls)
        )
        assert len(calls) == 2
        # The sha256 sidecar catches the corruption *before* the loader
        # even runs: counted as an integrity eviction, not a load error.
        assert cache.stats.corrupt_evictions == 1
        assert cache.stats.errors == 0
        assert isinstance(model, MLP)
        # The corrupt entry was overwritten with a valid one.
        calls_before = len(calls)
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, calls))
        assert len(calls) == calls_before

    def test_legacy_entry_without_sidecar_still_loads(self, cache, tiny_pair):
        """Pre-integrity entries (no .sha256) are tolerated as hits."""
        train_set, _ = tiny_pair
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        calls = []
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, calls))
        key = cache_key("mlp", config, train_set)
        artifacts.digest_sidecar(cache.path_for(key)).unlink()
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, calls))
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.corrupt_evictions == 0

    def test_corrupt_legacy_entry_falls_back_via_loader(self, cache, tiny_pair):
        """No sidecar + garbage bytes: the loader-level fallback fires."""
        train_set, _ = tiny_pair
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        calls = []
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, calls))
        key = cache_key("mlp", config, train_set)
        path = cache.path_for(key)
        artifacts.digest_sidecar(path).unlink()
        path.write_bytes(b"not an npz archive")
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, calls))
        assert len(calls) == 2
        assert cache.stats.errors == 1
        assert cache.stats.corrupt_evictions == 0

    def test_sidecar_written_and_verifies(self, cache, tiny_pair):
        train_set, _ = tiny_pair
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, []))
        path = cache.path_for(cache_key("mlp", config, train_set))
        sidecar = artifacts.digest_sidecar(path)
        assert sidecar.exists()
        assert artifacts.verify_digest_sidecar(path) is True
        assert (
            sidecar.read_text().strip() == artifacts.file_digest(path)
        )

    def test_single_bit_flip_is_caught(self, cache, tiny_pair):
        """Integrity acceptance: one flipped bit evicts + retrains."""
        train_set, _ = tiny_pair
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        calls = []
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, calls))
        path = cache.path_for(cache_key("mlp", config, train_set))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        assert artifacts.verify_digest_sidecar(path) is False
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, calls))
        assert len(calls) == 2
        assert cache.stats.corrupt_evictions == 1
        # Fresh entry is valid again.
        assert artifacts.verify_digest_sidecar(path) is True

    def test_clear_removes_entries(self, cache, tiny_pair):
        train_set, _ = tiny_pair
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, []))
        assert cache.clear() == 1
        assert cache.clear() == 0

    def test_stats_reset(self):
        stats = CacheStats(
            hits=2,
            misses=3,
            stores=3,
            errors=1,
            corrupt_evictions=4,
            capacity_evictions=5,
        )
        stats.reset()
        assert stats.as_dict() == {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "errors": 0,
            "corrupt_evictions": 0,
            "capacity_evictions": 0,
        }


class TestEnvControls:
    def test_no_cache_env_bypasses(self, monkeypatch, tiny_pair):
        train_set, _ = tiny_pair
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not cache_enabled()
        calls = []
        cached_train("mlp", config, train_set, _mlp_factory(config, calls))
        cached_train("mlp", config, train_set, _mlp_factory(config, calls))
        assert len(calls) == 2  # trained every time, nothing cached

    def test_cache_dir_env_respected(self, monkeypatch, tmp_path, tiny_pair):
        train_set, _ = tiny_pair
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        artifacts.reset_default_cache()
        try:
            cached_train("mlp", config, train_set, _mlp_factory(config, []))
            assert list((tmp_path / "elsewhere").glob("*.npz"))
        finally:
            artifacts.reset_default_cache()


class TestTrainingHelpersAreMemoized:
    def test_warm_helper_calls_train_zero_times(
        self, monkeypatch, tmp_path, tiny_pair
    ):
        """The acceptance criterion: a warm run skips all training."""
        from repro.analysis import common

        train_set, test_set = tiny_pair
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "warm"))
        artifacts.reset_default_cache()
        try:
            config = MLPConfig(
                n_inputs=train_set.n_inputs, n_hidden=6, epochs=2
            ).validate()
            cold = common.train_mlp_model(config, train_set, epochs=2)
            stats_after_cold = artifacts.cache_stats()
            assert stats_after_cold["misses"] == 1
            warm = common.train_mlp_model(config, train_set, epochs=2)
            stats_after_warm = artifacts.cache_stats()
            assert stats_after_warm["hits"] == 1
            assert stats_after_warm["misses"] == 1  # no new training
            np.testing.assert_array_equal(cold.w_hidden, warm.w_hidden)
            np.testing.assert_array_equal(
                cold.predict(test_set.normalized()),
                warm.predict(test_set.normalized()),
            )
        finally:
            artifacts.reset_default_cache()

    def test_snn_helper_restores_coder_on_hit(
        self, monkeypatch, tmp_path, tiny_pair
    ):
        from repro.analysis import common

        train_set, _ = tiny_pair
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "snncache"))
        artifacts.reset_default_cache()
        try:
            config = SNNConfig(
                n_inputs=train_set.n_inputs,
                n_neurons=10,
                n_labels=train_set.n_classes,
                epochs=1,
            ).validate()
            coder = GaussianCoder(
                duration=config.t_period,
                max_rate_interval=config.min_spike_interval,
            )
            cold = common.train_snn_model(config, train_set, epochs=1, coder=coder)
            warm = common.train_snn_model(config, train_set, epochs=1, coder=coder)
            assert artifacts.cache_stats()["hits"] == 1
            assert isinstance(warm.coder, GaussianCoder)
            np.testing.assert_array_equal(cold.weights, warm.weights)
            np.testing.assert_array_equal(
                cold.population.thresholds, warm.population.thresholds
            )
            np.testing.assert_array_equal(cold.neuron_labels, warm.neuron_labels)
        finally:
            artifacts.reset_default_cache()


class TestCapacityBound:
    """Size-limited LRU eviction (``max_bytes`` / REPRO_CACHE_MAX_BYTES)."""

    @staticmethod
    def _store(cache, train_set, n_hidden):
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=n_hidden)
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, []))
        return cache.path_for(cache_key("mlp", config, train_set))

    def test_unbounded_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        assert ModelCache(tmp_path / "c").max_bytes is None

    @pytest.mark.parametrize("raw", ["", "not-a-number", "0", "-5"])
    def test_malformed_env_limit_means_unbounded(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", raw)
        assert artifacts.cache_max_bytes() is None

    def test_env_limit_is_picked_up(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert artifacts.cache_max_bytes() == 12345
        assert ModelCache(tmp_path / "c").max_bytes == 12345

    def test_oldest_entry_is_evicted_first(self, tmp_path, tiny_pair):
        import os as _os

        train_set, _ = tiny_pair
        probe = ModelCache(tmp_path / "cache")
        first = self._store(probe, train_set, 4)
        entry_bytes = probe._entry_size(first)
        # Room for two entries (plus slack), not three.
        cache = ModelCache(
            tmp_path / "cache", max_bytes=int(entry_bytes * 2.5)
        )
        second = self._store(cache, train_set, 5)
        # Age the entries deterministically: second is the stalest.
        for age, path in ((100, first), (300, second)):
            stat = path.stat()
            _os.utime(path, (stat.st_atime, stat.st_mtime - age))
        third = self._store(cache, train_set, 6)
        assert not second.exists(), "the least-recently-used entry goes"
        assert first.exists()
        assert third.exists(), "the entry just written is shielded"
        assert cache.stats.capacity_evictions >= 1

    def test_hit_refreshes_recency(self, tmp_path, tiny_pair):
        import os as _os

        train_set, _ = tiny_pair
        probe = ModelCache(tmp_path / "cache")
        first = self._store(probe, train_set, 4)
        entry_bytes = probe._entry_size(first)
        cache = ModelCache(
            tmp_path / "cache", max_bytes=int(entry_bytes * 2.5)
        )
        second = self._store(cache, train_set, 5)
        # Make `first` stale, then hit it — the hit must refresh it.
        for age, path in ((300, first), (100, second)):
            stat = path.stat()
            _os.utime(path, (stat.st_atime, stat.st_mtime - age))
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=4)
        cache.get_or_train("mlp", config, train_set, _mlp_factory(config, []))
        assert cache.stats.hits == 1
        third = self._store(cache, train_set, 6)
        assert first.exists(), "a fresh hit saves the entry from eviction"
        assert not second.exists(), "recency, not insertion order, decides"
        assert third.exists()

    def test_non_positive_constructor_limit_means_unbounded(self, tmp_path):
        assert ModelCache(tmp_path / "c", max_bytes=0).max_bytes is None
        assert ModelCache(tmp_path / "c", max_bytes=-1).max_bytes is None


class TestArrayBundleCache:
    """The sweep-shard store: npz bundles under ``<cache>/sweeps/``."""

    @staticmethod
    def _bundle():
        return {
            "a": np.arange(6, dtype=np.float64),
            "b": np.array([1, 2, 3], dtype=np.int64),
        }

    def test_miss_then_hit_round_trip(self, tmp_path):
        from repro.core.artifacts import ArrayBundleCache

        cache = ArrayBundleCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return self._bundle()

        first = cache.get_or_compute("k1", compute)
        second = cache.get_or_compute("k1", compute)
        assert len(calls) == 1
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        for name in ("a", "b"):
            assert np.array_equal(first[name], second[name])
        assert cache.path_for("k1").parent.name == "sweeps"

    def test_corrupt_entry_evicted_and_recomputed(self, tmp_path):
        from repro.core.artifacts import ArrayBundleCache

        cache = ArrayBundleCache(tmp_path)
        cache.get_or_compute("k1", self._bundle)
        cache.path_for("k1").write_bytes(b"not an npz")
        again = cache.get_or_compute("k1", self._bundle)
        assert cache.stats.corrupt_evictions == 1
        assert np.array_equal(again["a"], self._bundle()["a"])
        # The recompute restored a loadable entry.
        cache2 = ArrayBundleCache(tmp_path)
        cache2.get_or_compute("k1", self._bundle)
        assert cache2.stats.hits == 1

    def test_distinct_keys_distinct_entries(self, tmp_path):
        from repro.core.artifacts import ArrayBundleCache

        cache = ArrayBundleCache(tmp_path)
        cache.get_or_compute("k1", self._bundle)
        cache.get_or_compute("k2", lambda: {"a": np.zeros(2)})
        assert cache.stats.misses == 2
        assert np.array_equal(
            cache.get_or_compute("k2", self._bundle)["a"], np.zeros(2)
        )

    def test_clear_removes_entries(self, tmp_path):
        from repro.core.artifacts import ArrayBundleCache

        cache = ArrayBundleCache(tmp_path)
        cache.get_or_compute("k1", self._bundle)
        cache.get_or_compute("k2", self._bundle)
        assert cache.clear() == 2
        cache.get_or_compute("k1", self._bundle)
        assert cache.stats.misses == 3


class TestVerifyCache:
    """Offline sidecar audit over every cache family (``cache verify``)."""

    def _populate(self, base, tiny_pair):
        from repro.core.artifacts import ArrayBundleCache

        train_set, _ = tiny_pair
        config = MLPConfig(n_inputs=train_set.n_inputs, n_hidden=8)
        model_cache = ModelCache(base)
        model_cache.get_or_train(
            "mlp", config, train_set, _mlp_factory(config, [])
        )
        ArrayBundleCache(base).get_or_compute(
            "sweep-k", lambda: {"a": np.arange(4.0)}
        )
        return model_cache, cache_key("mlp", config, train_set)

    def test_empty_directory_reports_zero(self, tmp_path):
        report = artifacts.verify_cache(tmp_path)
        assert report == {
            "directory": str(tmp_path),
            "checked": 0,
            "verified": 0,
            "corrupt": 0,
            "missing_sidecar": 0,
            "evicted": 0,
            "entries": [],
        }

    def test_clean_entries_all_verify(self, tmp_path, tiny_pair):
        self._populate(tmp_path, tiny_pair)
        report = artifacts.verify_cache(tmp_path)
        assert report["checked"] == 2
        assert report["verified"] == 2
        assert report["corrupt"] == 0
        assert {e["status"] for e in report["entries"]} == {"verified"}
        # Entries cover both the root and the sweeps/ subdirectory.
        assert any(e["path"].startswith("sweeps/") for e in report["entries"])

    def test_bit_flip_is_reported_and_evictable(self, tmp_path, tiny_pair):
        model_cache, key = self._populate(tmp_path, tiny_pair)
        path = model_cache.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        report = artifacts.verify_cache(tmp_path)
        assert report["corrupt"] == 1
        assert report["evicted"] == 0
        assert path.exists()  # audit without --evict never deletes
        evicting = artifacts.verify_cache(tmp_path, evict=True)
        assert evicting["corrupt"] == 1
        assert evicting["evicted"] == 1
        assert not path.exists()
        assert not artifacts.digest_sidecar(path).exists()
        clean = artifacts.verify_cache(tmp_path)
        assert clean["corrupt"] == 0
        assert clean["checked"] == 1

    def test_missing_sidecar_is_tolerated_not_evicted(
        self, tmp_path, tiny_pair
    ):
        model_cache, key = self._populate(tmp_path, tiny_pair)
        path = model_cache.path_for(key)
        artifacts.digest_sidecar(path).unlink()
        report = artifacts.verify_cache(tmp_path, evict=True)
        assert report["missing_sidecar"] == 1
        assert report["evicted"] == 0
        assert path.exists()

    def test_defaults_to_the_active_cache_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachehome"))
        report = artifacts.verify_cache()
        assert report["directory"] == str(tmp_path / "cachehome")
