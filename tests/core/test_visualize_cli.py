"""Tests for the visualization helpers and the CLI."""

import numpy as np
import pytest

from repro.analysis.visualize import (
    ascii_image,
    dataset_contact_sheet,
    potential_trace,
    receptive_field_sheet,
    spike_raster,
    write_pgm,
)
from repro.core.errors import ReproError
from repro.snn.coding import SpikeTrain


class TestAsciiImage:
    def test_square_vector_reshaped(self):
        text = ascii_image(np.arange(16, dtype=float))
        assert len(text.splitlines()) == 4

    def test_dark_to_bright_ramp(self):
        text = ascii_image(np.array([[0.0, 1.0]]))
        assert text[0] == " " and text[-1] == "@"

    def test_constant_image_ok(self):
        text = ascii_image(np.full((2, 2), 5.0))
        assert len(text.splitlines()) == 2

    def test_non_square_vector_rejected(self):
        with pytest.raises(ReproError):
            ascii_image(np.arange(15, dtype=float))

    def test_3d_rejected(self):
        with pytest.raises(ReproError):
            ascii_image(np.zeros((2, 2, 2)))


class TestSpikeRaster:
    def test_raster_rows_and_marks(self):
        train = SpikeTrain(
            times=np.array([10.0, 250.0, 499.0]),
            inputs=np.array([0, 1, 2]),
            n_inputs=3,
            duration=500.0,
        )
        text = spike_raster(train, n_rows=3, n_bins=50)
        assert text.count("|") == 3
        assert "500 ms" in text

    def test_invalid_geometry_rejected(self):
        train = SpikeTrain(np.array([1.0]), np.array([0]), 1, 10.0)
        with pytest.raises(ReproError):
            spike_raster(train, n_rows=0)


class TestPotentialTrace:
    def test_marks_threshold_crossing(self):
        potentials = np.linspace(0, 10, 20).reshape(20, 1)
        text = potential_trace(potentials, thresholds=np.array([5.0]))
        assert "x" in text

    def test_one_line_per_neuron(self):
        potentials = np.random.default_rng(0).random((30, 4))
        assert len(potential_trace(potentials).splitlines()) == 4

    def test_bad_shape_rejected(self):
        with pytest.raises(ReproError):
            potential_trace(np.zeros(10))


class TestPGM:
    def test_writes_valid_p2(self, tmp_path):
        path = write_pgm(tmp_path / "x.pgm", np.array([[0.0, 1.0], [0.5, 0.25]]))
        lines = path.read_text().splitlines()
        assert lines[0] == "P2"
        assert lines[1] == "2 2"
        assert lines[2] == "255"
        values = [int(v) for row in lines[3:] for v in row.split()]
        assert max(values) == 255 and min(values) == 0

    def test_sheet_geometry(self):
        weights = np.random.default_rng(0).random((7, 16))
        sheet = receptive_field_sheet(weights, side=4, columns=3, pad=1)
        # 3 rows x 3 columns of 4-pixel tiles with 1-pixel padding.
        assert sheet.shape == (3 * 5 - 1, 3 * 5 - 1)

    def test_sheet_rejects_bad_width(self):
        with pytest.raises(ReproError):
            receptive_field_sheet(np.zeros((2, 10)), side=4)

    def test_contact_sheet_matches_fields(self):
        images = np.random.default_rng(1).random((4, 16))
        assert dataset_contact_sheet(images, side=4, columns=2).shape == (9, 9)


class TestCLI:
    def test_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig14" in out

    def test_report_single_experiment(self, capsys):
        from repro.cli import main

        assert main(["report", "table6"]) == 0
        out = capsys.readouterr().out
        assert "measured:" in out and "paper:" in out

    def test_recommend_embedded(self, capsys):
        from repro.cli import main

        assert main(["recommend", "--max-area", "8"]) == 0
        out = capsys.readouterr().out
        assert "recommended: MLP" in out

    def test_recommend_infeasible_exits_nonzero(self, capsys):
        from repro.cli import main

        assert main(["recommend", "--max-area", "0.001"]) == 1

    def test_sample_unknown_dataset(self, capsys):
        from repro.cli import main

        assert main(["sample", "nonsense"]) == 1

    def test_sample_digits(self, capsys):
        from repro.cli import main

        assert main(["sample", "digits", "--count", "2", "--columns", "2"]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 20


class TestCLIUnknownIds:
    def test_unknown_id_exits_2_with_known_ids(self, capsys):
        from repro.cli import EXIT_USAGE, main

        assert main(["report", "nosuch"]) == EXIT_USAGE == 2
        captured = capsys.readouterr()
        assert "unknown experiment id 'nosuch'" in captured.err
        assert "table1" in captured.err  # the known-ids list
        assert "Traceback" not in captured.err

    def test_unknown_id_fails_before_running_anything(self, capsys):
        from repro.cli import main

        # A valid id listed before the bad one must not run: validation
        # is up-front, so nothing prints to stdout.
        assert main(["report", "table6", "nosuch"]) == 2
        assert "measured:" not in capsys.readouterr().out


class TestCLIResilienceFlags:
    def test_report_with_retries_and_timeout(self, capsys):
        from repro.cli import main

        code = main(
            ["report", "table6", "--retries", "1", "--timeout", "120"]
        )
        assert code == 0
        assert "measured:" in capsys.readouterr().out

    def test_invalid_degrade_scale_exits_2(self, capsys):
        from repro.cli import main

        assert main(["report", "table6", "--degrade-scales", "1.5"]) == 2
        assert "degrade" in capsys.readouterr().err

    def test_default_flags_mean_no_policy(self):
        import argparse

        from repro.cli import _policy_from_args

        args = argparse.Namespace(
            retries=0,
            timeout=None,
            backoff=0.0,
            checkpoint_dir=None,
            degrade_scales="",
        )
        assert _policy_from_args(args) is None

    def test_flags_build_validated_policy(self):
        import argparse

        from repro.cli import _policy_from_args

        args = argparse.Namespace(
            retries=2,
            timeout=30.0,
            backoff=0.5,
            checkpoint_dir="/tmp/ckpt",
            degrade_scales="0.5, 0.25",
        )
        policy = _policy_from_args(args)
        assert policy.retries == 2
        assert policy.timeout_seconds == 30.0
        assert policy.degrade_scales == (0.5, 0.25)
        assert policy.checkpoint_dir == "/tmp/ckpt"
