"""Tests for the classification metrics."""

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.core.metrics import (
    accuracy,
    confusion_matrix,
    error_rate,
    evaluate,
    per_class_accuracy,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 2], [0, 1, 2]) == 1.0

    def test_none_correct(self):
        assert accuracy([1, 2, 0], [0, 1, 2]) == 0.0

    def test_partial(self):
        assert accuracy([0, 1, 0, 1], [0, 1, 1, 0]) == 0.5

    def test_no_fire_marker_counts_wrong(self):
        # -1 is the SNN "no neuron fired" marker; always incorrect.
        assert accuracy([-1, -1], [0, 1]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            accuracy([0, 1], [0, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            accuracy([], [])

    def test_error_rate_complements_accuracy(self):
        predictions = [0, 1, 0, 2]
        labels = [0, 1, 1, 1]
        assert accuracy(predictions, labels) + error_rate(predictions, labels) == 1.0


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        matrix = confusion_matrix([0, 1, 2, 2], [0, 1, 2, 2], 3)
        assert np.array_equal(matrix, np.diag([1, 1, 2]))

    def test_off_diagonal_counts(self):
        matrix = confusion_matrix([1, 1], [0, 0], 2)
        assert matrix[0, 1] == 2
        assert matrix.sum() == 2

    def test_invalid_predictions_dropped(self):
        matrix = confusion_matrix([-1, 0], [0, 0], 2)
        assert matrix.sum() == 1

    def test_rows_are_true_labels(self):
        matrix = confusion_matrix([2], [1], 3)
        assert matrix[1, 2] == 1


class TestPerClassAccuracy:
    def test_values(self):
        result = per_class_accuracy([0, 0, 1, 0], [0, 0, 1, 1], 2)
        assert result[0] == 1.0
        assert result[1] == 0.5

    def test_absent_class_is_nan(self):
        result = per_class_accuracy([0], [0], 3)
        assert np.isnan(result[1]) and np.isnan(result[2])


class TestEvaluate:
    def test_bundle_fields(self):
        result = evaluate([0, 1, 1, 0], [0, 1, 0, 0], 2)
        assert result.accuracy == 0.75
        assert result.n_samples == 4
        assert result.n_classes == 2
        assert result.confusion.shape == (2, 2)
        assert result.error_rate == pytest.approx(0.25)
        assert result.accuracy_percent == pytest.approx(75.0)

    def test_summary_mentions_accuracy(self):
        result = evaluate([0, 1], [0, 1], 2)
        assert "100.00%" in result.summary()
