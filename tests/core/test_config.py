"""Tests for the Table 1 configuration dataclasses."""

import pytest

from repro.core.config import (
    MLPConfig,
    SNNConfig,
    mnist_mlp_config,
    mnist_snn_config,
    mpeg7_mlp_config,
    mpeg7_snn_config,
    sad_mlp_config,
    sad_snn_config,
)
from repro.core.errors import ConfigError


class TestMLPConfigDefaults:
    def test_defaults_match_table1(self):
        config = mnist_mlp_config()
        assert config.n_inputs == 784
        assert config.n_hidden == 100
        assert config.n_output == 10
        assert config.learning_rate == 0.3
        assert config.epochs == 50

    def test_weight_count_matches_paper(self):
        # Section 4.3.3: 784*100 + 100*10 = 79,400 weights.
        assert mnist_mlp_config().n_weights == 79_400

    def test_topology_string(self):
        assert mnist_mlp_config().topology == "28x28-100-10"

    def test_topology_non_square_inputs(self):
        config = MLPConfig(n_inputs=90, n_hidden=10, n_output=10)
        assert config.topology == "90-10-10"

    def test_with_hidden_returns_new_config(self):
        base = mnist_mlp_config()
        small = base.with_hidden(15)
        assert small.n_hidden == 15
        assert base.n_hidden == 100
        assert small.topology == "28x28-15-10"


class TestMLPConfigValidation:
    def test_zero_inputs_rejected(self):
        with pytest.raises(ConfigError):
            MLPConfig(n_inputs=0).validate()

    @pytest.mark.parametrize("field,value", [
        ("n_hidden", 0),
        ("n_hidden", 10_000),
        ("learning_rate", 0.0),
        ("learning_rate", 5.0),
        ("epochs", 0),
    ])
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ConfigError):
            MLPConfig(**{field: value}).validate()

    def test_negative_sigmoid_slope_rejected(self):
        with pytest.raises(ConfigError):
            MLPConfig(sigmoid_slope=-1.0).validate()

    def test_validate_returns_self(self):
        config = MLPConfig()
        assert config.validate() is config


class TestSNNConfigDefaults:
    def test_defaults_match_table1(self):
        config = mnist_snn_config()
        assert config.n_neurons == 300
        assert config.t_period == 500.0
        assert config.t_leak == 500.0
        assert config.t_inhibit == 5.0
        assert config.t_refrac == 20.0
        assert config.t_ltp == 45.0
        assert config.initial_threshold == 17_850.0  # w_max * 70
        assert config.homeo_epoch == 1_500_000.0
        assert config.homeo_threshold == 30.0

    def test_initial_threshold_is_wmax_times_70(self):
        config = mnist_snn_config()
        assert config.initial_threshold == config.w_max * 70

    def test_weight_count_matches_paper(self):
        # Section 4.3.3: 784*300 = 235,200 weights.
        assert mnist_snn_config().n_weights == 235_200

    def test_max_spikes_per_pixel_is_ten(self):
        # Section 4.2.2: up to 10 spikes per 8-bit pixel.
        assert mnist_snn_config().max_spikes_per_pixel == 10

    def test_topology_string(self):
        assert mnist_snn_config().topology == "28x28-300"

    def test_with_neurons_rescales_homeostasis(self):
        config = mnist_snn_config().with_neurons(100)
        # Table 1: HomeoT = 10 * Tperiod * #N; Homeoth = 3*HomeoT/(Tperiod*#N).
        assert config.homeo_epoch == 10 * 500.0 * 100
        assert config.homeo_threshold == pytest.approx(30.0)


class TestSNNConfigValidation:
    @pytest.mark.parametrize("field,value", [
        ("n_neurons", 1),
        ("t_period", 10.0),
        ("t_leak", 5.0),
        ("t_inhibit", 0.0),
        ("t_refrac", 1.0),
        ("t_ltp", 0.0),
    ])
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ConfigError):
            SNNConfig(**{field: value}).validate()

    def test_w_max_bounds(self):
        with pytest.raises(ConfigError):
            SNNConfig(w_max=0).validate()
        with pytest.raises(ConfigError):
            SNNConfig(w_max=300).validate()

    def test_period_shorter_than_interval_rejected(self):
        with pytest.raises(ConfigError):
            SNNConfig(t_period=60.0, min_spike_interval=100.0).validate()

    def test_bad_stdp_mode_rejected(self):
        with pytest.raises(ConfigError):
            SNNConfig(stdp_mode="magic").validate()

    def test_negative_stdp_steps_rejected(self):
        with pytest.raises(ConfigError):
            SNNConfig(stdp_ltp=-1.0).validate()


class TestWorkloadConfigs:
    def test_mpeg7_topologies(self):
        # Section 4.5: MLP 28x28-15-10 and SNN 28x28-90.
        assert mpeg7_mlp_config().topology == "28x28-15-10"
        assert mpeg7_snn_config().topology == "28x28-90"

    def test_sad_topologies(self):
        # Section 4.5: MLP 13x13-60-10 and SNN 13x13-90.
        assert sad_mlp_config().topology == "13x13-60-10"
        assert sad_snn_config().topology == "13x13-90"

    def test_overrides_apply(self):
        config = mnist_snn_config(epochs=7)
        assert config.epochs == 7

    def test_invalid_override_rejected(self):
        with pytest.raises(ConfigError):
            mnist_mlp_config(learning_rate=100.0)
