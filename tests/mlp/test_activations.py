"""Tests for the activation functions (Figure 5 machinery)."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.mlp.activations import (
    activation_profile,
    make_sigmoid,
    make_step,
    sigmoid,
    sigmoid_derivative_from_output,
    step,
)


class TestSigmoid:
    def test_standard_values(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
        assert sigmoid(np.array([100.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-100.0]))[0] == pytest.approx(0.0)

    def test_no_overflow_for_extreme_inputs(self):
        with np.errstate(over="raise"):
            values = sigmoid(np.array([-1e4, 1e4]), slope=16.0)
        assert values[0] == 0.0 and values[1] == 1.0

    def test_slope_steepens_profile(self):
        x = np.array([0.5])
        values = [sigmoid(x, slope=a)[0] for a in (1, 2, 4, 8, 16)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_slope_convergence_to_step(self):
        # Figure 5: higher a brings the sigmoid closer to the step.
        x = np.linspace(-4, 4, 101)
        x = x[np.abs(x) > 0.25]
        deviations = [
            np.max(np.abs(sigmoid(x, slope=a) - step(x))) for a in (1, 4, 16)
        ]
        assert deviations[0] > deviations[1] > deviations[2]

    def test_derivative_from_output(self):
        y = sigmoid(np.array([0.7]), slope=3.0)
        expected = 3.0 * y * (1 - y)
        assert sigmoid_derivative_from_output(y, 3.0) == pytest.approx(expected)

    def test_derivative_matches_numerical(self):
        x = np.array([0.3])
        eps = 1e-6
        numeric = (sigmoid(x + eps, 2.0) - sigmoid(x - eps, 2.0)) / (2 * eps)
        y = sigmoid(x, 2.0)
        assert sigmoid_derivative_from_output(y, 2.0)[0] == pytest.approx(
            numeric[0], rel=1e-4
        )


class TestStep:
    def test_values(self):
        assert step(np.array([-1.0, 0.0, 1.0])).tolist() == [0.0, 0.0, 1.0]

    def test_step_activation_has_surrogate_gradient(self):
        activation = make_step()
        x = np.array([0.1, -0.1])
        gradient = activation.derivative(x, activation.forward(x))
        assert np.all(gradient > 0)  # surrogate is positive near 0

    def test_surrogate_vanishes_far_from_zero(self):
        activation = make_step()
        near = activation.derivative(np.array([0.0]), None)
        far = activation.derivative(np.array([10.0]), None)
        assert near[0] > far[0]


class TestFactories:
    def test_make_sigmoid_names(self):
        assert make_sigmoid(4.0).name == "sigmoid(a=4)"

    def test_make_sigmoid_rejects_bad_slope(self):
        with pytest.raises(ConfigError):
            make_sigmoid(0.0)

    def test_make_step_rejects_bad_slope(self):
        with pytest.raises(ConfigError):
            make_step(surrogate_slope=-1.0)

    def test_activation_profile_shape(self):
        xs, ys = activation_profile(make_sigmoid(1.0), -5, 5, 21)
        assert xs.shape == ys.shape == (21,)
        assert ys[0] < 0.01 and ys[-1] > 0.99
