"""Tests for the MLP forward pass and the BP trainer."""

import numpy as np
import pytest

from repro.core.config import MLPConfig
from repro.core.errors import ConfigError, TrainingError
from repro.datasets.base import Dataset
from repro.mlp.network import MLP
from repro.mlp.trainer import BackPropTrainer, evaluate_mlp, one_hot, train_mlp


def tiny_config(**overrides):
    base = dict(n_inputs=16, n_hidden=8, n_output=4, epochs=10, seed=1)
    base.update(overrides)
    return MLPConfig(**base).validate()


def tiny_dataset(n=80, n_classes=4):
    """A trivially separable dataset: class = brightest quadrant."""
    rng = np.random.default_rng(0)
    images = np.zeros((n, 16), dtype=np.uint8)
    labels = np.arange(n) % n_classes
    for i, label in enumerate(labels):
        images[i] = rng.integers(0, 60, 16)
        images[i, label * 4 : label * 4 + 4] = rng.integers(180, 255, 4)
    return Dataset(images=images, labels=labels.astype(np.int64), n_classes=n_classes)


class TestForward:
    def test_output_shape(self):
        network = MLP(tiny_config())
        trace = network.forward(np.zeros((5, 16)))
        assert trace.output_out.shape == (5, 4)
        assert trace.hidden_out.shape == (5, 8)

    def test_single_sample_promoted_to_batch(self):
        network = MLP(tiny_config())
        trace = network.forward(np.zeros(16))
        assert trace.output_out.shape == (1, 4)

    def test_wrong_input_size_rejected(self):
        network = MLP(tiny_config())
        with pytest.raises(ConfigError):
            network.forward(np.zeros((2, 9)))

    def test_outputs_in_sigmoid_range(self):
        network = MLP(tiny_config())
        trace = network.forward(np.random.default_rng(0).random((10, 16)))
        assert trace.output_out.min() > 0.0 and trace.output_out.max() < 1.0

    def test_deterministic_init_per_seed(self):
        a = MLP(tiny_config(seed=3))
        b = MLP(tiny_config(seed=3))
        assert np.array_equal(a.w_hidden, b.w_hidden)

    def test_different_seeds_differ(self):
        a = MLP(tiny_config(seed=3))
        b = MLP(tiny_config(seed=4))
        assert not np.array_equal(a.w_hidden, b.w_hidden)

    def test_copy_weights(self):
        a = MLP(tiny_config(seed=3))
        b = MLP(tiny_config(seed=4))
        b.copy_weights_from(a)
        assert np.array_equal(a.w_output, b.w_output)

    def test_copy_weights_shape_mismatch_rejected(self):
        a = MLP(tiny_config())
        b = MLP(tiny_config(n_hidden=6))
        with pytest.raises(TrainingError):
            b.copy_weights_from(a)


class TestOneHot:
    def test_encoding(self):
        targets = one_hot(np.array([0, 2]), 3)
        assert targets.tolist() == [[1, 0, 0], [0, 0, 1]]

    def test_out_of_range_rejected(self):
        with pytest.raises(TrainingError):
            one_hot(np.array([3]), 3)


class TestTraining:
    def test_loss_decreases(self):
        dataset = tiny_dataset()
        network = MLP(tiny_config(learning_rate=0.5))
        trainer = BackPropTrainer(network, batch_size=8)
        history = trainer.train(dataset, epochs=20)
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_learns_separable_data(self):
        dataset = tiny_dataset()
        network = train_mlp(tiny_config(learning_rate=0.5), dataset, epochs=40, batch_size=8)
        result = evaluate_mlp(network, dataset)
        assert result.accuracy > 0.9

    def test_batch_size_one_is_online_bp(self):
        dataset = tiny_dataset(n=20)
        network = MLP(tiny_config(learning_rate=0.5))
        trainer = BackPropTrainer(network, batch_size=1)
        history = trainer.train(dataset, epochs=5)
        assert len(history.epoch_losses) == 5

    def test_validation_history(self):
        dataset = tiny_dataset()
        network = MLP(tiny_config())
        trainer = BackPropTrainer(network)
        history = trainer.train(dataset, epochs=3, validation=dataset)
        assert len(history.epoch_accuracies) == 3

    def test_bad_batch_size_rejected(self):
        with pytest.raises(TrainingError):
            BackPropTrainer(MLP(tiny_config()), batch_size=0)

    def test_final_loss_requires_epochs(self):
        from repro.mlp.trainer import TrainingHistory

        with pytest.raises(TrainingError):
            _ = TrainingHistory().final_loss

    def test_default_epochs_from_config(self):
        dataset = tiny_dataset(n=20)
        network = MLP(tiny_config(epochs=2))
        history = BackPropTrainer(network).train(dataset)
        assert len(history.epoch_losses) == 2


class TestTrainingOnDigits:
    def test_reaches_high_accuracy_on_digits(self, digits_small, trained_mlp):
        _, test_set = digits_small
        result = evaluate_mlp(trained_mlp, test_set)
        assert result.accuracy > 0.75

    def test_step_activation_trains(self, digits_small):
        from repro.mlp.activations import make_step

        train_set, test_set = digits_small
        config = MLPConfig(n_hidden=24, step_activation=True).validate()
        network = MLP(config)
        assert network.activation.name == "step[0/1]"
        BackPropTrainer(network).train(train_set, epochs=15)
        result = evaluate_mlp(network, test_set)
        assert result.accuracy > 0.5  # trains despite the hard step
