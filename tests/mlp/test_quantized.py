"""Tests for the 8-bit fixed-point MLP inference path (Section 4.2.1)."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.mlp.activations import sigmoid
from repro.mlp.quantized import SIGMOID_SEGMENTS, QuantizedMLP, SigmoidLUT
from repro.mlp.trainer import evaluate_mlp


class TestSigmoidLUT:
    def test_has_16_segments(self):
        lut = SigmoidLUT.build()
        assert lut.segments == SIGMOID_SEGMENTS == 16

    def test_interpolation_error_small(self):
        # 16 uniform segments over [-8, 8]: worst-case interpolation
        # error ~0.012 (3 LSB at 8 bits) — small against the trained
        # network's decision margins (see the accuracy tests below).
        assert SigmoidLUT.build().max_error() < 0.012

    def test_exact_at_segment_edges(self):
        lut = SigmoidLUT.build()
        edges = np.linspace(lut.x_min, lut.x_max, lut.segments + 1)
        assert np.allclose(lut.evaluate(edges), sigmoid(edges), atol=1e-12)

    def test_saturates_outside_range(self):
        lut = SigmoidLUT.build()
        assert lut.evaluate(np.array([-50.0]))[0] == 0.0
        assert lut.evaluate(np.array([50.0]))[0] == 1.0

    def test_monotone(self):
        lut = SigmoidLUT.build()
        xs = np.linspace(-10, 10, 400)
        assert np.all(np.diff(lut.evaluate(xs)) >= 0)

    def test_slope_parameter_respected(self):
        lut = SigmoidLUT.build(slope=8.0)
        assert lut.evaluate(np.array([0.5]))[0] == pytest.approx(
            sigmoid(np.array([0.5]), 8.0)[0], abs=0.02
        )

    def test_too_few_segments_rejected(self):
        with pytest.raises(ConfigError):
            SigmoidLUT.build(segments=1)


class TestQuantizedMLP:
    def test_codes_within_8bit_range(self, trained_mlp):
        quantized = QuantizedMLP(trained_mlp)
        assert quantized.w_hidden_codes.max() <= 127
        assert quantized.w_hidden_codes.min() >= -128

    def test_output_codes_unsigned_8bit(self, trained_mlp, digits_small):
        _, test_set = digits_small
        quantized = QuantizedMLP(trained_mlp)
        codes = quantized.forward_codes(test_set.normalized()[:8])
        assert codes.min() >= 0 and codes.max() <= 255

    def test_accuracy_close_to_float(self, trained_mlp, digits_small):
        # Section 4.2.1: 8-bit inference loses ~1% (96.65 vs 97.65).
        _, test_set = digits_small
        float_acc = evaluate_mlp(trained_mlp, test_set).accuracy
        quantized = QuantizedMLP(trained_mlp)
        q_acc = float(
            np.mean(quantized.predict_dataset(test_set) == test_set.labels)
        )
        assert q_acc >= float_acc - 0.08

    def test_agrees_with_float_on_most_samples(self, trained_mlp, digits_small):
        _, test_set = digits_small
        quantized = QuantizedMLP(trained_mlp)
        agreement = np.mean(
            quantized.predict_dataset(test_set)
            == trained_mlp.predict_dataset(test_set)
        )
        assert agreement > 0.85

    def test_wrong_input_size_rejected(self, trained_mlp):
        quantized = QuantizedMLP(trained_mlp)
        with pytest.raises(ConfigError):
            quantized.forward_codes(np.zeros((1, 99)))

    def test_deterministic(self, trained_mlp, digits_small):
        _, test_set = digits_small
        quantized = QuantizedMLP(trained_mlp)
        a = quantized.predict_dataset(test_set)
        b = quantized.predict_dataset(test_set)
        assert np.array_equal(a, b)
