"""Circuit breaker state machine: trips, cooldown, half-open probes.

Driven entirely by a fake clock, so every transition is deterministic
and instant — no sleeps anywhere.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ServingError
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, BreakerPolicy, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(**overrides) -> tuple:
    clock = FakeClock()
    policy = BreakerPolicy(
        error_threshold=0.5,
        window=8,
        min_volume=4,
        reset_timeout=5.0,
        half_open_max=2,
        half_open_successes=2,
        **overrides,
    )
    return CircuitBreaker(policy, name="m", clock=clock), clock


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"error_threshold": 0.0},
            {"error_threshold": 1.5},
            {"latency_threshold_ms": 0.0},
            {"window": 0},
            {"min_volume": 0},
            {"reset_timeout": -1.0},
            {"half_open_max": 0},
            {"half_open_successes": 0},
        ],
    )
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ServingError):
            BreakerPolicy(**kwargs).validate()

    def test_stock_policy_is_valid(self):
        assert BreakerPolicy().validate().error_threshold == 0.5


class TestClosedState:
    def test_starts_closed_and_admits(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_no_trip_below_min_volume(self):
        breaker, _ = make_breaker()
        for _ in range(3):  # min_volume is 4
            breaker.record_failure()
        assert breaker.state == CLOSED

    def test_error_rate_trip(self):
        breaker, _ = make_breaker()
        for _ in range(2):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        # 2/4 = 0.5 >= threshold: open.
        assert breaker.state == OPEN
        assert not breaker.allow()
        snapshot = breaker.snapshot()
        assert snapshot["trips"] == 1
        assert snapshot["rejections"] >= 1
        assert "error rate" in snapshot["transitions"][0]["reason"]

    def test_successes_keep_it_closed(self):
        breaker, _ = make_breaker()
        for _ in range(50):
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_window_slides(self):
        """Old failures age out of the count window."""
        breaker, _ = make_breaker()
        breaker.record_failure()
        for _ in range(8):  # window is 8: the failure is displaced
            breaker.record_success()
        assert breaker.snapshot()["window_errors"] == 0
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/8 < 0.5

    def test_latency_trip(self):
        breaker, _ = make_breaker(latency_threshold_ms=100.0)
        for _ in range(4):
            breaker.record_success(latency_seconds=0.2)  # 200ms each
        assert breaker.state == OPEN
        reason = breaker.snapshot()["transitions"][0]["reason"]
        assert "latency" in reason

    def test_latency_trigger_disabled_by_default(self):
        breaker, _ = make_breaker()
        for _ in range(20):
            breaker.record_success(latency_seconds=10.0)
        assert breaker.state == CLOSED


class TestOpenAndHalfOpen:
    def _trip(self, breaker):
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN

    def test_open_rejects_until_reset_timeout(self):
        breaker, clock = make_breaker()
        self._trip(breaker)
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)  # past reset_timeout=5.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # first probe admitted

    def test_half_open_caps_probes(self):
        breaker, clock = make_breaker()
        self._trip(breaker)
        clock.advance(5.1)
        assert breaker.allow()
        assert breaker.allow()  # half_open_max = 2
        assert not breaker.allow()  # third probe rejected

    def test_probe_successes_close(self):
        breaker, clock = make_breaker()
        self._trip(breaker)
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # needs 2 consecutive
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        # Window was cleared: the old failures cannot re-trip it.
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = make_breaker()
        self._trip(breaker)
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.snapshot()["trips"] == 2
        clock.advance(4.0)  # cooldown restarted: not yet half-open
        assert breaker.state == OPEN
        clock.advance(1.5)
        assert breaker.state == HALF_OPEN

    def test_cancel_releases_probe_slot(self):
        """A shed request must hand its probe slot back."""
        breaker, clock = make_breaker()
        self._trip(breaker)
        clock.advance(5.1)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()
        breaker.cancel()  # one probe shed before reaching the model
        assert breaker.allow()  # slot is available again

    def test_force_open_and_close(self):
        breaker, _ = make_breaker()
        breaker.force_open("kill switch")
        assert breaker.state == OPEN
        assert not breaker.allow()
        breaker.force_close("operator")
        assert breaker.state == CLOSED
        assert breaker.allow()


class TestSnapshot:
    def test_snapshot_shape(self):
        breaker, _ = make_breaker()
        breaker.record_success(0.001)
        breaker.record_failure(0.002)
        snapshot = breaker.snapshot()
        assert snapshot["state"] == CLOSED
        assert snapshot["window_size"] == 2
        assert snapshot["window_errors"] == 1
        assert snapshot["window_error_rate"] == 0.5
        assert snapshot["transitions"] == []

    def test_transitions_recorded_in_order(self):
        breaker, clock = make_breaker()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.allow()
        breaker.record_success()
        states = [
            (t["from"], t["to"]) for t in breaker.snapshot()["transitions"]
        ]
        assert states == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]
