"""InferenceServer: routing, bit-identity, warmup, overload behavior.

The load-bearing assertion lives here: a *served* prediction equals
the corresponding direct ``predict`` / ``predict_batch`` call for the
same dataset index, no matter how requests were coalesced or how many
clients raced — the invariant that makes dynamic batching safe for a
stochastic model.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.errors import Overloaded, ServingError
from repro.mlp.quantized import QuantizedMLP
from repro.serve.batcher import BatchPolicy
from repro.serve.engine import (
    ArrayRunner,
    InferenceServer,
    ModelRunner,
    SNNwtRunner,
    build_runners,
)
from repro.snn.batched import predict_batch
from repro.snn.network import SpikingNetwork
from repro.snn.snn_wot import SNNWithoutTime


@pytest.fixture(scope="module")
def served_models(trained_snn, trained_mlp):
    return {
        "snnwt": trained_snn,
        "snnwot": SNNWithoutTime(trained_snn),
        "mlp": trained_mlp,
        "mlp-q": QuantizedMLP(trained_mlp),
    }


@pytest.fixture(scope="module")
def references(served_models, digits_small):
    """Direct whole-test-set predictions per model (the oracles)."""
    _, test_set = digits_small
    return {
        "snnwt": predict_batch(served_models["snnwt"], test_set.images),
        "snnwot": np.asarray(served_models["snnwot"].predict(test_set.images)),
        "mlp": np.asarray(served_models["mlp"].predict_images(test_set.images)),
        "mlp-q": np.asarray(served_models["mlp-q"].predict_images(test_set.images)),
    }


@pytest.fixture()
def server(served_models, digits_small):
    _, test_set = digits_small
    instance = InferenceServer.from_models(
        served_models,
        policy=BatchPolicy(max_batch=8, max_wait_us=2000.0),
        images=test_set.images,
    )
    yield instance
    instance.close()


class TestConstruction:
    def test_requires_exactly_one_backend(self):
        with pytest.raises(ServingError):
            InferenceServer()  # neither runners nor pool

    def test_requires_at_least_one_model(self):
        with pytest.raises(ServingError):
            InferenceServer(runners={})

    def test_build_runners_dispatch(self, served_models):
        from repro.serve.engine import PlanRunner

        # The default engine compiles every kind onto the IR...
        runners = build_runners(served_models)
        for name in served_models:
            assert isinstance(runners[name], PlanRunner)
        # ...and the legacy escape hatch keeps the pre-IR dispatch.
        legacy = build_runners(served_models, engine="legacy")
        assert isinstance(legacy["snnwt"], SNNwtRunner)
        for name in ("snnwot", "mlp", "mlp-q"):
            assert isinstance(legacy[name], ArrayRunner)

    def test_build_runners_rejects_modelless_object(self):
        with pytest.raises(ServingError):
            build_runners({"bogus": object()})

    def test_snnwt_runner_rejects_unlabeled_network(self, snn_config_small):
        with pytest.raises(ServingError):
            SNNwtRunner(SpikingNetwork(snn_config_small))


class TestBitIdentity:
    def test_served_equals_direct_for_every_model(
        self, server, references, digits_small
    ):
        _, test_set = digits_small
        indices = list(range(0, len(test_set.images), 3))
        for name, reference in references.items():
            served = server.predict_many(name, indices=indices)
            np.testing.assert_array_equal(served, reference[indices])

    def test_concurrent_clients_get_batch_independent_answers(
        self, server, references, digits_small
    ):
        """Many racing clients => arbitrary batch compositions; every
        answer must still equal the whole-set reference at its index."""
        _, test_set = digits_small
        n = len(test_set.images)
        observed = []
        lock = threading.Lock()

        def client(client_seed: int) -> None:
            rng = np.random.default_rng(client_seed)
            for _ in range(25):
                index = int(rng.integers(n))
                label = server.predict("snnwt", index=index)
                with lock:
                    observed.append((index, label))

        threads = [
            threading.Thread(target=client, args=(seed,)) for seed in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(observed) == 75
        reference = references["snnwt"]
        for index, label in observed:
            assert label == reference[index]

    def test_image_payload_and_index_payload_agree(
        self, server, references, digits_small
    ):
        """Submitting the raw image row (with its index) matches the
        index-only path against the attached table."""
        _, test_set = digits_small
        for index in (0, 17, 42):
            by_index = server.predict("mlp", index=index)
            by_image = server.predict(
                "mlp", image=test_set.images[index], index=index
            )
            assert by_index == by_image == references["mlp"][index]


class TestRouting:
    def test_unknown_model_raises(self, server):
        with pytest.raises(ServingError):
            server.submit("resnet", index=0)

    def test_index_out_of_table_raises(self, server, digits_small):
        _, test_set = digits_small
        with pytest.raises(ServingError):
            server.submit("mlp", index=len(test_set.images))

    def test_index_only_without_table_raises(self, served_models):
        instance = InferenceServer.from_models({"mlp": served_models["mlp"]})
        try:
            with pytest.raises(ServingError):
                instance.submit("mlp", index=3)
        finally:
            instance.close()

    def test_predict_many_needs_images_or_indices(self, server):
        with pytest.raises(ServingError):
            server.predict_many("mlp")

    def test_models_property_sorted(self, server):
        assert server.models == sorted(["snnwt", "snnwot", "mlp", "mlp-q"])


class TestWarmup:
    def test_warm_precodes_snnwt_cache_once(self, served_models, digits_small):
        _, test_set = digits_small
        instance = InferenceServer.from_models(
            served_models, images=test_set.images
        )
        try:
            added = instance.warm(model="snnwt")
            assert added == len(test_set.images)
            assert instance.warm(model="snnwt") == 0  # already cached
            assert instance.warm(model="mlp") == 0  # deterministic: no cache
        finally:
            instance.close()

    def test_warm_unknown_model_raises(self, server):
        with pytest.raises(ServingError):
            server.warm(model="resnet")


class TestStatsAndOverload:
    def test_stats_shape(self, server):
        server.predict("mlp", index=1)
        stats = server.stats()
        assert set(stats["models"]) == set(server.models)
        entry = stats["models"]["mlp"]
        assert entry["model"] == "mlp"
        assert entry["completed"] >= 1

    def test_overload_returns_overloaded_instead_of_hanging(self):
        """A saturated queue sheds immediately with Overloaded; the
        admitted requests still complete."""

        class SlowRunner(ModelRunner):
            def run(self, indices, images):
                time.sleep(0.05)
                return np.zeros(len(indices), dtype=np.int64)

        instance = InferenceServer(
            runners={"slow": SlowRunner()},
            policy=BatchPolicy(max_batch=1, max_wait_us=0.0, max_queue=2),
        )
        try:
            row = np.zeros(4)
            admitted = []
            sheds = 0
            start = time.perf_counter()
            for _ in range(40):
                try:
                    admitted.append(instance.submit("slow", image=row))
                except Overloaded:
                    sheds += 1
            elapsed = time.perf_counter() - start
            assert sheds > 0
            # Shedding is immediate — the submit loop never blocked on
            # the slow engine (40 * 50ms would be 2s).
            assert elapsed < 1.0
            for future in admitted:
                assert future.result(timeout=30.0) == 0
            assert instance.metrics["slow"].shed == sheds
        finally:
            instance.close()

    def test_submit_after_close_raises(self, served_models, digits_small):
        _, test_set = digits_small
        instance = InferenceServer.from_models(
            served_models, images=test_set.images
        )
        instance.close()
        with pytest.raises(ServingError):
            instance.submit("mlp", index=0)
