"""ServingMetrics snapshots, latency summaries, stats IO and rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.metrics import (
    ServingMetrics,
    dump_stats,
    latency_summary_ms,
    load_stats,
    render_stats,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestSnapshot:
    def test_counters_and_occupancy(self):
        clock = FakeClock()
        metrics = ServingMetrics(max_batch=4, clock=clock)
        for depth in (0, 1, 2, 3):
            metrics.record_submit(depth)
        clock.now = 102.0
        metrics.record_batch([0.010, 0.012, 0.008])  # one batch of 3
        metrics.record_batch([0.005])  # one batch of 1
        metrics.record_shed()
        metrics.record_failed(2)
        snap = metrics.snapshot()
        assert snap["submitted"] == 4
        assert snap["completed"] == 4
        assert snap["shed"] == 1
        assert snap["failed"] == 2
        assert snap["batches"] == 2
        assert snap["batch_size_histogram"] == {"1": 1, "3": 1}
        assert snap["mean_batch_size"] == 2.0
        # 4 requests over 2 batches of capacity 4 -> 4 / 8
        assert snap["batch_occupancy"] == 0.5
        assert snap["queue_depth_peak"] == 3
        assert snap["queue_depth_mean"] == 1.5
        assert snap["window_seconds"] == pytest.approx(2.0)
        assert snap["requests_per_second"] == pytest.approx(2.0)
        assert snap["latency_ms"]["count"] == 4
        assert snap["latency_ms"]["max"] == pytest.approx(12.0)

    def test_reset_clears_everything(self):
        metrics = ServingMetrics(max_batch=2)
        metrics.record_submit(0)
        metrics.record_batch([0.001])
        metrics.reset()
        snap = metrics.snapshot()
        assert snap["submitted"] == 0
        assert snap["completed"] == 0
        assert snap["latency_ms"] == {"count": 0}
        assert snap["requests_per_second"] == 0.0

    def test_snapshot_is_json_serializable(self):
        import json

        metrics = ServingMetrics(max_batch=2)
        metrics.record_submit(0)
        metrics.record_batch([0.002, 0.003])
        json.dumps(metrics.snapshot())


class TestLatencySummary:
    def test_empty_sample(self):
        assert latency_summary_ms(np.array([])) == {"count": 0}

    def test_percentiles_in_milliseconds(self):
        sample = np.linspace(0.001, 0.1, 100)  # 1ms .. 100ms
        summary = latency_summary_ms(sample)
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(50.5, abs=1.0)
        assert summary["p99"] == pytest.approx(99.0, abs=1.5)
        assert summary["max"] == pytest.approx(100.0)
        assert summary["mean"] == pytest.approx(50.5, abs=0.5)


class TestStatsIO:
    def test_dump_load_round_trip(self, tmp_path):
        payload = {"models": {"snnwt": {"model": "snnwt", "completed": 7}}}
        path = tmp_path / "stats.json"
        dump_stats(payload, path)
        assert load_stats(path) == payload

    def test_render_loadtest_payload(self):
        metrics = ServingMetrics(max_batch=16)
        metrics.record_submit(0)
        metrics.record_batch([0.004])
        payload = {
            "loadtest": {"mode": "closed", "duration_seconds": 5.0, "concurrency": 8},
            "models": {"snnwt": {"model": "snnwt", **metrics.snapshot()}},
        }
        text = render_stats(payload)
        assert "loadtest: mode=closed" in text
        assert "model snnwt (max_batch=16):" in text
        assert "requests:" in text and "latency:" in text

    def test_render_single_snapshot(self):
        metrics = ServingMetrics(max_batch=4)
        metrics.record_submit(0)
        metrics.record_batch([0.002])
        text = render_stats({"model": "mlp", **metrics.snapshot()})
        assert "model mlp" in text

    def test_render_unknown_shape_falls_back_to_json(self):
        text = render_stats({"something": "else"})
        assert '"something"' in text


class TestReliabilityCounters:
    def test_deadline_and_breaker_counters_snapshot(self):
        metrics = ServingMetrics(max_batch=4)
        metrics.record_deadline_shed()
        metrics.record_deadline_shed(2)
        metrics.record_breaker_rejection()
        snapshot = metrics.snapshot()
        assert snapshot["deadline_shed"] == 3
        assert snapshot["breaker_rejections"] == 1
        metrics.reset()
        snapshot = metrics.snapshot()
        assert snapshot["deadline_shed"] == 0
        assert snapshot["breaker_rejections"] == 0


class TestRenderReliability:
    def _payload(self):
        return {
            "loadtest": {"mode": "chaos", "dataset": "digits"},
            "models": {
                "mlp": {
                    "model": "mlp",
                    "submitted": 10,
                    "completed": 8,
                    "deadline_shed": 2,
                    "breaker_rejections": 1,
                    "breaker": {"state": "open", "trips": 1, "rejections": 1},
                }
            },
            "pool": {
                "alive_shards": [0, 1],
                "jobs": 2,
                "respawns": 1,
                "wedge_kills": 1,
                "requeues": 3,
                "duplicate_completions": 1,
                "quarantined": 1,
                "quarantine_rejections": 2,
                "deadline_shed": 1,
                "supervisor": {
                    "respawns": 1,
                    "crash_loop_trips": 0,
                    "slots": {"0": {"breaker": "closed", "respawns": 1}},
                },
            },
            "chaos": {
                "scenario": "smoke",
                "seed": 0,
                "outcomes": {"ok": 8, "DeadlineExceeded": 2},
                "lost": 0,
                "duplicates": 0,
                "bit_mismatches": 0,
            },
        }

    def test_render_stats_shows_every_reliability_section(self):
        text = render_stats(self._payload())
        assert "reliability: 2 deadline shed, 1 breaker rejections" in text
        assert "breaker:   state open, 1 trip(s), 1 rejection(s)" in text
        assert "2 alive of 2" in text
        assert "3 requeued" in text
        assert "supervisor: 1 respawn(s), 0 crash-loop trip(s)" in text
        assert "scenario:  smoke (seed 0)" in text
        assert "DeadlineExceeded=2" in text
        assert "lost 0, duplicates 0, bit mismatches 0" in text


class TestRenderHealth:
    def _health(self, ready=True, state="closed"):
        return {
            "ready": ready,
            "live": True,
            "models": {
                "mlp": {
                    "breaker": {"state": state, "trips": 0},
                    "queue_depth": 0,
                }
            },
            "pool": {"alive_shards": [0, 1], "jobs": 2},
        }

    def test_ready_payload_renders(self):
        from repro.serve.metrics import render_health

        text = render_health(self._health())
        assert "ready: yes" in text
        assert "model mlp: breaker closed (0 trip(s))" in text
        assert "pool: 2 of 2 shard(s) alive" in text

    def test_not_ready_is_loud(self):
        from repro.serve.metrics import render_health

        text = render_health(self._health(ready=False, state="open"))
        assert "ready: NO" in text
        assert "breaker open" in text

    def test_accepts_wrapped_stats_payload(self):
        from repro.serve.metrics import render_health

        text = render_health({"health": self._health()})
        assert "ready: yes" in text

    def test_unknown_shape_falls_back_to_json(self):
        from repro.serve.metrics import render_health

        text = render_health({"something": "else"})
        assert '"something"' in text
