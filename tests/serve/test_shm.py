"""SharedArrayBundle: zero-copy publish / attach round trips."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.errors import IntegrityError, ServingError
from repro.serve.shm import SharedArrayBundle, array_digest


@pytest.fixture()
def arrays(rng):
    return {
        "weights": rng.normal(size=(40, 144)),
        "thresholds": rng.uniform(1, 30, size=40).astype(np.float32),
        "labels": rng.integers(0, 10, size=40).astype(np.int64),
        "images": rng.integers(0, 256, size=(12, 144)).astype(np.uint8),
    }


class TestRoundTrip:
    def test_create_then_attach_is_bit_identical(self, arrays):
        with SharedArrayBundle.create(arrays) as bundle:
            attached = SharedArrayBundle.attach(*bundle.spec(), untrack=False)
            try:
                for name, source in arrays.items():
                    view = attached[name]
                    assert view.dtype == source.dtype
                    assert view.shape == source.shape
                    np.testing.assert_array_equal(view, source)
            finally:
                attached.close()

    def test_views_are_read_only(self, arrays):
        with SharedArrayBundle.create(arrays) as bundle:
            # Creator views freeze after the copy-in...
            with pytest.raises(ValueError):
                bundle["weights"][0, 0] = 1.0
            # ...and attacher views are born read-only.
            attached = SharedArrayBundle.attach(*bundle.spec(), untrack=False)
            try:
                with pytest.raises(ValueError):
                    attached["labels"][0] = 99
            finally:
                attached.close()

    def test_views_share_one_segment_zero_copy(self, arrays):
        """All views alias the segment buffer — no private copies."""
        with SharedArrayBundle.create(arrays) as bundle:
            total = sum(np.ascontiguousarray(a).nbytes for a in arrays.values())
            assert bundle.nbytes() >= total
            for view in bundle.arrays.values():
                assert not view.flags.owndata

    def test_offsets_are_cache_line_aligned(self, arrays):
        with SharedArrayBundle.create(arrays) as bundle:
            for offset, _shape, _dtype in bundle.layout.values():
                assert offset % 64 == 0

    def test_spec_is_small_and_picklable(self, arrays):
        with SharedArrayBundle.create(arrays) as bundle:
            blob = pickle.dumps(bundle.spec())
            # The spec must stay tiny: it crosses the process boundary
            # on every worker spawn.
            assert len(blob) < 4096
            name, layout, digests = pickle.loads(blob)
            assert name == bundle.name
            assert layout == bundle.layout
            assert digests == bundle.digests


class TestIntegrity:
    def test_create_records_a_digest_per_array(self, arrays):
        with SharedArrayBundle.create(arrays) as bundle:
            assert set(bundle.digests) == set(arrays)
            for key, source in arrays.items():
                assert bundle.digests[key] == array_digest(source)

    def test_verify_clean_returns_empty(self, arrays):
        with SharedArrayBundle.create(arrays) as bundle:
            assert bundle.verify() == []
            assert bundle.verify(keys=["weights"]) == []

    def test_verify_detects_a_single_bit_flip(self, arrays):
        with SharedArrayBundle.create(arrays) as bundle:
            raw = bundle._writable("weights").view(np.uint8).reshape(-1)
            raw[7] ^= 0x10
            assert bundle.verify() == ["weights"]
            assert bundle.verify(keys=["labels"]) == []
            raw[7] ^= 0x10  # flip back: segment is clean again
            assert bundle.verify() == []

    def test_attach_refuses_a_corrupt_segment(self, arrays):
        with SharedArrayBundle.create(arrays) as bundle:
            bundle._writable("thresholds").view(np.uint8).reshape(-1)[0] ^= 0x01
            with pytest.raises(IntegrityError):
                SharedArrayBundle.attach(*bundle.spec(), untrack=False)

    def test_attach_without_digests_skips_verification(self, arrays):
        """Legacy two-part specs still attach (unverified)."""
        with SharedArrayBundle.create(arrays) as bundle:
            bundle._writable("thresholds").view(np.uint8).reshape(-1)[0] ^= 0x01
            attached = SharedArrayBundle.attach(
                bundle.name, bundle.layout, untrack=False
            )
            try:
                assert attached.verify() == []  # no digests -> nothing to check
            finally:
                attached.close()

    def test_restore_repairs_corruption_in_place(self, arrays):
        with SharedArrayBundle.create(arrays) as bundle:
            pristine = np.array(bundle["weights"])
            bundle._writable("weights").view(np.uint8).reshape(-1)[3] ^= 0x80
            assert bundle.verify() == ["weights"]
            bundle.restore("weights", pristine)
            assert bundle.verify() == []
            np.testing.assert_array_equal(bundle["weights"], pristine)

    def test_restore_refuses_unverified_bytes(self, arrays):
        with SharedArrayBundle.create(arrays) as bundle:
            bogus = np.array(bundle["weights"])
            bogus[0, 0] += 1.0
            with pytest.raises(IntegrityError):
                bundle.restore("weights", bogus)
            # The refusal must not have touched the segment.
            assert bundle.verify() == []

    def test_corruption_visible_through_attached_views(self, arrays):
        """A flip in the creator's segment is seen by every attacher."""
        with SharedArrayBundle.create(arrays) as bundle:
            attached = SharedArrayBundle.attach(*bundle.spec(), untrack=False)
            try:
                bundle._writable("labels").view(np.uint8).reshape(-1)[0] ^= 0x02
                assert attached.verify() == ["labels"]
            finally:
                attached.close()


class TestLifecycle:
    def test_attach_unknown_segment_raises(self):
        with pytest.raises(ServingError):
            SharedArrayBundle.attach("repro-no-such-segment", {}, untrack=False)

    def test_close_is_idempotent(self, arrays):
        bundle = SharedArrayBundle.create(arrays)
        bundle.close()
        bundle.close()  # second close is a no-op, not an error
        assert bundle.arrays == {}

    def test_owner_unlink_invalidates_future_attaches(self, arrays):
        bundle = SharedArrayBundle.create(arrays)
        spec = bundle.spec()
        bundle.close()  # owner default: unlink
        with pytest.raises(ServingError):
            SharedArrayBundle.attach(*spec, untrack=False)

    def test_membership_and_getitem(self, arrays):
        with SharedArrayBundle.create(arrays) as bundle:
            assert "weights" in bundle
            assert "nope" not in bundle
            with pytest.raises(KeyError):
                bundle["nope"]
