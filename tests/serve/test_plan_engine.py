"""Plan-engine serving: compiled plans behind server and pool.

The acceptance surface of the PR 8 default engine:

* ``build_runners(engine="plan")`` serves every compilable model from
  its :class:`~repro.ir.ops.CompiledPlan`, bit-identically to the
  legacy runners;
* models that refuse to compile (live fault injectors) fall back to
  their legacy runner per model, so a partially-faulted fleet serves;
* the sharded pool ships plan skeletons + consts (+ encoded spike
  trains) through shared memory, serves bit-identically on both
  engines, and hot-swaps plan specs;
* stats surface the engine routing (``engines``, ``engine``,
  ``plan_cache``, ``spawn_ready_seconds``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ServingError
from repro.mlp.quantized import QuantizedMLP
from repro.serve.engine import (
    ArrayRunner,
    InferenceServer,
    PlanRunner,
    SNNwtRunner,
    build_runners,
)
from repro.serve.workers import ShardedPool
from repro.snn.batched import predict_batch
from repro.snn.network import SNNTrainer


def _faulted_clone(network):
    """A timed SNN whose live injector refuses IR compilation."""

    class _Injector:
        null = False

    clone = type(network).__new__(type(network))
    clone.__dict__.update(network.__dict__)
    clone.fault_injector = _Injector()
    return clone


class TestBuildRunners:
    def test_plan_engine_serves_compiled_plans(
        self, trained_mlp, trained_snn
    ):
        runners = build_runners(
            {"mlp": trained_mlp, "snnwt": trained_snn}, seed=7
        )
        assert isinstance(runners["mlp"], PlanRunner)
        assert isinstance(runners["snnwt"], PlanRunner)
        assert runners["snnwt"].plan.meta["seed"] == 7

    def test_legacy_engine_is_the_escape_hatch(
        self, trained_mlp, trained_snn
    ):
        runners = build_runners(
            {"mlp": trained_mlp, "snnwt": trained_snn}, engine="legacy"
        )
        assert isinstance(runners["mlp"], ArrayRunner)
        assert isinstance(runners["snnwt"], SNNwtRunner)

    def test_uncompilable_model_falls_back_per_model(
        self, trained_mlp, trained_snn
    ):
        runners = build_runners(
            {"mlp": trained_mlp, "snnwt": _faulted_clone(trained_snn)}
        )
        assert isinstance(runners["mlp"], PlanRunner)
        assert isinstance(runners["snnwt"], SNNwtRunner)

    def test_unknown_engine_rejected(self, trained_mlp):
        with pytest.raises(ServingError):
            build_runners({"mlp": trained_mlp}, engine="turbo")


class TestServerBitIdentity:
    def test_both_engines_answer_identically(
        self, trained_mlp, trained_snn, digits_small
    ):
        _, test_set = digits_small
        images = np.asarray(test_set.images)
        models = {
            "mlp": trained_mlp,
            "mlp-q": QuantizedMLP(trained_mlp),
            "snnwt": trained_snn,
        }
        indices = list(range(0, len(images), 7))
        answers = {}
        for engine in ("plan", "legacy"):
            server = InferenceServer.from_models(
                models, images=images, engine=engine
            )
            try:
                answers[engine] = {
                    name: server.predict_many(name, indices=indices)
                    for name in models
                }
                stats = server.stats()
            finally:
                server.close()
            assert set(stats["plan_cache"]) == {
                "plan_hits", "plan_misses", "plan_compiles",
                "trains_hits", "trains_misses",
            }
            assert stats["engines"] == {name: engine for name in models}
        for name in models:
            np.testing.assert_array_equal(
                answers["plan"][name], answers["legacy"][name]
            )

    def test_plan_engine_matches_direct_predictions(
        self, trained_snn, digits_small
    ):
        _, test_set = digits_small
        images = np.asarray(test_set.images)
        indices = list(range(0, len(images), 9))
        server = InferenceServer.from_models(
            {"snnwt": trained_snn}, images=images
        )
        try:
            got = server.predict_many("snnwt", indices=indices)
        finally:
            server.close()
        expected = predict_batch(
            trained_snn, images[indices], indices=indices
        )
        np.testing.assert_array_equal(got, expected)


class TestPoolPlanEngine:
    def test_plan_pool_is_bit_identical_and_faster_to_spawn(
        self, trained_snn, trained_mlp, digits_small
    ):
        _, test_set = digits_small
        images = np.asarray(test_set.images)
        reference_snn = predict_batch(trained_snn, images)
        reference_mlp = np.asarray(trained_mlp.predict_images(images))
        indices = list(range(0, len(images), 5))
        for engine in ("plan", "legacy"):
            with ShardedPool(
                {"snnwt": trained_snn, "mlp": trained_mlp},
                jobs=2,
                images=images,
                engine=engine,
            ) as pool:
                got_snn = pool.run_batch("snnwt", indices, None)
                got_mlp = pool.run_batch("mlp", indices, None)
                stats = pool.stats()
            np.testing.assert_array_equal(got_snn, reference_snn[indices])
            np.testing.assert_array_equal(got_mlp, reference_mlp[indices])
            assert stats["engine"] == engine
            spawn = stats["spawn_ready_seconds"]
            assert spawn["count"] >= 2
            assert spawn["mean"] > 0.0

    def test_unknown_engine_rejected(self, trained_mlp):
        with pytest.raises(ServingError):
            ShardedPool({"mlp": trained_mlp}, jobs=1, engine="turbo")

    def test_faulted_model_falls_back_to_legacy_spec(
        self, trained_snn, digits_small
    ):
        _, test_set = digits_small
        images = np.asarray(test_set.images)
        faulted = _faulted_clone(trained_snn)
        with ShardedPool(
            {"snnwt": faulted}, jobs=1, images=images, engine="plan"
        ) as pool:
            spec = pool._specs["snnwt"]
            assert spec["kind"] == "snnwt"  # legacy publish, not "plan"
            got = pool.run_batch("snnwt", [0, 3, 6], None)
        expected = predict_batch(
            trained_snn, images[[0, 3, 6]], indices=[0, 3, 6]
        )
        np.testing.assert_array_equal(got, expected)

    def test_hot_swap_ships_plan_specs(self, trained_snn, digits_small):
        train_set, test_set = digits_small
        images = np.asarray(test_set.images)
        reference = predict_batch(trained_snn, images)
        with ShardedPool(
            {"snnwt": trained_snn}, jobs=2, images=images
        ) as pool:
            assert pool._specs["snnwt"]["kind"] == "plan"
            before = pool.run_batch("snnwt", [0, 1, 2], None)
            np.testing.assert_array_equal(before, reference[[0, 1, 2]])
            trainer = SNNTrainer(trained_snn)
            result = pool.hot_swap({"snnwt": trainer.network})
            assert result["swapped"] == ["snnwt"]
            assert pool._specs["snnwt"]["kind"] == "plan"
            after = pool.run_batch("snnwt", [0, 1, 2], None)
            np.testing.assert_array_equal(after, reference[[0, 1, 2]])
