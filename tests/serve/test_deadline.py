"""Deadline propagation: typed sheds at submit, in queue, and in the pool.

The guarantee under test: a request whose deadline cannot be met is
*shed* with :class:`DeadlineExceeded` — a typed error on its future —
never silently dropped, and never allowed to consume engine or shard
work it provably cannot finish in time.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.errors import DeadlineExceeded, ServingError
from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.engine import InferenceServer, ModelRunner


class EchoRunner(ModelRunner):
    """Returns each request's index; optional fixed service delay."""

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.calls = 0

    def run(self, indices, images):
        self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return np.asarray(list(indices))


class TestBatcherDeadlines:
    def test_expired_at_submit_is_shed_immediately(self):
        with MicroBatcher(lambda batch: batch) as batcher:
            with pytest.raises(DeadlineExceeded):
                batcher.submit("x", deadline=time.perf_counter() - 0.01)
            assert batcher.metrics.deadline_shed == 1
            assert batcher.metrics.submitted == 0  # never enqueued

    def test_expired_while_queued_fails_future_with_typed_error(self):
        release = threading.Event()

        def slow_batch(batch):
            release.wait(5.0)
            return batch

        batcher = MicroBatcher(
            slow_batch, BatchPolicy(max_batch=1, max_wait_us=0.0)
        )
        try:
            # First request occupies the scheduler thread...
            blocker = batcher.submit("a")
            time.sleep(0.05)  # let the scheduler pick it up
            # ...second request's deadline expires while it waits.
            doomed = batcher.submit(
                "b", deadline=time.perf_counter() + 0.05
            )
            time.sleep(0.15)
            release.set()
            assert blocker.result(5.0) == "a"
            with pytest.raises(DeadlineExceeded, match="shed unexecuted"):
                doomed.result(5.0)
            assert batcher.metrics.deadline_shed == 1
        finally:
            batcher.close()

    def test_ewma_predicts_cant_make_deadline(self):
        """A request whose deadline is inside the EWMA service estimate
        is shed at batch formation instead of running doomed."""
        service = 0.08

        def slow_batch(batch):
            time.sleep(service)
            return batch

        batcher = MicroBatcher(
            slow_batch, BatchPolicy(max_batch=1, max_wait_us=0.0)
        )
        try:
            # Warm the service-time estimate.
            assert batcher.submit("warm").result(5.0) == "warm"
            assert batcher.service_estimate() > 0.05
            # Deadline further out than "now" but inside the estimate;
            # queue a blocker first so the doomed request waits.
            blocker = batcher.submit("a")
            doomed = batcher.submit(
                "b", deadline=time.perf_counter() + 0.02
            )
            assert blocker.result(5.0) == "a"
            with pytest.raises(DeadlineExceeded):
                doomed.result(5.0)
        finally:
            batcher.close()

    def test_no_deadline_requests_are_untouched(self):
        with MicroBatcher(lambda batch: batch) as batcher:
            assert batcher.submit("x").result(5.0) == "x"
            assert batcher.metrics.deadline_shed == 0


class TestServerDeadlines:
    def _server(self, delay: float = 0.0, **policy):
        runner = EchoRunner(delay=delay)
        server = InferenceServer(
            runners={"echo": runner},
            policy=BatchPolicy(**{"max_batch": 4, "max_wait_us": 0.0, **policy}),
            images=np.zeros((128, 4)),  # index-only submissions allowed
        )
        return server, runner

    def test_generous_deadline_completes(self):
        server, _ = self._server()
        try:
            assert (
                server.predict("echo", index=7, deadline_ms=5000.0) == 7
            )
        finally:
            server.close()

    def test_non_positive_deadline_rejected(self):
        server, _ = self._server()
        try:
            with pytest.raises(ServingError, match="deadline_ms"):
                server.submit("echo", index=0, deadline_ms=0.0)
        finally:
            server.close()

    def test_shed_is_counted_and_typed(self):
        server, runner = self._server(delay=0.05)
        try:
            # Saturate the scheduler, then submit a request that can't
            # make it.
            futures = [server.submit("echo", index=i) for i in range(8)]
            with pytest.raises(DeadlineExceeded):
                server.predict("echo", index=99, deadline_ms=0.0001)
            for future in futures:
                future.result(10.0)
            assert server.metrics["echo"].deadline_shed >= 1
        finally:
            server.close()

    def test_deadline_shed_does_not_feed_breaker(self):
        """Typed sheds say nothing about model health: no breaker trip."""
        server, _ = self._server(delay=0.05)
        try:
            for _ in range(12):
                try:
                    server.predict("echo", index=0, deadline_ms=0.0001)
                except DeadlineExceeded:
                    pass
            assert server.breakers["echo"].state == "closed"
            assert server.breakers["echo"].snapshot()["window_errors"] == 0
        finally:
            server.close()

    def test_successes_feed_breaker_window(self):
        server, _ = self._server()
        try:
            for index in range(5):
                server.predict("echo", index=index)
            time.sleep(0.05)  # done-callbacks run on the scheduler side
            assert server.breakers["echo"].snapshot()["window_size"] == 5
        finally:
            server.close()
