"""MicroBatcher: coalescing, positional routing, shedding, drain."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import Overloaded, ServingError
from repro.serve.batcher import BatchPolicy, MicroBatcher


class GatedRunner:
    """A run_batch that can be blocked to control coalescing in tests."""

    def __init__(self, fn=None):
        self.fn = fn or (lambda payload: payload * 2)
        self.batches = []
        self.gate = threading.Event()
        self.gate.set()
        self.entered = threading.Event()

    def __call__(self, payloads):
        self.entered.set()
        self.gate.wait(timeout=10.0)
        self.batches.append(list(payloads))
        return [self.fn(p) for p in payloads]


def _drain_entered(runner):
    runner.entered.clear()


class TestPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [{"max_batch": 0}, {"max_wait_us": -1.0}, {"max_queue": 0}],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ServingError):
            BatchPolicy(**kwargs).validate()

    def test_defaults_validate(self):
        policy = BatchPolicy().validate()
        assert policy.max_batch == 16


class TestCoalescing:
    def test_queued_requests_coalesce_into_one_batch(self):
        """Requests queued while the engine is busy run as one batch."""
        runner = GatedRunner()
        batcher = MicroBatcher(
            runner, BatchPolicy(max_batch=4, max_wait_us=50_000.0)
        )
        try:
            runner.gate.clear()
            first = batcher.submit(100)  # occupies the scheduler
            assert runner.entered.wait(timeout=5.0)
            futures = [batcher.submit(j) for j in range(4)]
            runner.gate.set()
            assert first.result(timeout=10.0) == 200
            assert [f.result(timeout=10.0) for f in futures] == [0, 2, 4, 6]
            # The four queued requests ran as one full batch.
            assert [0, 1, 2, 3] in runner.batches
        finally:
            batcher.close()

    def test_results_route_positionally(self):
        runner = GatedRunner(fn=lambda p: f"label-{p}")
        batcher = MicroBatcher(
            runner, BatchPolicy(max_batch=8, max_wait_us=10_000.0)
        )
        try:
            futures = {j: batcher.submit(j) for j in range(20)}
            for j, future in futures.items():
                assert future.result(timeout=10.0) == f"label-{j}"
        finally:
            batcher.close()

    def test_max_batch_one_never_coalesces(self):
        runner = GatedRunner()
        batcher = MicroBatcher(
            runner, BatchPolicy(max_batch=1, max_wait_us=50_000.0)
        )
        try:
            futures = [batcher.submit(j) for j in range(5)]
            for j, future in enumerate(futures):
                assert future.result(timeout=10.0) == j * 2
            assert all(len(batch) == 1 for batch in runner.batches)
        finally:
            batcher.close()

    def test_window_expiry_dispatches_partial_batch(self):
        """A lone request must not wait for max_batch peers forever."""
        runner = GatedRunner()
        batcher = MicroBatcher(
            runner, BatchPolicy(max_batch=64, max_wait_us=1000.0)
        )
        try:
            assert batcher.submit(3).result(timeout=10.0) == 6
        finally:
            batcher.close()


class TestAdmissionControl:
    def test_full_queue_sheds_with_overloaded(self):
        runner = GatedRunner()
        batcher = MicroBatcher(
            runner, BatchPolicy(max_batch=1, max_wait_us=0.0, max_queue=2)
        )
        try:
            runner.gate.clear()
            blocked = batcher.submit(0)  # in flight, queue empty again
            assert runner.entered.wait(timeout=5.0)
            queued = [batcher.submit(j) for j in (1, 2)]  # fills the queue
            with pytest.raises(Overloaded):
                batcher.submit(3)
            assert batcher.metrics.shed == 1
            runner.gate.set()
            assert blocked.result(timeout=10.0) == 0
            assert [f.result(timeout=10.0) for f in queued] == [2, 4]
        finally:
            batcher.close()

    def test_shed_request_is_not_enqueued(self):
        runner = GatedRunner()
        batcher = MicroBatcher(
            runner, BatchPolicy(max_batch=1, max_wait_us=0.0, max_queue=1)
        )
        try:
            runner.gate.clear()
            batcher.submit(0)
            assert runner.entered.wait(timeout=5.0)
            batcher.submit(1)
            with pytest.raises(Overloaded):
                batcher.submit(2)
            assert batcher.queue_depth() == 1
            runner.gate.set()
        finally:
            batcher.close()


class TestFailureRouting:
    def test_runner_exception_fails_only_that_batch(self):
        calls = {"n": 0}

        def flaky(payloads):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient engine failure")
            return [p * 2 for p in payloads]

        batcher = MicroBatcher(
            flaky, BatchPolicy(max_batch=1, max_wait_us=0.0)
        )
        try:
            first = batcher.submit(1)
            with pytest.raises(RuntimeError):
                first.result(timeout=10.0)
            assert batcher.submit(2).result(timeout=10.0) == 4
            assert batcher.metrics.failed == 1
        finally:
            batcher.close()

    def test_result_count_mismatch_is_a_serving_error(self):
        batcher = MicroBatcher(
            lambda payloads: [0] * (len(payloads) + 1),
            BatchPolicy(max_batch=1, max_wait_us=0.0),
        )
        try:
            with pytest.raises(ServingError):
                batcher.submit(1).result(timeout=10.0)
        finally:
            batcher.close()


class TestLifecycle:
    def test_drain_completes_queued_requests(self):
        runner = GatedRunner()
        batcher = MicroBatcher(
            runner, BatchPolicy(max_batch=2, max_wait_us=50_000.0)
        )
        runner.gate.clear()
        head = batcher.submit(0)
        assert runner.entered.wait(timeout=5.0)
        tail = [batcher.submit(j) for j in (1, 2, 3)]
        runner.gate.set()
        batcher.close(drain=True)
        assert head.result(timeout=0) == 0
        assert [f.result(timeout=0) for f in tail] == [2, 4, 6]

    def test_no_drain_fails_queued_requests(self):
        runner = GatedRunner()
        batcher = MicroBatcher(
            runner, BatchPolicy(max_batch=1, max_wait_us=0.0)
        )
        runner.gate.clear()
        in_flight = batcher.submit(0)
        assert runner.entered.wait(timeout=5.0)
        abandoned = [batcher.submit(j) for j in (1, 2)]
        runner.gate.set()
        batcher.close(drain=False)
        assert in_flight.result(timeout=10.0) == 0  # batch in flight finishes
        for future in abandoned:
            with pytest.raises(ServingError):
                future.result(timeout=0)

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(GatedRunner(), BatchPolicy(max_batch=1))
        batcher.close()
        with pytest.raises(ServingError):
            batcher.submit(1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(GatedRunner(), BatchPolicy(max_batch=1))
        batcher.close()
        batcher.close()


class TestMetricsWiring:
    def test_batcher_feeds_metrics(self):
        runner = GatedRunner()
        batcher = MicroBatcher(
            runner, BatchPolicy(max_batch=4, max_wait_us=10_000.0)
        )
        try:
            futures = [batcher.submit(j) for j in range(8)]
            for future in futures:
                future.result(timeout=10.0)
        finally:
            batcher.close()
        snapshot = batcher.metrics.snapshot()
        assert snapshot["submitted"] == 8
        assert snapshot["completed"] == 8
        assert snapshot["failed"] == 0
        assert snapshot["latency_ms"]["count"] == 8
        assert sum(
            int(size) * count
            for size, count in snapshot["batch_size_histogram"].items()
        ) == 8
