"""SDC defense: scrubber recovery, audit lane, unrecoverable refusal.

Process-level tests drive the whole detect->restore->roll sequence
against small real pools (chaos hooks on, seeded bit flips via
``chaos_corrupt``); the audit lane is exercised both through the
engine (seeded coin flips) and through the pool's oracle APIs
directly.  One seeded end-to-end run of the ``weight-corruption``
chaos scenario asserts the full corruption invariant set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import IntegrityError, ServingError
from repro.serve.chaos import chaos_passed, run_chaos
from repro.serve.engine import BatchPolicy, InferenceServer
from repro.serve.supervisor import SupervisorPolicy
from repro.serve.workers import ShardedPool
from tests.serve.test_supervisor import FAST, wait_until

#: Stable keys every integrity_stats() payload must carry.
INTEGRITY_KEYS = {
    "scrub_passes",
    "scrub_failures",
    "corrupt_arrays_detected",
    "restores",
    "corrupt_shard_respawns",
    "stale_results_discarded",
    "sentinel_trips",
    "audit_mismatch_reports",
    "scrub_period",
    "audit_quarantined_pairs",
    "last_corruption",
    "unrecoverable",
}


def _pool(trained_mlp, test_set, **kwargs):
    defaults = dict(
        jobs=1,
        images=test_set.images,
        warm=False,
        chaos_hooks=True,
        supervisor=SupervisorPolicy(wedge_timeout=None, **FAST),
    )
    defaults.update(kwargs)
    return ShardedPool({"mlp": trained_mlp}, **defaults)


class TestScrubRecovery:
    def test_clean_scrub_counts_a_pass(self, trained_mlp, digits_small):
        _, test_set = digits_small
        with _pool(trained_mlp, test_set, supervisor=None) as pool:
            assert pool.scrub_now() == []
            stats = pool.integrity_stats()
            assert stats["scrub_passes"] == 1
            assert stats["scrub_failures"] == 0
            assert stats["last_corruption"] is None
            assert stats["unrecoverable"] is False
            assert set(stats) == INTEGRITY_KEYS

    def test_corruption_is_detected_restored_and_rolled(
        self, trained_mlp, digits_small
    ):
        """Seeded flips -> scrub detects the exact array, restores it
        bit-identically from the pristine snapshot, and rolls the shard
        onto a fresh attach-verified worker that still serves the
        reference answers."""
        _, test_set = digits_small
        reference = trained_mlp.predict_images(test_set.images)
        with _pool(trained_mlp, test_set) as pool:
            info = pool.chaos_corrupt(seed=3, n_flips=4)
            assert info["n_flips"] == 4
            corrupt = pool.scrub_now()
            assert corrupt == [info["key"]]
            stats = pool.integrity_stats()
            assert stats["scrub_failures"] == 1
            assert stats["corrupt_arrays_detected"] == 1
            assert stats["restores"] == 1
            assert stats["last_corruption"]["arrays"] == [info["key"]]
            assert stats["last_corruption"]["recovered_at"] is not None
            assert stats["unrecoverable"] is False
            # Restored segment re-verifies clean...
            assert pool.scrub_now() == []
            # ...the slot was rolled onto a fresh worker...
            assert wait_until(
                lambda: pool.integrity_stats()["corrupt_shard_respawns"] >= 1
            )
            assert wait_until(lambda: pool.alive_shards() == [0])
            # ...and serving is bit-identical to the direct oracle.
            got = pool.run_batch("mlp", [0, 3, 9], None)
            np.testing.assert_array_equal(got, reference[[0, 3, 9]])

    def test_background_scrubber_detects_without_being_asked(
        self, trained_mlp, digits_small
    ):
        _, test_set = digits_small
        with _pool(trained_mlp, test_set, scrub_period=0.1) as pool:
            assert pool.scrub_period == 0.1
            pool.chaos_corrupt(seed=11, n_flips=2)
            assert wait_until(
                lambda: pool.integrity_stats()["scrub_failures"] >= 1
            )
            assert wait_until(
                lambda: pool.integrity_stats()["restores"] >= 1
            )
            assert pool._bundle.verify() == []

    def test_supervisor_counts_corrupt_heals(self, trained_mlp, digits_small):
        _, test_set = digits_small
        with _pool(trained_mlp, test_set) as pool:
            pool.chaos_corrupt(seed=5, n_flips=2)
            pool.scrub_now()
            assert wait_until(
                lambda: pool.supervisor.snapshot()["corrupt_heals"] >= 1
            )
            # A corruption roll rides the planned-retire path: no
            # crash-loop pressure on the slot's breaker.
            snapshot = pool.supervisor.snapshot()
            assert snapshot["slots"]["0"]["breaker"] == "closed"
            assert snapshot["crash_loop_trips"] == 0


class TestUnrecoverable:
    def test_pool_refuses_when_no_verified_source_remains(
        self, trained_mlp, digits_small, monkeypatch
    ):
        """Corrupt the live segment AND poison every restore source:
        the pool must refuse with IntegrityError rather than serve
        unverifiable bytes."""
        _, test_set = digits_small
        with _pool(trained_mlp, test_set, supervisor=None) as pool:
            info = pool.chaos_corrupt(seed=7, n_flips=2)
            # Make the verified snapshot unable to cover the array.
            monkeypatch.setattr(pool, "_verified_snapshot", lambda: {})
            with pytest.raises(IntegrityError, match="no verified snapshot"):
                pool.scrub_now()
            stats = pool.integrity_stats()
            assert stats["unrecoverable"] is True
            assert stats["last_corruption"]["arrays"] == [info["key"]]
            assert stats["last_corruption"]["recovered_at"] is None
            with pytest.raises(IntegrityError, match="refusing to serve"):
                pool.run_batch("mlp", [0], None)


class TestChaosCorruptHook:
    def test_requires_chaos_hooks(self, trained_mlp, digits_small):
        _, test_set = digits_small
        with _pool(
            trained_mlp, test_set, chaos_hooks=False, supervisor=None
        ) as pool:
            with pytest.raises(ServingError, match="chaos_hooks"):
                pool.chaos_corrupt()

    def test_unknown_key_raises(self, trained_mlp, digits_small):
        _, test_set = digits_small
        with _pool(trained_mlp, test_set, supervisor=None) as pool:
            with pytest.raises(ServingError, match="unknown shared array"):
                pool.chaos_corrupt(key="mlp/no_such_array")

    def test_never_picks_the_dataset_table(self, trained_mlp, digits_small):
        _, test_set = digits_small
        with _pool(trained_mlp, test_set, supervisor=None) as pool:
            info = pool.chaos_corrupt(seed=0, n_flips=1)
            assert info["key"] != "__dataset__"
            assert info["key"].startswith("mlp/")


class TestPoolAuditOracle:
    def test_oracle_matches_served_answers(self, trained_mlp, digits_small):
        _, test_set = digits_small
        with _pool(trained_mlp, test_set, supervisor=None) as pool:
            indices = [0, 1, 2, 5]
            served = pool.run_batch("mlp", indices, None)
            oracle = pool.audit_oracle("mlp")
            rows = pool.audit_rows(indices)
            np.testing.assert_array_equal(oracle.run(indices, rows), served)
            # Cached per published bundle: same runner object back.
            assert pool.audit_oracle("mlp") is oracle

    def test_unknown_model_raises(self, trained_mlp, digits_small):
        _, test_set = digits_small
        with _pool(trained_mlp, test_set, supervisor=None) as pool:
            with pytest.raises(ServingError, match="unknown model"):
                pool.audit_oracle("resnet")

    def test_audit_rows_needs_a_published_dataset(self, trained_mlp):
        with ShardedPool(
            {"mlp": trained_mlp}, jobs=1, warm=False, chaos_hooks=True
        ) as pool:
            with pytest.raises(ServingError, match="no shared dataset"):
                pool.audit_rows([0])

    def test_reported_mismatch_quarantines_the_pair(
        self, trained_mlp, digits_small
    ):
        _, test_set = digits_small
        with _pool(trained_mlp, test_set) as pool:
            pool.report_audit_mismatch(0, "mlp")
            stats = pool.integrity_stats()
            assert stats["audit_mismatch_reports"] == 1
            assert [0, pool.backend] in stats["audit_quarantined_pairs"]
            # Escalation scrubbed the (clean) segment and retired the
            # offending shard onto a fresh worker.
            assert stats["scrub_passes"] >= 1
            assert wait_until(
                lambda: pool.integrity_stats()["corrupt_shard_respawns"] >= 1
            )
            assert wait_until(lambda: pool.alive_shards() == [0])


class TestEngineAuditLane:
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_invalid_audit_rate_raises(self, rate):
        with pytest.raises(ServingError, match="audit_rate"):
            InferenceServer(runners={"x": object()}, audit_rate=rate)

    def test_rate_zero_is_draw_free(self, trained_mlp, digits_small):
        _, test_set = digits_small
        instance = InferenceServer.from_models(
            {"mlp": trained_mlp}, images=test_set.images, audit_rate=0.0
        )
        try:
            assert instance._audit_rng is None
            instance.predict_many("mlp", indices=[0, 1, 2])
            integrity = instance.integrity()
            assert integrity["audit_rate"] == 0.0
            assert integrity["audit_checks"] == 0
        finally:
            instance.close()

    def test_full_rate_audits_every_batch_and_matches(
        self, trained_mlp, digits_small
    ):
        _, test_set = digits_small
        with _pool(trained_mlp, test_set, supervisor=None) as pool:
            instance = InferenceServer(
                pool=pool,
                policy=BatchPolicy(max_batch=4, max_wait_us=1000.0),
                audit_rate=1.0,
                audit_seed=7,
            )
            try:
                labels = instance.predict_many("mlp", indices=list(range(12)))
                reference = trained_mlp.predict_images(test_set.images[:12])
                np.testing.assert_array_equal(labels, reference)
                integrity = instance.integrity()
                assert integrity["audit_checks"] > 0
                assert integrity["audit_matches"] == integrity["audit_checks"]
                assert integrity["audit_mismatches"] == 0
                # Pool counters are merged into the same payload.
                assert integrity["scrub_failures"] == 0
                assert integrity["unrecoverable"] is False
            finally:
                instance.close()

    def test_stats_and_health_carry_the_integrity_section(
        self, trained_mlp, digits_small
    ):
        _, test_set = digits_small
        with _pool(trained_mlp, test_set, supervisor=None) as pool:
            instance = InferenceServer(
                pool=pool,
                policy=BatchPolicy(max_batch=4, max_wait_us=1000.0),
                audit_rate=0.5,
                audit_seed=0,
            )
            try:
                instance.predict_many("mlp", indices=[0, 1, 2, 3])
                stats = instance.stats()["integrity"]
                health = instance.health()
                for payload in (stats, health["integrity"]):
                    assert INTEGRITY_KEYS <= set(payload)
                    assert {
                        "audit_rate",
                        "audit_checks",
                        "audit_matches",
                        "audit_mismatches",
                        "audit_skipped",
                    } <= set(payload)
                assert health["ready"] is True
            finally:
                instance.close()

    def test_seeded_coin_flips_are_deterministic(
        self, trained_mlp, digits_small
    ):
        _, test_set = digits_small

        def pattern():
            instance = InferenceServer.from_models(
                {"mlp": trained_mlp},
                images=test_set.images,
                audit_rate=0.5,
                audit_seed=42,
            )
            try:
                return [instance._should_audit() for _ in range(32)]
            finally:
                instance.close()

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)


class TestEndToEndWeightCorruption:
    def test_scenario_holds_every_corruption_invariant(self):
        """A short seeded run: the bit flips land mid-load, the
        scrubber detects inside one period, the segment is restored
        bit-identically, and nothing corrupt is served afterwards."""
        payload = run_chaos(
            "weight-corruption",
            models=("mlp",),
            seed=0,
            duration_seconds=2.5,
            concurrency=2,
        )
        chaos = payload["chaos"]
        assert chaos["scenario"] == "weight-corruption"
        invariants = chaos["invariants"]
        assert invariants["corruption_detected"] is True
        assert invariants["detected_within_scrub_period"] is True
        assert invariants["no_corrupt_responses_after_detection"] is True
        assert invariants["restored_bit_identical"] is True
        assert chaos_passed(payload)
        # The corruption actually fired and was repaired.
        kinds = [event["kind"] for event in chaos["events"]]
        assert "corrupt_weights" in kinds
        integrity = payload["integrity"]
        assert integrity["scrub_failures"] >= 1
        assert integrity["restores"] >= 1
        assert integrity["unrecoverable"] is False
        assert payload["health"]["ready"] is True
