"""CLI plumbing for the reliability surface: --chaos and serve-health.

These are argument-validation and exit-code tests only — the heavy
end-to-end chaos path is covered by ``tests/serve/test_chaos.py`` and
the CI ``chaos-smoke`` job.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_USAGE, main


def _health_payload(ready: bool) -> dict:
    return {
        "health": {
            "ready": ready,
            "live": True,
            "models": {
                "mlp": {
                    "breaker": {"state": "closed" if ready else "open", "trips": 0},
                    "queue_depth": 0,
                }
            },
            "pool": {"alive_shards": [0, 1], "jobs": 2},
        }
    }


class TestLoadtestChaosFlags:
    def test_unknown_scenario_exits_usage(self, capsys):
        exit_code = main(["loadtest", "--model", "mlp", "--chaos", "meteor"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_USAGE
        assert "unknown chaos scenario" in captured.err
        assert "smoke" in captured.err  # lists the valid ids

    def test_unknown_model_exits_usage_before_chaos(self, capsys):
        exit_code = main(["loadtest", "--model", "resnet", "--chaos", "smoke"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_USAGE
        assert "unknown model" in captured.err

    @pytest.mark.parametrize(
        "flags",
        [
            ["--deadline-ms", "50", "--chaos", "meteor"],
            ["--max-retries", "1", "--chaos", "meteor"],
        ],
    )
    def test_new_flags_parse(self, capsys, flags):
        """--deadline-ms / --max-retries are accepted by the parser (the
        unknown scenario still short-circuits before any training)."""
        exit_code = main(["loadtest", "--model", "mlp", *flags])
        assert exit_code == EXIT_USAGE
        assert "unknown chaos scenario" in capsys.readouterr().err


class TestServeHealth:
    def test_ready_payload_exits_zero(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps(_health_payload(ready=True)))
        exit_code = main(["serve-health", str(stats)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ready: yes" in captured.out
        assert "pool: 2 of 2 shard(s) alive" in captured.out

    def test_unready_payload_exits_one(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps(_health_payload(ready=False)))
        exit_code = main(["serve-health", str(stats)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "ready: NO" in captured.out

    def test_missing_file_exits_one_with_message(self, capsys, tmp_path):
        exit_code = main(["serve-health", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "cannot read" in captured.err

    def test_payload_without_health_section_exits_one(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps({"models": {}}))
        exit_code = main(["serve-health", str(stats)])
        assert exit_code == 1


class TestChaosList:
    def test_loadtest_chaos_list_enumerates_both_registries(self, capsys):
        exit_code = main(["loadtest", "--model", "mlp", "--chaos", "list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "smoke" in captured.out
        assert "deadline-storm" in captured.out
        assert "drift-storm" in captured.out
        assert "label-flip-burst" in captured.out

    def test_learn_serve_chaos_list_exits_zero(self, capsys):
        exit_code = main(["learn-serve", "--chaos", "list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "steady" in captured.out
        assert "sram-ber-learning" in captured.out

    def test_learn_serve_unknown_scenario_exits_usage(self, capsys):
        exit_code = main(["learn-serve", "--chaos", "meteor"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_USAGE
        assert "unknown learning scenario" in captured.err
        assert "steady" in captured.err


class TestServeHealthJson:
    def test_json_output_has_stable_keys(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        payload = _health_payload(ready=True)
        payload["health"]["learner"] = {
            "epoch": 3,
            "serving_epoch": 3,
            "staleness": 0,
            "rollbacks": 1,
            "last_rollback_epoch": 2,
            "retention_slo_ok": True,
        }
        stats.write_text(json.dumps(payload))
        exit_code = main(["serve-health", "--json", str(stats)])
        captured = capsys.readouterr()
        assert exit_code == 0
        doc = json.loads(captured.out)
        assert sorted(doc) == ["learner", "live", "models", "pool", "ready"]
        assert doc["ready"] is True
        assert doc["learner"]["serving_epoch"] == 3
        assert doc["pool"]["jobs"] == 2

    def test_json_without_learner_is_null_not_missing(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps(_health_payload(ready=True)))
        exit_code = main(["serve-health", "--json", str(stats)])
        doc = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert doc["learner"] is None

    def test_json_unready_still_exits_one(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps(_health_payload(ready=False)))
        exit_code = main(["serve-health", "--json", str(stats)])
        doc = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert doc["ready"] is False
