"""CLI plumbing for the reliability surface: --chaos and serve-health.

These are argument-validation and exit-code tests only — the heavy
end-to-end chaos path is covered by ``tests/serve/test_chaos.py`` and
the CI ``chaos-smoke`` job.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_USAGE, main


def _health_payload(ready: bool) -> dict:
    return {
        "health": {
            "ready": ready,
            "live": True,
            "models": {
                "mlp": {
                    "breaker": {"state": "closed" if ready else "open", "trips": 0},
                    "queue_depth": 0,
                }
            },
            "pool": {"alive_shards": [0, 1], "jobs": 2},
        }
    }


class TestLoadtestChaosFlags:
    def test_unknown_scenario_exits_usage(self, capsys):
        exit_code = main(["loadtest", "--model", "mlp", "--chaos", "meteor"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_USAGE
        assert "unknown chaos scenario" in captured.err
        assert "smoke" in captured.err  # lists the valid ids

    def test_unknown_model_exits_usage_before_chaos(self, capsys):
        exit_code = main(["loadtest", "--model", "resnet", "--chaos", "smoke"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_USAGE
        assert "unknown model" in captured.err

    @pytest.mark.parametrize(
        "flags",
        [
            ["--deadline-ms", "50", "--chaos", "meteor"],
            ["--max-retries", "1", "--chaos", "meteor"],
        ],
    )
    def test_new_flags_parse(self, capsys, flags):
        """--deadline-ms / --max-retries are accepted by the parser (the
        unknown scenario still short-circuits before any training)."""
        exit_code = main(["loadtest", "--model", "mlp", *flags])
        assert exit_code == EXIT_USAGE
        assert "unknown chaos scenario" in capsys.readouterr().err


class TestServeHealth:
    def test_ready_payload_exits_zero(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps(_health_payload(ready=True)))
        exit_code = main(["serve-health", str(stats)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ready: yes" in captured.out
        assert "pool: 2 of 2 shard(s) alive" in captured.out

    def test_unready_payload_exits_one(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps(_health_payload(ready=False)))
        exit_code = main(["serve-health", str(stats)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "ready: NO" in captured.out

    def test_missing_file_exits_one_with_message(self, capsys, tmp_path):
        exit_code = main(["serve-health", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "cannot read" in captured.err

    def test_payload_without_health_section_exits_one(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps({"models": {}}))
        exit_code = main(["serve-health", str(stats)])
        assert exit_code == 1


class TestChaosList:
    def test_loadtest_chaos_list_enumerates_both_registries(self, capsys):
        exit_code = main(["loadtest", "--model", "mlp", "--chaos", "list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "smoke" in captured.out
        assert "deadline-storm" in captured.out
        assert "drift-storm" in captured.out
        assert "label-flip-burst" in captured.out

    def test_learn_serve_chaos_list_exits_zero(self, capsys):
        exit_code = main(["learn-serve", "--chaos", "list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "steady" in captured.out
        assert "sram-ber-learning" in captured.out

    def test_learn_serve_unknown_scenario_exits_usage(self, capsys):
        exit_code = main(["learn-serve", "--chaos", "meteor"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_USAGE
        assert "unknown learning scenario" in captured.err
        assert "steady" in captured.err


class TestServeHealthJson:
    def test_json_output_has_stable_keys(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        payload = _health_payload(ready=True)
        payload["health"]["learner"] = {
            "epoch": 3,
            "serving_epoch": 3,
            "staleness": 0,
            "rollbacks": 1,
            "last_rollback_epoch": 2,
            "retention_slo_ok": True,
        }
        stats.write_text(json.dumps(payload))
        exit_code = main(["serve-health", "--json", str(stats)])
        captured = capsys.readouterr()
        assert exit_code == 0
        doc = json.loads(captured.out)
        assert sorted(doc) == [
            "integrity",
            "learner",
            "live",
            "models",
            "pool",
            "ready",
        ]
        assert doc["ready"] is True
        assert doc["learner"]["serving_epoch"] == 3
        assert doc["pool"]["jobs"] == 2

    def test_json_without_learner_is_null_not_missing(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps(_health_payload(ready=True)))
        exit_code = main(["serve-health", "--json", str(stats)])
        doc = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert doc["learner"] is None
        assert doc["integrity"] is None

    def test_json_carries_the_integrity_section(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        payload = _health_payload(ready=True)
        payload["health"]["integrity"] = {
            "audit_rate": 0.01,
            "audit_checks": 12,
            "audit_mismatches": 0,
            "scrub_failures": 0,
            "unrecoverable": False,
        }
        stats.write_text(json.dumps(payload))
        exit_code = main(["serve-health", "--json", str(stats)])
        doc = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert doc["integrity"]["audit_checks"] == 12

    def test_json_unready_still_exits_one(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps(_health_payload(ready=False)))
        exit_code = main(["serve-health", "--json", str(stats)])
        doc = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert doc["ready"] is False


class TestLoadtestIntegrityFlags:
    @pytest.mark.parametrize("rate", ["-0.1", "1.5"])
    def test_audit_rate_out_of_range_exits_usage(self, capsys, rate):
        exit_code = main(
            ["loadtest", "--model", "mlp", "--audit-rate", rate]
        )
        captured = capsys.readouterr()
        assert exit_code == EXIT_USAGE
        assert "audit-rate" in captured.err

    def test_non_positive_scrub_period_exits_usage(self, capsys):
        exit_code = main(
            ["loadtest", "--model", "mlp", "--scrub-period", "0"]
        )
        captured = capsys.readouterr()
        assert exit_code == EXIT_USAGE
        assert "scrub-period" in captured.err

    def test_flags_parse_before_scenario_check(self, capsys):
        """Valid integrity flags reach the scenario short-circuit."""
        exit_code = main(
            [
                "loadtest",
                "--model",
                "mlp",
                "--audit-rate",
                "0.01",
                "--scrub-period",
                "0.5",
                "--chaos",
                "meteor",
            ]
        )
        assert exit_code == EXIT_USAGE
        assert "unknown chaos scenario" in capsys.readouterr().err


class TestCacheVerify:
    def _flip_entry(self, root):
        entries = sorted(root.glob("*.npz"))
        assert entries, "no cache entries to corrupt"
        path = entries[0]
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        return path

    def _seed_cache(self, root):
        import numpy as np

        from repro.core.artifacts import ArrayBundleCache

        ArrayBundleCache(root).get_or_compute(
            "k", lambda: {"a": np.arange(3.0)}
        )
        return root / "sweeps"

    def test_empty_cache_exits_zero(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        exit_code = main(["cache", "verify"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "checked 0 entry(ies)" in captured.out

    def test_corrupt_entry_exits_one_and_is_listed(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        subdir = self._seed_cache(tmp_path)
        self._flip_entry(subdir)
        exit_code = main(["cache", "verify"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "1 corrupt" in captured.out
        assert "corrupt" in captured.out and "sweeps/" in captured.out

    def test_evict_then_reverify_exits_zero(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        subdir = self._seed_cache(tmp_path)
        path = self._flip_entry(subdir)
        assert main(["cache", "verify", "--evict"]) == 1
        assert "[evicted]" in capsys.readouterr().out
        assert not path.exists()
        assert main(["cache", "verify"]) == 0

    def test_json_report_has_stable_keys(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        self._seed_cache(tmp_path)
        exit_code = main(["cache", "verify", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert sorted(doc) == [
            "checked",
            "corrupt",
            "directory",
            "entries",
            "evicted",
            "missing_sidecar",
            "verified",
        ]
        assert doc["checked"] == 1 and doc["verified"] == 1
