"""Chaos harness: scenario registry, interceptor determinism, invariants.

Cheap unit tests drive the scenario/event validation and the
interceptor's fault lottery directly; one small seeded end-to-end run
exercises ``run_chaos`` and asserts the full invariant set (zero lost,
zero duplicated, bit-identical successes, supervisor recovery).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.errors import ServingError
from repro.serve.chaos import (
    CORRUPT_WEIGHTS,
    ERROR_BURST,
    KILL,
    LATENCY_SPIKE,
    SCENARIOS,
    WEDGE,
    ChaosEvent,
    ChaosInterceptor,
    ChaosScenario,
    chaos_passed,
    get_scenario,
    run_chaos,
    scale_scenario,
)


class TestEventValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "meteor_strike", "at": 0.5},
            {"kind": KILL, "at": 1.0},
            {"kind": KILL, "at": -0.1},
            {"kind": LATENCY_SPIKE, "at": 0.5, "duration": -0.1},
            {"kind": ERROR_BURST, "at": 0.5, "magnitude": 1.5},
            {"kind": WEDGE, "at": 0.5, "target": -1},
            {"kind": CORRUPT_WEIGHTS, "at": 0.5, "magnitude": 0.0},
        ],
    )
    def test_bad_events_raise(self, kwargs):
        with pytest.raises(ServingError):
            ChaosEvent(**kwargs).validate()

    def test_good_event_round_trips(self):
        event = ChaosEvent(kind=KILL, at=0.25, target=1).validate()
        assert event.kind == KILL and event.target == 1


class TestScenarioValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 0},
            {"duration_seconds": 0.0},
            {"concurrency": 0},
            {"scrub_period": 0.0},
            {"audit_rate": 1.5},
        ],
    )
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ServingError):
            ChaosScenario(
                scenario_id="x", description="bad", **kwargs
            ).validate()

    def test_event_target_must_fit_the_pool(self):
        scenario = ChaosScenario(
            scenario_id="x",
            description="kill a shard the pool does not have",
            jobs=2,
            events=(ChaosEvent(kind=KILL, at=0.5, target=2),),
        )
        with pytest.raises(ServingError, match="targets shard 2"):
            scenario.validate()


class TestRegistry:
    def test_builtin_scenarios_all_validate(self):
        assert set(SCENARIOS) == {
            "smoke",
            "kill-spike",
            "wedge",
            "error-burst",
            "deadline-storm",
            "weight-corruption",
        }
        for scenario_id, scenario in SCENARIOS.items():
            assert scenario.validate().scenario_id == scenario_id

    def test_unknown_scenario_raises_typed(self):
        with pytest.raises(ServingError, match="unknown chaos scenario"):
            get_scenario("apocalypse")

    def test_scale_overrides_shape_but_not_schedule(self):
        base = get_scenario("smoke")
        scaled = scale_scenario(
            base, duration_seconds=1.0, concurrency=2, deadline_ms=50.0
        )
        assert scaled.duration_seconds == 1.0
        assert scaled.concurrency == 2
        assert scaled.deadline_ms == 50.0
        assert scaled.events == base.events  # fault schedule untouched

    def test_scale_without_changes_is_identity(self):
        base = get_scenario("smoke")
        assert scale_scenario(base) is base


def _burst_scenario(magnitude: float = 0.5) -> ChaosScenario:
    return ChaosScenario(
        scenario_id="unit-burst",
        description="full-run error burst for lottery tests",
        jobs=1,
        duration_seconds=100.0,  # window comfortably covers the calls
        events=(
            ChaosEvent(
                kind=ERROR_BURST, at=0.0, duration=0.99, magnitude=magnitude
            ),
        ),
    ).validate()


class TestInterceptor:
    def _lottery(self, seed: int, draws: int = 40) -> list:
        interceptor = ChaosInterceptor(_burst_scenario(), seed=seed)
        interceptor.arm(time.perf_counter())
        pattern = []
        for _ in range(draws):
            try:
                interceptor.before_batch("m", [(0, None, None)])
            except ServingError:
                pattern.append(True)
            else:
                pattern.append(False)
        return pattern

    def test_error_lottery_is_seed_deterministic(self):
        assert self._lottery(seed=7) == self._lottery(seed=7)

    def test_error_lottery_varies_with_seed(self):
        assert self._lottery(seed=7) != self._lottery(seed=8)

    def test_unarmed_interceptor_is_a_no_op(self):
        interceptor = ChaosInterceptor(_burst_scenario(magnitude=1.0))
        interceptor.before_batch("m", [(0, None, None)])  # no raise
        assert interceptor.counters() == {
            "injected_errors": 0,
            "spiked_batches": 0,
        }

    def test_latency_spike_sleeps_inside_its_window(self):
        scenario = ChaosScenario(
            scenario_id="unit-spike",
            description="full-run latency spike",
            jobs=1,
            duration_seconds=100.0,
            events=(
                ChaosEvent(
                    kind=LATENCY_SPIKE, at=0.0, duration=0.99, magnitude=5.0
                ),
            ),
        ).validate()
        interceptor = ChaosInterceptor(scenario)
        interceptor.arm(time.perf_counter())
        begin = time.perf_counter()
        interceptor.before_batch("m", [(0, None, None)])
        assert time.perf_counter() - begin >= 0.004  # slept ~5ms
        assert interceptor.counters()["spiked_batches"] == 1

    def test_events_outside_their_window_do_nothing(self):
        interceptor = ChaosInterceptor(_burst_scenario(magnitude=1.0))
        interceptor.arm(time.perf_counter() - 1000.0)  # windows long past
        interceptor.before_batch("m", [(0, None, None)])  # no raise
        assert interceptor.counters()["injected_errors"] == 0

    def test_counters_are_thread_safe_snapshots(self):
        interceptor = ChaosInterceptor(_burst_scenario(magnitude=0.0))
        interceptor.arm(time.perf_counter())
        errors = []

        def hammer():
            try:
                for _ in range(50):
                    interceptor.before_batch("m", [(0, None, None)])
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert interceptor.counters()["injected_errors"] == 0


class TestChaosPassed:
    def test_requires_every_invariant(self):
        good = {
            "chaos": {
                "invariants": {
                    "no_lost_requests": True,
                    "no_duplicate_responses": True,
                    "bit_identical_successes": True,
                    "supervisor_recovered": True,
                }
            }
        }
        assert chaos_passed(good)
        bad = {
            "chaos": {
                "invariants": {**good["chaos"]["invariants"], "lost": False}
            }
        }
        assert not chaos_passed(bad)

    def test_empty_payload_fails(self):
        assert not chaos_passed({})
        assert not chaos_passed({"chaos": {}})


class TestEndToEnd:
    def test_smoke_scenario_holds_every_invariant(self):
        """A short seeded smoke run: the shard kill fires, the
        supervisor respawns, and not one request is lost, duplicated,
        or answered differently from the direct oracle."""
        payload = run_chaos(
            "smoke",
            models=("mlp",),
            seed=0,
            duration_seconds=2.0,
            concurrency=2,
        )
        chaos = payload["chaos"]
        assert chaos["scenario"] == "smoke"
        assert chaos["invariants"] == {
            "no_lost_requests": True,
            "no_duplicate_responses": True,
            "bit_identical_successes": True,
            "supervisor_recovered": True,
        }
        assert chaos_passed(payload)
        assert chaos["outcomes"]["ok"] > 0
        # The scheduled kill actually fired and was healed.
        kinds = [event["kind"] for event in chaos["events"]]
        assert "kill_shard" in kinds
        assert payload["pool"]["respawns"] >= 1
        assert payload["health"]["ready"] is True
