"""ShardedPool: zero-copy rebuilds, bit-identity, shard-death recovery.

The acceptance properties of the serving layer's process backend:

* a model rebuilt in a worker from read-only shared-memory views
  predicts bit-identically to the parent's own model, for every
  published family;
* killing a shard mid-service degrades capacity, never correctness —
  in-flight and subsequent requests complete on the survivors;
* killing *every* shard turns requests into :class:`ServingError`,
  not a hang.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.errors import ServingError
from repro.mlp.quantized import QuantizedMLP
from repro.serve.batcher import BatchPolicy
from repro.serve.engine import InferenceServer
from repro.serve.shm import SharedArrayBundle
from repro.serve.workers import ShardedPool, _publish_model, rebuild_model
from repro.snn.batched import predict_batch
from repro.snn.snn_bp import train_snn_bp
from repro.snn.snn_wot import SNNWithoutTime


class TestRebuildFidelity:
    """publish -> shm -> rebuild is exact for every model family."""

    def test_snnwt_round_trip(self, trained_snn, digits_small):
        _, test_set = digits_small
        arrays = {}
        spec = _publish_model("snnwt", trained_snn, arrays)
        with SharedArrayBundle.create(arrays) as bundle:
            rebuilt = rebuild_model("snnwt", spec, bundle)
            expected = predict_batch(trained_snn, test_set.images[:20])
            got = predict_batch(rebuilt, test_set.images[:20])
            np.testing.assert_array_equal(got, expected)

    def test_snnwot_round_trip(self, trained_snn, digits_small):
        _, test_set = digits_small
        model = SNNWithoutTime(trained_snn)
        arrays = {}
        spec = _publish_model("snnwot", model, arrays)
        with SharedArrayBundle.create(arrays) as bundle:
            rebuilt = rebuild_model("snnwot", spec, bundle)
            np.testing.assert_array_equal(
                rebuilt.predict(test_set.images), model.predict(test_set.images)
            )

    def test_snnbp_round_trip(self, snn_config_small, digits_small):
        train_set, test_set = digits_small
        model = train_snn_bp(snn_config_small, train_set, epochs=2)
        arrays = {}
        spec = _publish_model("snnbp", model, arrays)
        with SharedArrayBundle.create(arrays) as bundle:
            rebuilt = rebuild_model("snnbp", spec, bundle)
            np.testing.assert_array_equal(
                rebuilt.predict(test_set.images), model.predict(test_set.images)
            )

    def test_mlp_round_trips(self, trained_mlp, digits_small):
        _, test_set = digits_small
        quantized = QuantizedMLP(trained_mlp)
        for name, model in (("mlp", trained_mlp), ("mlp-q", quantized)):
            arrays = {}
            spec = _publish_model(name, model, arrays)
            with SharedArrayBundle.create(arrays) as bundle:
                rebuilt = rebuild_model(name, spec, bundle)
                np.testing.assert_array_equal(
                    rebuilt.predict_images(test_set.images),
                    model.predict_images(test_set.images),
                )

    def test_unpublishable_model_raises(self):
        with pytest.raises(ServingError):
            _publish_model("bogus", object(), {})


class TestPoolServing:
    def test_pool_predictions_are_bit_identical(
        self, trained_snn, trained_mlp, digits_small
    ):
        _, test_set = digits_small
        reference_snn = predict_batch(trained_snn, test_set.images)
        reference_mlp = np.asarray(trained_mlp.predict_images(test_set.images))
        with ShardedPool(
            {"snnwt": trained_snn, "mlp": trained_mlp},
            jobs=2,
            images=test_set.images,
        ) as pool:
            assert pool.alive_shards() == [0, 1]
            assert pool.has_dataset and pool.has_row(0)
            assert not pool.has_row(len(test_set.images))
            assert pool.nbytes_shared() > 0
            indices = list(range(0, len(test_set.images), 5))
            # Index-only tasks: workers resolve rows from shared memory.
            got_snn = pool.run_batch("snnwt", indices, None)
            got_mlp = pool.run_batch("mlp", indices, None)
            np.testing.assert_array_equal(got_snn, reference_snn[indices])
            np.testing.assert_array_equal(got_mlp, reference_mlp[indices])
            # Explicit-rows tasks agree with index-only tasks.
            got_rows = pool.run_batch(
                "snnwt", indices, test_set.images[indices]
            )
            np.testing.assert_array_equal(got_rows, reference_snn[indices])

    def test_index_only_task_without_dataset_fails_cleanly(self, trained_mlp):
        with ShardedPool({"mlp": trained_mlp}, jobs=1, warm=False) as pool:
            with pytest.raises(ServingError, match="worker task failed"):
                pool.run_batch("mlp", [0, 1], None)

    def test_unknown_model_raises(self, trained_mlp):
        with ShardedPool({"mlp": trained_mlp}, jobs=1, warm=False) as pool:
            with pytest.raises(ServingError):
                pool.run_batch("resnet", [0], np.zeros((1, 4)))

    def test_constructor_validation(self, trained_mlp):
        with pytest.raises(ServingError):
            ShardedPool({}, jobs=1)
        with pytest.raises(ServingError):
            ShardedPool({"mlp": trained_mlp}, jobs=0)


class TestShardDeath:
    def test_surviving_shards_absorb_a_killed_shard(
        self, trained_snn, digits_small
    ):
        """Kill one of two shards, then keep serving: every request
        completes on the survivor with unchanged answers — including
        requests round-robined onto the dead shard before the collector
        notices (the requeue path)."""
        _, test_set = digits_small
        reference = predict_batch(trained_snn, test_set.images)
        with ShardedPool(
            {"snnwt": trained_snn}, jobs=2, images=test_set.images
        ) as pool:
            warmup = pool.run_batch("snnwt", [0, 1], None)
            np.testing.assert_array_equal(warmup, reference[[0, 1]])
            pool.kill_shard(0)
            # Immediately hammer the pool; round-robin still targets
            # shard 0 until its collector detects the death and
            # requeues, so this exercises recovery, not just routing.
            for index in range(10):
                got = pool.run_batch("snnwt", [index], None)
                np.testing.assert_array_equal(got, reference[[index]])
            deadline = time.perf_counter() + 5.0
            while pool.alive_shards() != [1]:
                assert time.perf_counter() < deadline
                time.sleep(0.05)

    def test_all_shards_dead_raises_instead_of_hanging(
        self, trained_mlp, digits_small
    ):
        _, test_set = digits_small
        pool = ShardedPool(
            {"mlp": trained_mlp},
            jobs=2,
            images=test_set.images,
            warm=False,
            task_timeout=30.0,
        )
        try:
            pool.kill_shard(0)
            pool.kill_shard(1)
            deadline = time.perf_counter() + 5.0
            while pool.alive_shards():
                assert time.perf_counter() < deadline
                time.sleep(0.05)
            start = time.perf_counter()
            with pytest.raises(ServingError):
                pool.run_batch("mlp", [0], None)
            assert time.perf_counter() - start < 5.0  # failed fast
        finally:
            pool.close()

    def test_server_over_pool_survives_shard_death(
        self, trained_snn, digits_small
    ):
        """End to end: InferenceServer routed onto the pool keeps
        serving bit-identical answers after a shard is killed."""
        _, test_set = digits_small
        reference = predict_batch(trained_snn, test_set.images)
        pool = ShardedPool(
            {"snnwt": trained_snn}, jobs=2, images=test_set.images
        )
        server = InferenceServer(
            pool=pool,
            policy=BatchPolicy(max_batch=4, max_wait_us=1000.0),
            images=test_set.images,
        )
        try:
            before = server.predict_many("snnwt", indices=[3, 1, 4])
            np.testing.assert_array_equal(before, reference[[3, 1, 4]])
            pool.kill_shard(1)
            after = server.predict_many("snnwt", indices=[1, 5, 9, 2, 6])
            np.testing.assert_array_equal(after, reference[[1, 5, 9, 2, 6]])
        finally:
            server.close()


class TestReliability:
    """PR5 hardening: quarantine, deadline triage, counted no-ops."""

    def test_poison_task_quarantined_then_fast_fails(
        self, trained_mlp, digits_small
    ):
        from repro.core.errors import PoisonedRequest
        from repro.serve.workers import POISON_MODEL

        _, test_set = digits_small
        with ShardedPool(
            {"mlp": trained_mlp},
            jobs=2,
            images=test_set.images,
            warm=False,
            chaos_hooks=True,
            max_task_retries=0,
        ) as pool:
            with pytest.raises(PoisonedRequest, match="quarantined"):
                pool.run_batch(POISON_MODEL, [0], None)
            stats = pool.stats()
            assert stats["quarantined"] == 1
            deaths_after_first = stats["shard_deaths"]
            assert deaths_after_first >= 1
            # The identical signature now fast-fails without being
            # dispatched: no additional shard dies for it.
            with pytest.raises(PoisonedRequest, match="rejected"):
                pool.run_batch(POISON_MODEL, [0], None)
            stats = pool.stats()
            assert stats["quarantine_rejections"] == 1
            assert stats["shard_deaths"] == deaths_after_first
            # Ordinary work still serves on the survivor.
            got = pool.run_batch("mlp", [3], None)
            expected = np.asarray(
                trained_mlp.predict_images(test_set.images[[3]])
            )
            np.testing.assert_array_equal(got, expected)

    def test_expired_deadline_shed_before_dispatch(
        self, trained_mlp, digits_small
    ):
        from repro.core.errors import DeadlineExceeded

        _, test_set = digits_small
        with ShardedPool(
            {"mlp": trained_mlp}, jobs=1, images=test_set.images, warm=False
        ) as pool:
            with pytest.raises(DeadlineExceeded, match="before dispatch"):
                pool.run_batch(
                    "mlp", [0], None, deadline=time.perf_counter() - 0.01
                )
            stats = pool.stats()
            assert stats["deadline_shed"] == 1
            assert stats["shard_deaths"] == 0  # no shard consumed work

    def test_in_flight_deadline_shed_on_shard_death(
        self, trained_mlp, digits_small
    ):
        """A task queued behind a wedged shard whose deadline passes
        must be shed with DeadlineExceeded when the shard dies — not
        handed doomed to a survivor."""
        import threading

        from repro.core.errors import DeadlineExceeded

        _, test_set = digits_small
        with ShardedPool(
            {"mlp": trained_mlp},
            jobs=1,
            images=test_set.images,
            warm=False,
            chaos_hooks=True,
        ) as pool:
            pool.wedge_shard(0, seconds=3.0)
            time.sleep(0.1)  # let the worker enter its wedge sleep
            outcome = {}

            def doomed():
                try:
                    pool.run_batch(
                        "mlp", [0], None,
                        deadline=time.perf_counter() + 0.2,
                    )
                    outcome["result"] = "completed"
                except BaseException as exc:  # noqa: BLE001
                    outcome["error"] = exc

            thread = threading.Thread(target=doomed, daemon=True)
            thread.start()
            time.sleep(0.5)  # deadline passes while the shard is wedged
            pool.kill_shard(0)
            thread.join(timeout=10.0)
            assert isinstance(outcome.get("error"), DeadlineExceeded)
            assert "in flight" in str(outcome["error"])
            assert pool.stats()["deadline_shed"] >= 1

    def test_requeued_tasks_complete_and_are_counted(
        self, trained_mlp, digits_small
    ):
        """Kill one of two shards while tasks queue behind a wedge on
        it: every future still resolves with the right answer and the
        requeue counter records the handoffs."""
        import threading

        _, test_set = digits_small
        reference = np.asarray(trained_mlp.predict_images(test_set.images))
        with ShardedPool(
            {"mlp": trained_mlp},
            jobs=2,
            images=test_set.images,
            warm=False,
            chaos_hooks=True,
            max_task_retries=2,
        ) as pool:
            pool.wedge_shard(0, seconds=3.0)
            time.sleep(0.1)
            results = {}

            def client(index):
                results[index] = pool.run_batch("mlp", [index], None)

            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(6)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.3)
            pool.kill_shard(0)  # tasks stuck behind the wedge requeue
            for thread in threads:
                thread.join(timeout=15.0)
            assert sorted(results) == list(range(6))
            for index, got in results.items():
                np.testing.assert_array_equal(got, reference[[index]])
            assert pool.stats()["requeues"] >= 1

    def test_duplicate_completion_is_a_counted_no_op(
        self, trained_mlp, digits_small
    ):
        """A result message for an already-resolved task must not
        raise or double-resolve anything — it is counted and dropped."""
        _, test_set = digits_small
        with ShardedPool(
            {"mlp": trained_mlp}, jobs=1, images=test_set.images, warm=False
        ) as pool:
            shard = pool._shards[0]
            pool._handle(
                shard, ("result", 0, 999_999, np.asarray([1]))
            )  # unknown task id: the duplicate-after-requeue shape
            assert pool.stats()["duplicate_completions"] == 1
            # The pool still serves normally afterwards.
            got = pool.run_batch("mlp", [0], None)
            expected = np.asarray(
                trained_mlp.predict_images(test_set.images[[0]])
            )
            np.testing.assert_array_equal(got, expected)
