"""Shard supervision: respawn, wedge detection, crash-loop breaker.

Process-level tests run against small real pools (chaos hooks on);
the crash-loop state machine is additionally unit-tested against a
fake pool so breaker transitions don't depend on real process timing.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.errors import ServingError
from repro.serve.supervisor import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    ShardSupervisor,
    SupervisorPolicy,
)
from repro.serve.workers import POISON_MODEL, ShardedPool
from repro.snn.batched import predict_batch

#: Fast knobs so supervised recovery happens inside test timeouts.
FAST = dict(
    poll_interval=0.05,
    backoff_base=0.05,
    backoff_max=0.3,
    cooldown=0.5,
    ready_timeout=60.0,
)


def wait_until(predicate, timeout: float = 15.0, interval: float = 0.05):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"poll_interval": 0.0},
            {"wedge_timeout": 0.0},
            {"backoff_base": -1.0},
            {"backoff_base": 2.0, "backoff_max": 1.0},
            {"backoff_factor": 0.5},
            {"jitter": 1.5},
            {"max_respawns": 0},
            {"respawn_window": 0.0},
            {"cooldown": -1.0},
        ],
    )
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ServingError):
            SupervisorPolicy(**kwargs).validate()

    def test_wedge_detection_can_be_disabled(self):
        assert SupervisorPolicy(wedge_timeout=None).validate().wedge_timeout is None


class TestBackoffDeterminism:
    def test_backoff_sequence_is_seeded_and_capped(self):
        class _Pool:
            jobs = 2
            death_event = threading.Event()

        policy = SupervisorPolicy(seed=7, **FAST).validate()
        a = ShardSupervisor(_Pool(), policy)
        b = ShardSupervisor(_Pool(), policy)

        def sequence(supervisor):
            state = supervisor._slots[0]
            delays = []
            for crashes in range(1, 8):
                state.consecutive_crashes = crashes
                delays.append(supervisor._backoff(state))
            return delays

        seq_a, seq_b = sequence(a), sequence(b)
        assert seq_a == seq_b  # same seed -> same jitter stream
        base = policy.backoff_base
        for crashes, delay in enumerate(seq_a, start=1):
            raw = min(
                base * policy.backoff_factor ** (crashes - 1),
                policy.backoff_max,
            )
            assert raw <= delay <= raw * (1.0 + policy.jitter)

    def test_different_slots_draw_different_jitter(self):
        class _Pool:
            jobs = 2
            death_event = threading.Event()

        supervisor = ShardSupervisor(
            _Pool(), SupervisorPolicy(seed=7, jitter=0.5, **FAST)
        )
        s0, s1 = supervisor._slots[0], supervisor._slots[1]
        s0.consecutive_crashes = s1.consecutive_crashes = 3
        assert supervisor._backoff(s0) != supervisor._backoff(s1)


class TestRespawn:
    def test_killed_shard_is_respawned_and_serves_identically(
        self, trained_snn, digits_small
    ):
        _, test_set = digits_small
        reference = predict_batch(trained_snn, test_set.images)
        with ShardedPool(
            {"snnwt": trained_snn},
            jobs=2,
            images=test_set.images,
            supervisor=SupervisorPolicy(wedge_timeout=None, **FAST),
        ) as pool:
            assert pool.supervisor is not None
            pool.kill_shard(0)
            # SIGKILL is asynchronous: wait for the supervisor to have
            # observed the death and respawned, then for full capacity.
            assert wait_until(lambda: pool.stats()["respawns"] >= 1)
            assert wait_until(lambda: pool.alive_shards() == [0, 1])
            stats = pool.stats()
            assert stats["generations"]["0"] >= 1
            # The respawned shard serves bit-identical answers.
            for index in (0, 3, 9):
                got = pool.run_batch("snnwt", [index], None)
                np.testing.assert_array_equal(got, reference[[index]])
            assert pool.supervisor.snapshot()["respawns"] >= 1

    def test_wedged_shard_is_killed_and_respawned(
        self, trained_mlp, digits_small
    ):
        _, test_set = digits_small
        with ShardedPool(
            {"mlp": trained_mlp},
            jobs=2,
            images=test_set.images,
            warm=False,
            chaos_hooks=True,
            supervisor=SupervisorPolicy(wedge_timeout=0.6, **FAST),
        ) as pool:
            pool.wedge_shard(0, seconds=5.0)
            assert wait_until(lambda: pool.stats()["wedge_kills"] >= 1)
            assert wait_until(lambda: pool.stats()["respawns"] >= 1)
            assert wait_until(lambda: pool.alive_shards() == [0, 1])
            # Still serving correctly afterwards.
            got = pool.run_batch("mlp", [0, 1], None)
            expected = np.asarray(
                trained_mlp.predict_images(test_set.images[[0, 1]])
            )
            np.testing.assert_array_equal(got, expected)

    def test_respawn_refused_while_shard_alive(self, trained_mlp, digits_small):
        _, test_set = digits_small
        with ShardedPool(
            {"mlp": trained_mlp}, jobs=1, images=test_set.images, warm=False
        ) as pool:
            with pytest.raises(ServingError, match="still alive"):
                pool.respawn_shard(0)

    def test_unsupervised_pool_stays_degraded(self, trained_mlp, digits_small):
        """Without a supervisor the PR4 behaviour is preserved: a dead
        shard stays dead (capacity degrades, no self-healing)."""
        _, test_set = digits_small
        with ShardedPool(
            {"mlp": trained_mlp}, jobs=2, images=test_set.images, warm=False
        ) as pool:
            assert pool.supervisor is None
            pool.kill_shard(0)
            assert wait_until(lambda: pool.alive_shards() == [1], timeout=5.0)
            time.sleep(0.5)
            assert pool.alive_shards() == [1]  # nobody respawned it


class TestCrashLoopBreaker:
    def test_poison_requests_trip_the_crash_loop_breaker(
        self, trained_mlp, digits_small
    ):
        """Hammering the pool with shard-killing tasks must stop
        burning respawns: the slot's breaker opens after max_respawns
        deaths inside the window."""
        _, test_set = digits_small
        with ShardedPool(
            {"mlp": trained_mlp},
            jobs=1,
            images=test_set.images,
            warm=False,
            chaos_hooks=True,
            max_task_retries=0,
            supervisor=SupervisorPolicy(
                **{
                    **FAST,
                    "wedge_timeout": None,
                    "max_respawns": 2,
                    "respawn_window": 30.0,
                    # long cooldown: breaker must still be open below
                    "cooldown": 30.0,
                }
            ),
        ) as pool:
            supervisor = pool.supervisor

            def crash_once(index):
                try:
                    # Distinct indices: distinct task signatures, so the
                    # poison *quarantine* (which fast-fails repeats of
                    # the same request) does not mask the crash loop.
                    pool.run_batch(POISON_MODEL, [index], None)
                except ServingError:
                    pass  # the task dies with the shard

            # Each poison task kills the (single) shard; the supervisor
            # respawns until the crash-loop breaker trips.
            for attempt in range(6):
                wait_until(lambda: pool.alive_shards() == [0])
                if supervisor.crash_looping_slots():
                    break
                threading.Thread(
                    target=crash_once, args=(attempt,), daemon=True
                ).start()
                wait_until(lambda: pool.alive_shards() == [])
            assert wait_until(
                lambda: supervisor.crash_looping_slots() == [0], timeout=20.0
            )
            snapshot = supervisor.snapshot()
            assert snapshot["crash_loop_trips"] >= 1
            assert snapshot["slots"]["0"]["breaker"] == OPEN

    def test_half_open_probe_closes_after_surviving(self):
        """Unit-level: open -> (cooldown) -> half-open -> probe survives
        the crash window -> closed."""

        class _FakePool:
            jobs = 1
            death_event = threading.Event()

            def __init__(self):
                self.respawned = []

            def alive_shards(self):
                return []

            def message_ages(self):
                return {}

            def respawn_shard(self, slot, ready_timeout=None):
                self.respawned.append(slot)

            def consume_planned_retire(self, slot):
                return False

            def _bump(self, counter, by=1):
                pass

            def kill_shard(self, slot):
                pass

        pool = _FakePool()
        policy = SupervisorPolicy(
            wedge_timeout=None,
            max_respawns=1,
            respawn_window=0.4,
            cooldown=0.1,
            backoff_base=0.0,
            backoff_max=0.0,
            jitter=0.0,
            poll_interval=0.05,
        ).validate()
        supervisor = ShardSupervisor(pool, policy)
        state = supervisor._slots[0]
        # Two deaths inside the window: second one trips the breaker.
        supervisor._heal_slot(state, time.perf_counter())
        assert state.breaker == CLOSED
        state.awaiting_respawn = False  # death observed again
        supervisor._heal_slot(state, time.perf_counter())
        assert state.breaker == OPEN
        before = len(pool.respawned)
        supervisor._heal_slot(state, time.perf_counter())
        assert len(pool.respawned) == before  # open: no respawn
        time.sleep(policy.cooldown + 0.05)
        state.awaiting_respawn = True
        state.next_attempt_at = None
        supervisor._heal_slot(state, time.perf_counter())
        assert state.breaker == HALF_OPEN
        assert len(pool.respawned) == before + 1  # the probe respawn
        # Probe outlives the crash window: _note_alive closes it.
        time.sleep(policy.respawn_window + 0.05)
        supervisor._note_alive(state, time.perf_counter())
        assert state.breaker == CLOSED
        assert state.consecutive_crashes == 0
