"""Load-generator arrival modes, oracles, and driver validation.

The expensive end-to-end driver (``run_loadtest``) is exercised by
``benchmarks/test_serving.py`` and the CI smoke job; here we test the
arrival-mode mechanics against a cheap synthetic runner, and the
bit-identity oracle against the shared trained fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ServingError
from repro.serve.batcher import BatchPolicy
from repro.serve.engine import ArrayRunner, InferenceServer
from repro.serve.loadgen import (
    KNOWN_MODELS,
    build_models,
    closed_loop,
    direct_predictions,
    open_loop,
    run_loadtest,
    verify_bit_identity,
)
from repro.snn.batched import predict_batch


@pytest.fixture()
def toy_server():
    """A fast deterministic server over a 64-image table: label = sum % 10."""
    rng = np.random.default_rng(3)
    images = rng.integers(0, 256, size=(64, 16)).astype(np.uint8)
    runner = ArrayRunner(
        lambda rows: rows.astype(np.int64).sum(axis=1) % 10
    )
    server = InferenceServer(
        runners={"toy": runner},
        policy=BatchPolicy(max_batch=8, max_wait_us=500.0),
        images=images,
    )
    yield server, images
    server.close()


class TestClosedLoop:
    def test_drives_and_counts(self, toy_server):
        server, _images = toy_server
        stats = closed_loop(
            server, "toy", 64, concurrency=3, duration_seconds=0.3
        )
        assert stats["mode"] == "closed"
        assert stats["concurrency"] == 3
        assert stats["client_requests"] > 0
        assert stats["client_errors"] == 0
        assert stats["client_rps"] > 0
        assert server.metrics["toy"].completed == stats["client_requests"]

    def test_validates_inputs(self, toy_server):
        server, _ = toy_server
        with pytest.raises(ServingError):
            closed_loop(server, "toy", 64, concurrency=0)
        with pytest.raises(ServingError):
            closed_loop(server, "toy", 0)


class TestOpenLoop:
    def test_fixed_arrival_schedule(self, toy_server):
        server, _ = toy_server
        stats = open_loop(
            server, "toy", 64, offered_rps=100.0, duration_seconds=0.3
        )
        assert stats["mode"] == "open"
        assert stats["client_requests"] + stats["client_shed"] == 30
        assert stats["client_errors"] == 0
        # A fast server under modest offered load sheds nothing.
        assert stats["client_shed"] == 0

    def test_overload_sheds_instead_of_queueing(self):
        """Offered >> service rate with a tiny queue: the shed counter
        rises and the run still terminates promptly."""
        import time as time_module

        rng = np.random.default_rng(4)
        images = rng.integers(0, 256, size=(16, 8)).astype(np.uint8)

        def slow(rows):
            time_module.sleep(0.02 * len(np.atleast_2d(rows)))
            return np.zeros(len(np.atleast_2d(rows)), dtype=np.int64)

        server = InferenceServer(
            runners={"slow": ArrayRunner(slow)},
            policy=BatchPolicy(max_batch=1, max_wait_us=0.0, max_queue=2),
            images=images,
        )
        try:
            stats = open_loop(
                server, "slow", 16, offered_rps=500.0, duration_seconds=0.4
            )
            assert stats["client_shed"] > 0
            assert stats["client_requests"] + stats["client_shed"] == 200
        finally:
            server.close()

    def test_validates_rate(self, toy_server):
        server, _ = toy_server
        with pytest.raises(ServingError):
            open_loop(server, "toy", 64, offered_rps=0.0)


class TestOracles:
    def test_direct_predictions_mlp(self, trained_mlp, digits_small):
        _, test_set = digits_small
        indices = [5, 1, 9]
        got = direct_predictions(trained_mlp, test_set.images, indices)
        np.testing.assert_array_equal(
            got, np.asarray(trained_mlp.predict_images(test_set.images))[indices]
        )

    def test_direct_predictions_snnwt_uses_index_streams(
        self, trained_snn, digits_small
    ):
        _, test_set = digits_small
        whole = predict_batch(trained_snn, test_set.images)
        indices = [11, 3, 60]
        got = direct_predictions(trained_snn, test_set.images, indices)
        np.testing.assert_array_equal(got, whole[indices])

    def test_verify_bit_identity_passes_for_real_models(
        self, trained_snn, trained_mlp, digits_small
    ):
        _, test_set = digits_small
        models = {"snnwt": trained_snn, "mlp": trained_mlp}
        server = InferenceServer.from_models(models, images=test_set.images)
        try:
            verdict = verify_bit_identity(
                server, models, test_set.images, n_check=16
            )
        finally:
            server.close()
        assert verdict == {"snnwt": True, "mlp": True}


class TestDriverValidation:
    """Cheap validation paths of the end-to-end driver (no training)."""

    def test_known_models_is_the_cli_contract(self):
        assert KNOWN_MODELS == ("mlp", "mlp-q", "snnwt", "snnwot", "snnbp")

    def test_build_models_rejects_unknown_dataset(self):
        with pytest.raises(ServingError):
            build_models(["mlp"], dataset="imagenet")

    def test_build_models_rejects_unknown_model(self):
        with pytest.raises(ServingError):
            build_models(["resnet"], dataset="digits")

    def test_run_loadtest_rejects_unknown_mode(self):
        with pytest.raises(ServingError):
            run_loadtest(models=("mlp",), mode="sinusoidal")


class TestGracefulDrain:
    def test_installs_and_restores_handlers_on_main_thread(self):
        import signal

        from repro.serve.loadgen import GracefulDrain

        before = {s: signal.getsignal(s) for s in GracefulDrain.SIGNALS}
        drain = GracefulDrain()
        with drain:
            for signum in GracefulDrain.SIGNALS:
                assert signal.getsignal(signum) == drain._handle
            assert not drain.triggered
        for signum, previous in before.items():
            assert signal.getsignal(signum) == previous

    def test_signal_sets_stop_event_instead_of_raising(self):
        import os
        import signal
        import time as time_module

        from repro.serve.loadgen import GracefulDrain

        with GracefulDrain() as drain:
            os.kill(os.getpid(), signal.SIGTERM)
            deadline = time_module.perf_counter() + 5.0
            while not drain.triggered:
                assert time_module.perf_counter() < deadline
                time_module.sleep(0.01)
            assert drain.triggered  # no KeyboardInterrupt, just the flag

    def test_noop_off_main_thread(self):
        import signal
        import threading

        from repro.serve.loadgen import GracefulDrain

        before = {s: signal.getsignal(s) for s in GracefulDrain.SIGNALS}
        outcome = {}

        def enter():
            drain = GracefulDrain()
            with drain:
                outcome["installed"] = drain._installed

        thread = threading.Thread(target=enter)
        thread.start()
        thread.join(timeout=5.0)
        assert outcome["installed"] is False
        for signum, previous in before.items():
            assert signal.getsignal(signum) == previous

    def test_closed_loop_honours_stop_event(self, toy_server):
        import threading
        import time as time_module

        server, _ = toy_server
        stop = threading.Event()
        stop.set()  # already drained before the run begins
        begin = time_module.perf_counter()
        stats = closed_loop(
            server,
            "toy",
            64,
            concurrency=2,
            duration_seconds=10.0,
            stop_event=stop,
        )
        assert time_module.perf_counter() - begin < 5.0  # ended early
        assert stats["client_errors"] == 0
