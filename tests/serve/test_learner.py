"""Live continual learning: stream, label state, snapshots, the loop.

Cheap unit tests cover the deterministic stream (drift / flip hooks),
the decayed win-count labeling state, snapshot versioning through the
content-addressed cache, and scenario validation.  The learner loop is
exercised against a real in-process server — one clean window and one
poisoned window that must trigger an automatic, bit-exact rollback —
plus a pool-backend hot-swap and a tiny seeded end-to-end run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.artifacts import ModelCache
from repro.core.errors import ServingError
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultConfig
from repro.serve.batcher import BatchPolicy
from repro.serve.chaos import (
    LEARNING_SCENARIOS,
    SCENARIOS,
    get_learning_scenario,
)
from repro.serve.engine import InferenceServer
from repro.serve.learner import (
    ContinualLearner,
    LabeledStream,
    LearnerSLO,
    LearningScenario,
    SnapshotStore,
    _LabelState,
    clone_network,
    run_learn_serve,
)
from repro.serve.workers import ShardedPool
from repro.snn.batched import predict_batch


# ---------------------------------------------------------------------------
# LabeledStream
# ---------------------------------------------------------------------------


class TestLabeledStream:
    def test_windows_are_deterministic(self, digits_small):
        train_set, _ = digits_small
        a = LabeledStream(train_set, window_size=12, seed=5)
        b = LabeledStream(train_set, window_size=12, seed=5)
        for _ in range(3):
            img_a, lab_a, idx_a = a.next_window()
            img_b, lab_b, idx_b = b.next_window()
            np.testing.assert_array_equal(img_a, img_b)
            np.testing.assert_array_equal(lab_a, lab_b)
            assert idx_a == idx_b

    def test_drift_perturbs_images_only(self, digits_small):
        train_set, _ = digits_small
        clean = LabeledStream(train_set, window_size=12, seed=5)
        drifted = LabeledStream(train_set, window_size=12, seed=5)
        drifted.drift_magnitude = 0.4
        img_c, lab_c, idx_c = clean.next_window()
        img_d, lab_d, idx_d = drifted.next_window()
        assert idx_c == idx_d, "fault toggles must not perturb the index stream"
        np.testing.assert_array_equal(lab_c, lab_d)
        assert not np.array_equal(img_c, img_d)
        high = max(float(np.max(train_set.images)), 1.0)
        assert float(np.min(img_d)) >= 0.0
        assert float(np.max(img_d)) <= high

    def test_flip_rotates_every_label(self, digits_small):
        train_set, _ = digits_small
        clean = LabeledStream(train_set, window_size=12, seed=5)
        flipped = LabeledStream(train_set, window_size=12, seed=5)
        flipped.flip_labels = True
        _, lab_c, _ = clean.next_window()
        _, lab_f, _ = flipped.next_window()
        np.testing.assert_array_equal(lab_f, (lab_c + 1) % clean.n_labels)

    def test_validation(self, digits_small):
        train_set, _ = digits_small
        with pytest.raises(ServingError):
            LabeledStream(train_set.take(0))
        with pytest.raises(ServingError):
            LabeledStream(train_set, window_size=0)


# ---------------------------------------------------------------------------
# SLO / scenario validation and registry
# ---------------------------------------------------------------------------


class TestSLOAndScenario:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gate_retention": 1.5},
            {"rollback_retention": -0.1},
            {"gate_tolerance": -0.01},
        ],
    )
    def test_bad_slo_raises(self, kwargs):
        with pytest.raises(ServingError):
            LearnerSLO(**kwargs).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"windows": 0},
            {"window_size": 1},
            {"shadow_fraction": 1.0},
            {"jobs": -1},
            {"concurrency": 0},
            {"drift_magnitude": 1.5},
            {"weight_ber": -0.1},
            {"windows": 4, "flip_windows": (4,)},
        ],
    )
    def test_bad_scenario_raises(self, kwargs):
        with pytest.raises(ServingError):
            LearningScenario(
                scenario_id="x", description="bad", **kwargs
            ).validate()

    def test_registry_is_valid_and_disjoint_from_serving_chaos(self):
        for sid, scenario in LEARNING_SCENARIOS.items():
            assert scenario.scenario_id == sid
            scenario.validate()
        assert not set(LEARNING_SCENARIOS) & set(SCENARIOS)

    def test_unknown_scenario_lists_known_ids(self):
        with pytest.raises(ServingError, match="drift-storm"):
            get_learning_scenario("nope")


# ---------------------------------------------------------------------------
# _LabelState
# ---------------------------------------------------------------------------


class TestLabelState:
    def test_from_labels_round_trips(self):
        labels = np.array([0, 2, 1, -1])
        state = _LabelState.from_labels(labels, n_labels=3)
        out = state.labels(prior=labels)
        np.testing.assert_array_equal(out, labels)

    def test_decay_lets_fresh_evidence_relabel(self):
        state = _LabelState.from_labels(np.array([0]), n_labels=2, decay=0.5)
        for _ in range(4):
            state.observe([0], [1])
        assert state.labels()[0] == 1

    def test_silent_neuron_keeps_prior(self):
        state = _LabelState(2, 3, decay=0.5)
        state.observe([0], [2])  # neuron 1 never wins
        out = state.labels(prior=np.array([1, 1]))
        assert out[0] == 2 and out[1] == 1
        np.testing.assert_array_equal(
            _LabelState(1, 3).labels(), np.array([-1])
        )

    def test_clone_is_independent(self):
        state = _LabelState.from_labels(np.array([0, 1]), n_labels=2)
        twin = state.clone()
        twin.observe([0, 1], [1, 0])
        np.testing.assert_array_equal(
            state.labels(), np.array([0, 1])
        )

    def test_bad_decay_raises(self):
        with pytest.raises(ServingError):
            _LabelState(1, 2, decay=1.5)


# ---------------------------------------------------------------------------
# clone_network / SnapshotStore
# ---------------------------------------------------------------------------


class TestCloneNetwork:
    def test_clone_predicts_identically_but_shares_nothing(
        self, trained_snn, digits_small
    ):
        _, test_set = digits_small
        twin = clone_network(trained_snn)
        np.testing.assert_array_equal(
            predict_batch(twin, test_set.images[:16], seed=3),
            predict_batch(trained_snn, test_set.images[:16], seed=3),
        )
        before = np.array(trained_snn.weights)
        twin.weights += 1.0
        twin.population.thresholds[:] += 1.0
        twin.neuron_labels[:] = 0
        np.testing.assert_array_equal(trained_snn.weights, before)
        assert not np.array_equal(
            np.asarray(trained_snn.thresholds), np.asarray(twin.thresholds)
        )


class TestSnapshotStore:
    @pytest.fixture()
    def store(self, tmp_path, trained_snn, digits_small):
        _, test_set = digits_small
        return SnapshotStore(
            ModelCache(tmp_path / "snaps"), "live", test_set.take(16)
        )

    def test_round_trip_is_bit_exact(self, store, trained_snn):
        store.save(0, trained_snn)
        restored = store.load(0)
        np.testing.assert_array_equal(restored.weights, trained_snn.weights)
        np.testing.assert_array_equal(
            np.asarray(restored.thresholds), np.asarray(trained_snn.thresholds)
        )
        np.testing.assert_array_equal(
            restored.neuron_labels, trained_snn.neuron_labels
        )

    def test_epochs_must_increase(self, store, trained_snn):
        store.save(1, trained_snn)
        with pytest.raises(ServingError, match="must increase"):
            store.save(1, trained_snn)
        with pytest.raises(ServingError, match="must increase"):
            store.save(0, trained_snn)
        store.save(2, trained_snn)
        assert store.epochs() == [1, 2]

    def test_unknown_epoch_raises(self, store):
        with pytest.raises(ServingError, match="no snapshot"):
            store.load(7)

    def test_corrupt_snapshot_is_evicted_not_served(self, store, trained_snn):
        key = store.save(0, trained_snn)
        path = store.cache.path_for(key)
        path.write_bytes(b"bit rot")
        before = store.cache.stats.corrupt_evictions
        with pytest.raises(ServingError, match="digest"):
            store.load(0)
        assert store.cache.stats.corrupt_evictions == before + 1
        assert not path.exists()


# ---------------------------------------------------------------------------
# ContinualLearner against a real in-process server
# ---------------------------------------------------------------------------


def _make_server(network, images, seed=0):
    return InferenceServer.from_models(
        {"live": clone_network(network)},
        policy=BatchPolicy(max_batch=8, max_wait_us=500.0),
        images=images,
        seed=seed,
    )


class TestContinualLearner:
    def test_requires_labeled_baseline(self, trained_snn, digits_small):
        train_set, test_set = digits_small
        unlabeled = clone_network(trained_snn)
        unlabeled.neuron_labels = None
        server = _make_server(trained_snn, test_set.images)
        try:
            with pytest.raises(ServingError, match="labeled baseline"):
                ContinualLearner(
                    server,
                    "live",
                    unlabeled,
                    LabeledStream(train_set, window_size=8),
                    test_set.take(8),
                )
        finally:
            server.close()

    def test_clean_window_promotes_or_rejects_coherently(
        self, trained_snn, digits_small, tmp_path
    ):
        train_set, test_set = digits_small
        server = _make_server(trained_snn, test_set.images)
        store = SnapshotStore(
            ModelCache(tmp_path / "snaps"), "live", test_set.take(16)
        )
        try:
            learner = ContinualLearner(
                server,
                "live",
                trained_snn,
                LabeledStream(train_set, window_size=16, seed=0),
                test_set.take(16),
                slo=LearnerSLO(gate_retention=0.0, rollback_retention=0.0),
                store=store,
                seed=0,
            )
            record = learner.run_window()
            # gate_retention 0 always promotes; rollback_retention 0
            # never rolls back — the window must land as promoted.
            assert record["outcome"] == "promoted"
            assert record["shadow"]["n"] >= 1
            assert learner.epoch == learner.serving_epoch == 1
            assert learner.staleness == 0
            assert store.epochs() == [0, 1]
            # Serving really swapped: served answers equal direct
            # predictions of the promoted network.
            indices = list(range(8))
            served = server.predict_many("live", indices=indices)
            expected = predict_batch(
                learner._last_good_network,
                np.asarray(test_set.images),
                indices=indices,
                seed=0,
            )
            np.testing.assert_array_equal(served, expected)
            state = learner.state()
            assert state["promotions"] == 1 and state["rollbacks"] == 0
            assert state["snapshots"]["epochs"] == [0, 1]
            assert learner.health()["retention_slo_ok"] is True
        finally:
            server.close()

    def test_poisoned_update_rolls_back_bit_exactly(
        self, trained_snn, digits_small, tmp_path
    ):
        """SRAM bit errors trash a candidate; the guard must roll the
        serving model back to the baseline snapshot, bit for bit."""
        train_set, test_set = digits_small
        server = _make_server(trained_snn, test_set.images)
        store = SnapshotStore(
            ModelCache(tmp_path / "snaps"), "live", test_set.take(24)
        )
        baseline_direct = predict_batch(
            trained_snn, np.asarray(test_set.images), indices=list(range(8)), seed=0
        )
        try:
            learner = ContinualLearner(
                server,
                "live",
                trained_snn,
                LabeledStream(train_set, window_size=16, seed=0),
                test_set.take(24),
                slo=LearnerSLO(
                    gate_retention=0.0,
                    gate_tolerance=0.0,
                    rollback_retention=1.0,
                ),
                store=store,
                seed=0,
                shadow_fraction=0.0,
                update_injector=FaultInjector(
                    FaultConfig.sram_ber(0.5, seed=0)
                ),
            )
            record = learner.run_window()
            assert record["ber"] is True
            assert record["outcome"] == "rolled-back"
            rollback = record["rollback"]
            assert rollback["from_epoch"] == 1 and rollback["to_epoch"] == 0
            assert rollback["source"] == "snapshot"
            assert rollback["baseline_restored"] is True
            assert learner.rollbacks == 1
            assert learner.rollbacks_restored is True
            assert learner.serving_epoch == 0
            # Two swaps: the bad promotion and the rollback.
            assert learner.hot_swaps == 2
            # The server answers exactly as the baseline did.
            served = server.predict_many("live", indices=list(range(8)))
            np.testing.assert_array_equal(served, baseline_direct)
            # Learning state reverted too: weights match the baseline.
            np.testing.assert_array_equal(
                learner.network.weights, trained_snn.weights
            )
            health = learner.health()
            assert health["rollbacks"] == 1
            assert health["last_rollback_epoch"] == 1
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Pool-backend hot swap
# ---------------------------------------------------------------------------


class TestPoolHotSwap:
    def test_hot_swap_rolls_shards_onto_new_weights(
        self, trained_snn, digits_small
    ):
        _, test_set = digits_small
        images = np.asarray(test_set.images)
        old = clone_network(trained_snn)
        new = clone_network(trained_snn)
        new.neuron_labels = (new.neuron_labels + 1) % new.config.n_labels
        pool = ShardedPool({"live": old}, jobs=2, images=images, seed=0)
        try:
            with pytest.raises(ServingError, match="unknown model"):
                pool.hot_swap({"ghost": new})
            with pytest.raises(ServingError, match="at least one"):
                pool.hot_swap({})
            result = pool.hot_swap({"live": new})
            assert result["swapped"] == ["live"]
            assert all(g >= 1 for g in result["generations"].values())
            stats = pool.stats()
            assert stats["hot_swaps"] == 1
            assert stats["planned_retires"] == 2
            indices = list(range(8))
            got = pool.run_batch("live", indices, images=None)
            expected = predict_batch(new, images, indices=indices, seed=0)
            np.testing.assert_array_equal(got, expected)
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# End to end (tiny, seeded)
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def test_steady_run_holds_the_learning_invariants(self, tmp_path):
        payload = run_learn_serve(
            "steady",
            seed=0,
            jobs=0,
            windows=2,
            window_size=16,
            concurrency=2,
            snapshot_dir=str(tmp_path / "snaps"),
        )
        chaos = payload["chaos"]
        assert chaos["scenario"] == "steady"
        invariants = chaos["invariants"]
        assert invariants["no_lost_requests"] is True
        assert invariants["no_duplicate_responses"] is True
        assert invariants["untouched_tenant_bit_identical"] is True
        assert invariants["learner_serving_consistent"] is True
        assert invariants["supervisor_recovered"] is True
        learner = payload["learner"]
        assert learner["windows"] == 2
        assert len(learner["windows_log"]) == 2
        assert (
            learner["promotions"] + learner["rejections"] == 2
            or learner["rollbacks"] >= 1
        )
        assert payload["health"]["learner"]["epoch"] == learner["epoch"]
        assert chaos["outcomes"]["ok"] > 0
