"""Integration tests: full pipelines across modules.

These exercise the paper's top-level claims end to end on small
synthetic workloads: train both models, compare accuracy orderings,
run the hardware comparisons, and render the report machinery.
"""

import numpy as np
import pytest

from repro import (
    SNNTrainer,
    evaluate_mlp,
    mnist_mlp_config,
    mnist_snn_config,
    train_mlp,
)
from repro.analysis.report import render_result, render_table
from repro.core.experiment import ExperimentResult
from repro.hardware.folded import folded_mlp, folded_snn_wot
from repro.snn.snn_wot import relabel_for_counts


class TestAccuracyOrdering:
    def test_mlp_beats_snn_stdp(self, digits_small, trained_mlp, trained_snn):
        # The paper's conclusion (1): MLP+BP accuracy is significantly
        # higher than SNN+STDP on the same task.
        _, test_set = digits_small
        mlp_accuracy = evaluate_mlp(trained_mlp, test_set).accuracy
        snn_accuracy = SNNTrainer(trained_snn).evaluate(test_set).accuracy
        assert mlp_accuracy > snn_accuracy

    def test_both_models_well_above_chance(self, digits_small, trained_mlp, trained_snn):
        _, test_set = digits_small
        assert evaluate_mlp(trained_mlp, test_set).accuracy > 0.7
        assert SNNTrainer(trained_snn).evaluate(test_set).accuracy > 0.4

    def test_snn_wot_in_same_regime_as_wt(self, digits_small, trained_snn):
        train_set, test_set = digits_small
        wot = relabel_for_counts(trained_snn, train_set)
        wt_acc = SNNTrainer(trained_snn).evaluate(test_set).accuracy
        wot_acc = wot.evaluate(test_set).accuracy
        assert abs(wt_acc - wot_acc) < 0.3


class TestHardwareConclusions:
    def test_folded_mlp_cheaper_and_leaner_than_folded_snn(self):
        # The paper's conclusion (2) for realistic (folded) footprints.
        mlp_cfg = mnist_mlp_config()
        snn_cfg = mnist_snn_config()
        for ni in (1, 4, 8, 16):
            mlp = folded_mlp(mlp_cfg, ni)
            snn = folded_snn_wot(snn_cfg, ni)
            assert mlp.total_area_mm2 < snn.total_area_mm2
            assert mlp.energy_per_image_uj < snn.energy_per_image_uj

    def test_footprints_compatible_with_embedded(self):
        # Folded designs land in the few-mm^2 regime the paper targets.
        report = folded_mlp(mnist_mlp_config(), 4)
        assert report.total_area_mm2 < 10.0


class TestWorkloadGeneralization:
    def test_shapes_workload_trains(self):
        from repro.core.config import mpeg7_mlp_config
        from repro.datasets.shapes import load_shapes

        train_set, test_set = load_shapes(n_train=240, n_test=80)
        mlp = train_mlp(mpeg7_mlp_config(epochs=100, learning_rate=0.5), train_set, epochs=100, batch_size=16)
        assert evaluate_mlp(mlp, test_set).accuracy > 0.5

    def test_spoken_workload_trains(self):
        from repro.core.config import sad_mlp_config
        from repro.datasets.spoken import load_spoken

        train_set, test_set = load_spoken(n_train=240, n_test=80)
        mlp = train_mlp(sad_mlp_config(epochs=100, learning_rate=0.5), train_set, epochs=100, batch_size=16)
        assert evaluate_mlp(mlp, test_set).accuracy > 0.4


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table([{"a": 1, "bb": 2.5}, {"a": 30, "bb": 4}])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert len({len(line) for line in lines[:1]}) == 1

    def test_render_empty_rows(self):
        assert "(no rows)" in render_table([])

    def test_render_result_includes_paper_section(self):
        result = ExperimentResult(
            experiment_id="x", title="X",
            rows=[{"v": 1}], paper_rows=[{"v": 2}], notes="n",
        )
        text = render_result(result)
        assert "measured:" in text and "paper:" in text and "notes: n" in text

    def test_hardware_experiments_run_fast(self):
        # All pure-model experiments regenerate without training.
        from repro.analysis.report import run_and_render

        for experiment_id in ("table4", "table5", "table6", "table7", "table8", "table9"):
            text = run_and_render(experiment_id)
            assert "measured:" in text


class TestPublicAPI:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_examples_are_importable_scripts(self):
        # Examples must at least parse (they guard execution on main).
        import ast
        import pathlib

        examples = pathlib.Path(__file__).resolve().parents[2] / "examples"
        scripts = sorted(examples.glob("*.py"))
        assert len(scripts) >= 3
        for script in scripts:
            ast.parse(script.read_text())
