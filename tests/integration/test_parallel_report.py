"""Parallel report must be byte-identical to serial (modulo timing).

Exercises the ``--jobs N`` path end to end on fast (hardware-model)
experiments: deterministic id-ordered output, graceful serial fallback
on pool failure, and the CLI flag plumbing.
"""

from __future__ import annotations

import pytest

import repro.analysis as analysis
from repro.cli import build_parser, main
from repro.core.errors import ExperimentError
from repro.core.experiment import run_experiment_by_id, run_experiments

#: Fast, training-free experiments (hardware models / static tables).
FAST_IDS = ["table4", "table6", "fig5"]


def _strip_timing(text: str) -> str:
    """Drop the wall-clock lines (the only legitimately varying part)."""
    return "\n".join(
        line for line in text.splitlines() if not line.startswith("elapsed:")
    )


class TestParallelEquivalence:
    def test_jobs2_report_identical_to_serial(self):
        serial = analysis.full_report(FAST_IDS)
        parallel = analysis.full_report(FAST_IDS, jobs=2)
        assert _strip_timing(parallel) == _strip_timing(serial)

    def test_results_come_back_in_requested_order(self):
        ids = ["table6", "table4"]  # deliberately not sorted
        results = run_experiments(ids, jobs=2)
        assert [r.experiment_id for r in results] == ids

    def test_serial_and_parallel_rows_equal(self):
        serial = run_experiments(FAST_IDS, jobs=1)
        parallel = run_experiments(FAST_IDS, jobs=3)
        for a, b in zip(serial, parallel):
            assert a.rows == b.rows
            assert a.paper_rows == b.paper_rows
            assert a.notes == b.notes

    def test_unknown_id_propagates_not_swallowed(self):
        with pytest.raises(ExperimentError):
            run_experiments(["no-such-experiment"], jobs=2)

    def test_worker_entry_point_is_self_registering(self):
        result = run_experiment_by_id("table6")
        assert result.experiment_id == "table6"
        assert result.rows


class TestPoolFallback:
    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        import concurrent.futures

        def broken_pool(*args, **kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", broken_pool
        )
        results = run_experiments(["table6", "table4"], jobs=2)
        assert [r.experiment_id for r in results] == ["table6", "table4"]

    def test_negative_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiments(["table6"], jobs=-1)

    def test_jobs_zero_and_one_run_serial(self):
        for jobs in (0, 1):
            results = run_experiments(["table6"], jobs=jobs)
            assert results[0].experiment_id == "table6"


class TestCLIPlumbing:
    def test_report_accepts_jobs_and_cache_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["report", "table6", "--jobs", "4", "--no-cache", "--cache-dir", "/tmp/x"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/x"

    def test_report_jobs_runs_end_to_end(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        exit_code = main(["report", "table6", "fig5", "--jobs", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.index("table6") < captured.out.index("fig5")

    def test_no_cache_flag_sets_env(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        exit_code = main(["report", "table6", "--no-cache"])
        capsys.readouterr()
        assert exit_code == 0
        import os

        assert os.environ.get("REPRO_NO_CACHE") == "1"
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
