"""Tests (incl. property-based) for the Q-format fixed-point helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.fixedpoint.qformat import (
    ACTIVATION_Q8,
    SNN_WEIGHT_Q8,
    WEIGHT_Q8,
    QFormat,
    quantization_snr_db,
)


class TestFormatProperties:
    def test_weight_q8_is_8_bits(self):
        assert WEIGHT_Q8.total_bits == 8
        assert WEIGHT_Q8.signed

    def test_activation_q8_is_8_bits_unsigned(self):
        assert ACTIVATION_Q8.total_bits == 8
        assert not ACTIVATION_Q8.signed
        assert ACTIVATION_Q8.min_value == 0.0

    def test_snn_weight_q8_covers_255(self):
        assert SNN_WEIGHT_Q8.max_code == 255
        assert SNN_WEIGHT_Q8.scale == 1.0

    def test_code_bounds_signed(self):
        fmt = QFormat(3, 4, signed=True)
        assert fmt.max_code == 127
        assert fmt.min_code == -128

    def test_scale(self):
        assert QFormat(0, 8, signed=False).scale == 1 / 256

    def test_invalid_widths_rejected(self):
        with pytest.raises(ConfigError):
            QFormat(-1, 4)
        with pytest.raises(ConfigError):
            QFormat(40, 40)

    def test_str(self):
        assert str(WEIGHT_Q8) == "sQ2.5"


class TestQuantize:
    def test_exact_grid_values_roundtrip(self):
        fmt = QFormat(2, 5)
        values = np.array([0.0, 0.5, -1.0, 3.96875])
        assert np.array_equal(fmt.quantize(values), values)

    def test_saturation_high(self):
        fmt = QFormat(2, 5)
        assert fmt.quantize(np.array([100.0]))[0] == fmt.max_value

    def test_saturation_low(self):
        fmt = QFormat(2, 5)
        assert fmt.quantize(np.array([-100.0]))[0] == fmt.min_value

    def test_unsigned_clamps_negative_to_zero(self):
        assert ACTIVATION_Q8.quantize(np.array([-0.5]))[0] == 0.0

    def test_quantize_code_dtype(self):
        codes = WEIGHT_Q8.quantize_code(np.array([0.1, -0.1]))
        assert codes.dtype == np.int64

    def test_representable_mask(self):
        fmt = QFormat(2, 2)
        mask = fmt.representable(np.array([0.25, 0.3]))
        assert mask.tolist() == [True, False]


class TestQuantizeProperties:
    @given(
        st.lists(
            st.floats(min_value=-3.9, max_value=3.9, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_quantization_error_bounded_by_half_lsb(self, values):
        fmt = WEIGHT_Q8
        arr = np.array(values)
        error = np.abs(fmt.quantize(arr) - arr)
        assert np.all(error <= fmt.scale / 2 + 1e-12)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_quantize_is_idempotent(self, values):
        fmt = QFormat(3, 4)
        once = fmt.quantize(np.array(values))
        twice = fmt.quantize(once)
        assert np.array_equal(once, twice)

    @given(st.integers(min_value=-128, max_value=127))
    @settings(max_examples=50, deadline=None)
    def test_code_dequantize_roundtrip(self, code):
        fmt = QFormat(2, 5)
        value = fmt.dequantize(np.array([code]))
        assert fmt.quantize_code(value)[0] == code

    @given(
        st.lists(
            st.floats(min_value=-4, max_value=4, allow_nan=False),
            min_size=2, max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_quantize_monotone(self, values):
        fmt = WEIGHT_Q8
        arr = np.sort(np.array(values))
        quantized = fmt.quantize(arr)
        assert np.all(np.diff(quantized) >= 0)


class TestSNR:
    def test_snr_high_for_8bit_weights(self):
        # Trained-weight-like values must survive 8-bit quantization
        # (the basis of the paper's 96.65% vs 97.65% result).
        rng = np.random.default_rng(0)
        weights = rng.normal(0, 0.5, size=1000)
        assert quantization_snr_db(weights, WEIGHT_Q8) > 25.0

    def test_snr_infinite_for_grid_values(self):
        values = WEIGHT_Q8.quantize(np.random.default_rng(1).normal(0, 1, 100))
        assert quantization_snr_db(values, WEIGHT_Q8) == float("inf")
