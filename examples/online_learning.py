"""Online learning: the SNN+STDP asset the paper highlights.

The paper's conclusion is that SNN+STDP accelerators shine where
*permanent online learning* matters: the STDP circuit is cheap
(Table 9) and the network can learn while being used.  This example
demonstrates that: the SNN starts untrained, then learns class by
class from a stream of labeled-after-the-fact images while its
accuracy on a held-out set is tracked — including recovering when a
new, never-seen class appears mid-stream (the adaptivity story).

It also prints the hardware overhead of attaching the STDP circuit,
and a Figure 3-style spike raster of one presentation.

Run:  python examples/online_learning.py
"""

import numpy as np

from repro import SNNTrainer, SpikingNetwork, load_digits, mnist_snn_config
from repro.hardware import stdp_overhead
from repro.snn.labeling import NeuronLabeler


def spike_raster(network: SpikingNetwork, image: np.ndarray) -> str:
    """A coarse ASCII raster of input spikes (Figure 3, left)."""
    train = network.coder.encode(image, rng=0)
    n_bins = 50
    lines = []
    sample_inputs = np.linspace(0, network.config.n_inputs - 1, 20).astype(int)
    for pixel in sample_inputs:
        mask = train.inputs == pixel
        bins = (train.times[mask] / train.duration * n_bins).astype(int)
        row = ["."] * n_bins
        for b in bins:
            row[min(b, n_bins - 1)] = "|"
        lines.append(f"  input {pixel:>3}: {''.join(row)}")
    return "\n".join(lines)


def main() -> None:
    train_set, test_set = load_digits(n_train=1200, n_test=300)
    config = mnist_snn_config(epochs=1).with_neurons(100)
    network = SpikingNetwork(config)
    trainer = SNNTrainer(network)

    print("Spike raster of one image presentation (cf. paper Figure 3):")
    print(spike_raster(network, train_set.images[0]))

    # Stream phase 1: only digits 0-7 are seen.
    seen = np.flatnonzero(train_set.labels < 8)
    held_out = np.flatnonzero(train_set.labels >= 8)
    phase1 = train_set.subset(seen)
    print("\nPhase 1: learning online from digits 0-7 ...")
    trainer.train(phase1)
    network.equalize_thresholds()
    labeler = NeuronLabeler(config.n_neurons, config.n_labels)
    rng = np.random.default_rng(0)
    for image, label in zip(phase1.images, phase1.labels):
        winner = network.present_image(image, rng=rng).readout()
        labeler.record(winner, int(label))
    network.neuron_labels = labeler.labels()
    acc1 = trainer.evaluate(test_set).accuracy_percent
    print(f"  accuracy on the full 10-class test set: {acc1:.1f}% "
          "(digits 8-9 unseen, necessarily wrong)")

    # Stream phase 2: digits 8-9 appear; learning continues online.
    print("Phase 2: digits 8-9 appear in the stream; STDP keeps learning ...")
    phase2 = train_set.subset(np.concatenate([held_out, seen[: len(held_out)]]))
    trainer.train(phase2, initialize=False, calibrate=False)
    network.equalize_thresholds()
    for image, label in zip(phase2.images, phase2.labels):
        winner = network.present_image(image, rng=rng).readout()
        labeler.record(winner, int(label))
    network.neuron_labels = labeler.labels()
    acc2 = trainer.evaluate(test_set).accuracy_percent
    print(f"  accuracy after adapting online: {acc2:.1f}% "
          f"({acc2 - acc1:+.1f}% from the new classes)")

    print("\nHardware overhead of the STDP online-learning circuit (Table 9):")
    for ni in (1, 4, 8, 16):
        o = stdp_overhead(mnist_snn_config(), ni)
        print(
            f"  ni={ni:>2}: area x{o['area_ratio']:.2f}, "
            f"delay x{o['delay_ratio']:.2f}, energy x{o['energy_ratio']:.2f}"
        )
    print("\nThe paper's takeaway: the overhead is small, so applications")
    print("needing permanent online learning (and tolerating moderate")
    print("accuracy) are excellent SNN+STDP candidates.")


if __name__ == "__main__":
    main()
