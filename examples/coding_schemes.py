"""Spike coding schemes: rate vs temporal coding (Figure 14, Sec 4.2.2).

Compares the four pixel-to-spike conversions on the same SNN:

* Poisson rate coding (the software reference),
* Gaussian rate coding (what the hardware's 4-LFSR CLT generator
  produces — the paper found it costs no accuracy),
* rank-order coding and time-to-first-spike coding (the temporal
  schemes the paper found significantly less accurate).

Also demonstrates the bit-exact hardware Gaussian RNG driving spike
intervals.

Run:  python examples/coding_schemes.py
"""

from repro import SNNTrainer, SpikingNetwork, load_digits, mnist_snn_config
from repro.hardware import HardwareGaussian
from repro.snn import (
    GaussianCoder,
    PoissonCoder,
    RankOrderCoder,
    TimeToFirstSpikeCoder,
)


def main() -> None:
    train_set, test_set = load_digits(n_train=1000, n_test=250)
    config = mnist_snn_config(epochs=2).with_neurons(100)
    duration = config.t_period
    interval = config.min_spike_interval

    coders = [
        PoissonCoder(duration, interval),
        GaussianCoder(duration, interval),
        RankOrderCoder(duration, interval),
        TimeToFirstSpikeCoder(duration, interval),
    ]
    print(f"{'coding scheme':<22}{'spikes/image':>14}{'accuracy':>10}")
    print("-" * 46)
    for coder in coders:
        spikes = coder.encode(train_set.images[0], rng=0).n_spikes
        network = SpikingNetwork(config, coder=coder)
        trainer = SNNTrainer(network)
        trainer.fit(train_set)
        accuracy = trainer.evaluate(test_set).accuracy_percent
        print(f"{coder.name:<22}{spikes:>14}{accuracy:>9.1f}%")

    print("\nPaper's findings to compare against: Gaussian ~ Poisson")
    print("(Section 4.2.2), temporal coding well below rate coding")
    print("(Figure 14: 82.14% vs 91.82% at 300 neurons).")

    print("\nHardware Gaussian RNG (4 x 31-bit LFSR, x^31+x^3+1):")
    rng = HardwareGaussian(seeds=[1, 0x1234567, 0x7654321, 0x2468ACE])
    intervals = rng.intervals(mean=50.0, n=8)
    formatted = ", ".join(f"{v:.1f}" for v in intervals)
    print(f"  spike intervals at 20 Hz mean rate (ms): {formatted}")


if __name__ == "__main__":
    main()
