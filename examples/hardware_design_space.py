"""Hardware design-space exploration (the Table 7 sweep).

Walks the fold factor ni through 1, 4, 8, 16 and the fully expanded
designs for all three accelerators (MLP, SNNwot, SNNwt), printing
area / delay / cycles / energy, the SNN-over-MLP cost ratios, and the
GPU comparison — the data behind the paper's central hardware claims.

Run:  python examples/hardware_design_space.py
"""

from repro.core.config import mnist_mlp_config, mnist_snn_config
from repro.hardware import (
    FOLD_FACTORS,
    MLP_GPU,
    SNN_GPU,
    expanded_mlp,
    expanded_snn_wot,
    expanded_snn_wt,
    folded_mlp,
    folded_snn_wot,
    folded_snn_wt,
)


def main() -> None:
    mlp_cfg = mnist_mlp_config()
    snn_cfg = mnist_snn_config()

    print("Folded design points (65nm cost model):")
    header = f"{'design':<18}{'ni':>4}{'area mm2':>10}{'delay ns':>10}{'cycles':>8}{'uJ/img':>10}"
    print(header)
    print("-" * len(header))
    for ni in FOLD_FACTORS:
        for fn, cfg in (
            (folded_mlp, mlp_cfg),
            (folded_snn_wot, snn_cfg),
            (folded_snn_wt, snn_cfg),
        ):
            r = fn(cfg, ni)
            print(
                f"{r.name.split(' ni=')[0]:<18}{ni:>4}"
                f"{r.total_area_mm2:>10.2f}{r.delay_ns:>10.2f}"
                f"{r.cycles_per_image:>8}{r.energy_per_image_uj:>10.3g}"
            )
    print("\nExpanded designs:")
    for fn, cfg in (
        (expanded_mlp, mlp_cfg),
        (expanded_snn_wot, snn_cfg),
        (expanded_snn_wt, snn_cfg),
    ):
        print(f"  {fn(cfg).summary()}")

    print("\nKey ratios (the paper's Section 4.3.3 conclusions):")
    mlp16 = folded_mlp(mlp_cfg, 16)
    wot16 = folded_snn_wot(snn_cfg, 16)
    mlp_exp = expanded_mlp(mlp_cfg)
    wot_exp = expanded_snn_wot(snn_cfg)
    print(
        f"  expanded: MLP / SNNwot area = "
        f"{mlp_exp.total_area_mm2 / wot_exp.total_area_mm2:.2f}x (SNN wins)"
    )
    print(
        f"  folded ni=16: SNNwot / MLP area = "
        f"{wot16.total_area_mm2 / mlp16.total_area_mm2:.2f}x (MLP wins; paper 2.57x)"
    )
    print(
        f"  folded ni=16: SNNwot / MLP energy = "
        f"{wot16.energy_per_image_uj / mlp16.energy_per_image_uj:.2f}x (paper 2.41x)"
    )

    print("\nSpeedup / energy benefit over the K20M GPU (Table 8):")
    for label, report, gpu in (
        ("MLP ni=16", mlp16, MLP_GPU),
        ("SNNwot ni=16", wot16, SNN_GPU),
        ("MLP expanded", mlp_exp, MLP_GPU),
        ("SNNwot expanded", wot_exp, SNN_GPU),
    ):
        print(
            f"  {label:<16} speedup {gpu.speedup_of(report):>8.1f}x   "
            f"energy {gpu.energy_benefit_of(report):>9.1f}x"
        )


if __name__ == "__main__":
    main()
