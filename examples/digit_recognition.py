"""Digit recognition: the full Table 3 accuracy comparison.

Trains all four model variants the paper compares on MNIST —
SNN+STDP with timing (SNNwt), the simplified timing-free SNNwot,
the hybrid SNN+BP, and MLP+BP (float and 8-bit fixed point) — and
prints the comparison table next to the paper's numbers.

Run:  python examples/digit_recognition.py
"""

from repro.analysis import run_and_render


def main() -> None:
    print("Regenerating Table 3 (this trains five models; a few minutes)...\n")
    print(run_and_render("table3"))


if __name__ == "__main__":
    main()
