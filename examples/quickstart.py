"""Quickstart: train both accelerator models and compare them.

Trains the paper's two contenders — MLP+BP (machine-learning) and
SNN+STDP (neuroscience) — on the synthetic digit workload, compares
their accuracy, and prices both as folded hardware accelerators.

Run:  python examples/quickstart.py
"""

from repro import (
    SNNTrainer,
    SpikingNetwork,
    evaluate_mlp,
    load_digits,
    mnist_mlp_config,
    mnist_snn_config,
    train_mlp,
)
from repro.hardware import folded_mlp, folded_snn_wot


def main() -> None:
    print("Generating the digits workload (MNIST substitute)...")
    train_set, test_set = load_digits(n_train=1000, n_test=300)

    print("Training MLP+BP (28x28-100-10)...")
    mlp = train_mlp(mnist_mlp_config(epochs=25), train_set)
    mlp_result = evaluate_mlp(mlp, test_set)
    print(f"  MLP+BP: {mlp_result.summary()}")

    print("Training SNN+STDP (28x28-100, scaled down for the quickstart)...")
    snn = SpikingNetwork(mnist_snn_config(epochs=3).with_neurons(100))
    trainer = SNNTrainer(snn)
    trainer.fit(train_set)
    snn_result = trainer.evaluate(test_set)
    print(f"  SNN+STDP: {snn_result.summary()}")

    gap = mlp_result.accuracy_percent - snn_result.accuracy_percent
    print(f"\nAccuracy gap (MLP - SNN): {gap:.2f}%.")
    print("(The paper reports 5.83% at full scale — 300 SNN neurons and")
    print(" 60k training images; this quickstart uses 100 neurons and 1k")
    print(" images for speed. See benchmarks/test_table3_accuracy.py for")
    print(" the full-size comparison.)")

    print("\nHardware cost at fold factor ni=16 (65nm cost model):")
    for report in (
        folded_mlp(mnist_mlp_config(), 16),
        folded_snn_wot(mnist_snn_config(), 16),
    ):
        print(f"  {report.summary()}")


if __name__ == "__main__":
    main()
