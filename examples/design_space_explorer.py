"""Designer guidance: the paper's question 3 as an interactive tool.

"In which cases shall the designer consider using hardware SNN or
hardware MLP accelerators?"  This example enumerates the full design
space of the study, prints the area-latency Pareto frontier, and runs
the paper's decision logic on four representative scenarios.  It then
demonstrates the Section 3.2 "research direction": converting the
BP-trained MLP to a spiking network, keeping MLP accuracy in the
spike domain.

Run:  python examples/design_space_explorer.py
"""

from repro import load_digits, mnist_mlp_config, mnist_snn_config, train_mlp
from repro.hardware import (
    Requirements,
    enumerate_design_space,
    pareto_frontier,
    recommend,
)
from repro.snn.conversion import conversion_sweep


def main() -> None:
    mlp_cfg = mnist_mlp_config()
    snn_cfg = mnist_snn_config()

    print("Area-latency Pareto frontier of the paper's design space:")
    frontier = pareto_frontier(
        enumerate_design_space(mlp_cfg, snn_cfg), ("area", "latency")
    )
    for point in frontier:
        print(
            f"  {point.family:<11} {point.variant:<9} "
            f"{point.area_mm2:>7.2f} mm^2  {point.latency_us * 1e3:>9.1f} ns/image"
        )

    scenarios = [
        ("smartphone vision (2 mm^2 budget)", Requirements(max_area_mm2=2.0)),
        ("latency-critical (<50 ns/image)", Requirements(max_latency_us=0.05)),
        (
            "adaptive sensor (online learning)",
            Requirements(needs_online_learning=True),
        ),
        (
            "medical imaging (accuracy-critical, 10 mm^2)",
            Requirements(accuracy_critical=True, max_area_mm2=10.0),
        ),
    ]
    print("\nScenario recommendations (the paper's decision logic):")
    for name, requirements in scenarios:
        result = recommend(requirements, mlp_cfg, snn_cfg, prefer="energy")
        if result.chosen is not None:
            choice = f"{result.chosen.family} {result.chosen.variant}"
        else:
            choice = "no feasible design"
        print(f"  {name:<46} -> {choice}")

    print("\nBridging from the MLP side (Section 3.2's research direction):")
    print("training an MLP, then executing it as a rate-coded SNN ...")
    train_set, test_set = load_digits(n_train=800, n_test=200)
    mlp = train_mlp(mnist_mlp_config(epochs=25), train_set)
    for result in conversion_sweep(
        mlp, test_set, timesteps_list=[10, 50, 200], calibration=train_set
    ):
        print(
            f"  {result.timesteps:>4} timesteps: converted SNN "
            f"{100 * result.snn_accuracy:.1f}% vs MLP "
            f"{100 * result.mlp_accuracy:.1f}% (gap {100 * result.gap:+.1f}%)"
        )
    print("The converted network keeps (nearly) MLP accuracy in the spike")
    print("domain — the hybrid path the paper's conclusion points toward.")


if __name__ == "__main__":
    main()
