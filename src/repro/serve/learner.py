"""Live continual learning with guarded hot-swap promotion.

The paper's central tension — STDP learns *online*, but online
learning "raises the problem of retention of earlier memories" — is
usually studied offline (:mod:`repro.snn.retention`).  This module
runs it **live**: a serving tenant keeps learning from a labeled
stream while traffic flows, and every learning step must clear the
same robustness bar the rest of the serving stack holds itself to.

The loop, per bounded window (the :func:`repro.snn.retention.window_bounds`
schedule):

1. **Ingest** — :class:`LabeledStream` draws a seeded window of
   (image, label) pairs; chaos scenarios can blend covariate drift
   into the images or flip the labels.
2. **Learn** — a *candidate* network (a clone of the current learning
   state; the serving model is never mutated in place) takes the
   window through the fused STDP engine, then refreshes its neuron
   labels from the decayed win-count state (:class:`_LabelState`).
3. **Version** — the candidate is snapshotted through the
   content-addressed :class:`~repro.core.artifacts.ModelCache` under a
   monotonically increasing epoch, with the standard SHA-256 integrity
   sidecar (:class:`SnapshotStore`).
4. **Gate** — shadow evaluation: candidate and live model both score
   the window's held-out shadow slice; the candidate is promoted only
   if it retains at least ``gate_retention`` of the live accuracy
   (:class:`LearnerSLO`).
5. **Hot-swap** — promotion swaps the serving weights without
   dropping a single request: in-process backends swap the runner
   reference atomically, pool backends roll shard slots one at a time
   through :meth:`~repro.serve.workers.ShardedPool.hot_swap` (planned
   retirements the supervisor respawns without crash bookkeeping).
6. **Guard + rollback** — after promotion the new model is probed on
   a *fixed* held-out probe set; if accuracy falls below
   ``rollback_retention`` of the last good epoch's, the learner
   swaps straight back to the last good snapshot — restoring the
   baseline bit-for-bit within the same window.

:func:`run_learn_serve` is the CLI / chaos driver: it serves the
learning tenant next to an untouched tenant, drives both with
ledger-audited clients (every request resolves exactly once), runs
the scenario's windows, and asserts the learning-time invariants —
zero lost / duplicated requests across swaps, bit-identical serving
for the untouched tenant, and rollback-restores-baseline.
"""

from __future__ import annotations

import dataclasses
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.artifacts import (
    ModelCache,
    cache_directory,
    cache_key,
    verify_digest_sidecar,
)
from ..core.errors import ReproError, ServingError
from ..core.hostinfo import host_metadata
from ..core.rng import child_rng
from ..datasets.base import Dataset
from ..faults.injector import FaultInjector
from ..faults.models import FaultConfig
from ..snn.batched import batch_winners, encode_shared, predict_batch
from ..snn.network import SpikingNetwork
from ..snn.training import FusedSTDPEngine
from .batcher import BatchPolicy
from .engine import InferenceServer

#: Serving name of the continually learning tenant.
LIVE_TENANT = "live"

#: Cache recipe tag for live-learning snapshots (bump on rule changes).
SNAPSHOT_RECIPE = "live-stdp-v1"


# ---------------------------------------------------------------------------
# SLOs and scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LearnerSLO:
    """Accuracy-retention SLOs guarding promotion and serving.

    Attributes:
        gate_retention: shadow-gate bar — the candidate must retain at
            least this fraction of the live model's accuracy on the
            window's shadow slice to be promoted.
        gate_tolerance: absolute slack added to both the shadow gate
            and the post-promotion guard, so a one-sample wobble on a
            small shadow slice does not flap the gate.
        rollback_retention: post-promotion bar — the promoted model
            must retain at least this fraction of the last good
            epoch's accuracy on the *fixed* probe set, else the
            learner rolls back automatically.
    """

    gate_retention: float = 0.9
    gate_tolerance: float = 0.02
    rollback_retention: float = 0.8

    def validate(self) -> "LearnerSLO":
        for name in ("gate_retention", "rollback_retention"):
            value = float(getattr(self, name))
            if not 0.0 <= value <= 1.0:
                raise ServingError(f"LearnerSLO.{name}={value} must be in [0, 1]")
        if self.gate_tolerance < 0.0:
            raise ServingError(
                f"gate_tolerance must be >= 0, got {self.gate_tolerance}"
            )
        return self

    def as_dict(self) -> Dict[str, float]:
        return {
            "gate_retention": self.gate_retention,
            "gate_tolerance": self.gate_tolerance,
            "rollback_retention": self.rollback_retention,
        }


@dataclass(frozen=True)
class LearningScenario:
    """A deterministic schedule of learning windows and stream faults.

    The learning-time counterpart of
    :class:`~repro.serve.chaos.ChaosScenario`: instead of killing
    shards it perturbs the *stream* (covariate drift, label flips) or
    the *weight updates* (SRAM bit errors between STDP windows), and
    the invariants shift from "answers never change" to "promotions
    never lose requests and bad promotions roll back".

    Attributes:
        scenario_id: the ``--chaos`` identifier.
        description: one-line human summary.
        windows: learning windows to run.
        window_size: stream samples per window.
        shadow_fraction: tail fraction of each window held out for the
            shadow gate (never trained on).
        jobs: shard processes (0 = in-process serving).
        concurrency: ledger client threads per tenant.
        drift_windows / drift_magnitude: windows whose images blend
            ``magnitude`` of deterministic noise (covariate shift).
        flip_windows: windows whose labels are cyclically flipped.
        ber_windows / weight_ber: windows whose candidate weights pass
            through an SRAM bit-error injector before labeling.
        slo: the promotion / rollback SLOs.
        min_hot_swaps: invariant floor on completed hot-swaps.
        expect_rollback: invariant requires at least one rollback.
        n_neurons / train_images / train_epochs: offline baseline of
            the live tenant (see ``build_live_learner_model``).
        probe_images: size of the fixed post-promotion probe set.
    """

    scenario_id: str
    description: str
    windows: int = 4
    window_size: int = 32
    shadow_fraction: float = 0.25
    jobs: int = 2
    concurrency: int = 4
    drift_windows: Tuple[int, ...] = ()
    drift_magnitude: float = 0.0
    flip_windows: Tuple[int, ...] = ()
    ber_windows: Tuple[int, ...] = ()
    weight_ber: float = 0.0
    slo: LearnerSLO = field(default_factory=LearnerSLO)
    min_hot_swaps: int = 0
    expect_rollback: bool = False
    n_neurons: int = 30
    train_images: int = 400
    train_epochs: int = 2
    probe_images: int = 64

    def validate(self) -> "LearningScenario":
        if self.windows < 1:
            raise ServingError(f"windows must be >= 1, got {self.windows}")
        if self.window_size < 2:
            raise ServingError(
                f"window_size must be >= 2, got {self.window_size}"
            )
        if not 0.0 <= self.shadow_fraction < 1.0:
            raise ServingError(
                f"shadow_fraction must be in [0, 1), got {self.shadow_fraction}"
            )
        if self.jobs < 0:
            raise ServingError(f"jobs must be >= 0, got {self.jobs}")
        if self.concurrency < 1:
            raise ServingError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if not 0.0 <= self.drift_magnitude <= 1.0:
            raise ServingError(
                f"drift_magnitude must be in [0, 1], got {self.drift_magnitude}"
            )
        if not 0.0 <= self.weight_ber <= 1.0:
            raise ServingError(
                f"weight_ber must be in [0, 1], got {self.weight_ber}"
            )
        for name in ("drift_windows", "flip_windows", "ber_windows"):
            for w in getattr(self, name):
                if not 0 <= int(w) < self.windows:
                    raise ServingError(
                        f"{name} entry {w} outside 0..{self.windows - 1}"
                    )
        self.slo.validate()
        return self


# ---------------------------------------------------------------------------
# The labeled stream (with chaos hooks)
# ---------------------------------------------------------------------------


class LabeledStream:
    """Seeded labeled sample stream with drift / label-flip hooks.

    Windows are drawn with replacement from the backing dataset via
    ``child_rng(seed, "learn-stream")`` — the retention-study scheme —
    so the *clean* stream is a pure function of (dataset, seed,
    windows drawn).  Chaos toggles:

    * ``drift_magnitude`` > 0 blends each image toward deterministic
      per-window noise (``child_rng(seed, "learn-drift", window)``) —
      covariate shift with unchanged labels;
    * ``flip_labels`` rotates every label by one class — a label
      poisoning burst.

    Both leave the index stream untouched, so toggling a fault never
    perturbs which samples later windows see.
    """

    def __init__(self, dataset: Dataset, window_size: int = 32, seed: int = 0):
        if len(dataset) < 1:
            raise ServingError("stream needs a non-empty dataset")
        if window_size < 1:
            raise ServingError(f"window_size must be >= 1, got {window_size}")
        self.dataset = dataset
        self.window_size = int(window_size)
        self.seed = int(seed)
        self.n_labels = int(np.max(dataset.labels)) + 1
        self.drift_magnitude = 0.0
        self.flip_labels = False
        self.windows_drawn = 0
        self._order_rng = child_rng(self.seed, "learn-stream")
        self._image_high = max(float(np.max(dataset.images)), 1.0)

    def next_window(self) -> Tuple[np.ndarray, np.ndarray, List[int]]:
        """Draw one window: ``(images, labels, dataset indices)``."""
        window = self.windows_drawn
        self.windows_drawn += 1
        indices = self._order_rng.choice(
            len(self.dataset), size=self.window_size, replace=True
        )
        images = np.array(self.dataset.images[indices], dtype=np.float64)
        labels = np.array(self.dataset.labels[indices], dtype=np.int64)
        if self.drift_magnitude > 0.0:
            noise_rng = child_rng(self.seed, "learn-drift", window)
            noise = noise_rng.uniform(0.0, self._image_high, size=images.shape)
            m = float(self.drift_magnitude)
            images = np.clip(
                (1.0 - m) * images + m * noise, 0.0, self._image_high
            )
        if self.flip_labels:
            labels = (labels + 1) % self.n_labels
        return images, labels, [int(i) for i in indices]


# ---------------------------------------------------------------------------
# Decayed win-count labeling state
# ---------------------------------------------------------------------------


class _LabelState:
    """Neuron-labeling win counts with exponential recency decay.

    A single learning window is far too small to relabel a network
    from scratch (most neurons never win inside one window and would
    drop to label -1), so the learner carries labeling state *across*
    windows: float win-count matrices in the
    :class:`~repro.snn.labeling.NeuronLabeler` shape, decayed by
    ``decay`` per window so a non-stationary stream can genuinely
    move labels.  Seeded from the offline model's labels as
    pseudo-counts; cloned per candidate and reverted together with
    the weights on gate rejection or rollback.
    """

    def __init__(self, n_neurons: int, n_labels: int, decay: float = 0.5):
        if not 0.0 <= decay <= 1.0:
            raise ServingError(f"decay must be in [0, 1], got {decay}")
        self.decay = float(decay)
        self.counts = np.zeros((n_neurons, n_labels), dtype=np.float64)
        self.presentations = np.zeros(n_labels, dtype=np.float64)

    @classmethod
    def from_labels(
        cls,
        labels: np.ndarray,
        n_labels: int,
        decay: float = 0.5,
        weight: float = 3.0,
    ) -> "_LabelState":
        """Seed pseudo-counts from an existing label assignment."""
        labels = np.asarray(labels)
        state = cls(len(labels), n_labels, decay=decay)
        for neuron, label in enumerate(labels):
            if 0 <= int(label) < n_labels:
                state.counts[neuron, int(label)] = float(weight)
                state.presentations[int(label)] += float(weight)
        return state

    def clone(self) -> "_LabelState":
        twin = _LabelState(*self.counts.shape, decay=self.decay)
        twin.counts = self.counts.copy()
        twin.presentations = self.presentations.copy()
        return twin

    def observe(self, winners: Sequence[int], labels: Sequence[int]) -> None:
        """Fold one window of (winner, label) pairs in, decaying first."""
        self.counts *= self.decay
        self.presentations *= self.decay
        for winner, label in zip(winners, labels):
            label = int(label)
            self.presentations[label] += 1.0
            if int(winner) >= 0:
                self.counts[int(winner), label] += 1.0

    def labels(self, prior: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-neuron labels (NeuronLabeler semantics, decayed counts).

        Neurons with no surviving win mass keep their ``prior`` label
        (or -1 without one) — a neuron that simply did not fire this
        window has not earned a relabeling.
        """
        scores = self.counts / np.maximum(self.presentations, 1.0)[None, :]
        assigned = np.argmax(scores, axis=1).astype(np.int64)
        silent = ~np.any(self.counts > 0.0, axis=1)
        if prior is not None:
            assigned[silent] = np.asarray(prior, dtype=np.int64)[silent]
        else:
            assigned[silent] = -1
        return assigned


def clone_network(network: SpikingNetwork) -> SpikingNetwork:
    """Independent copy of a trained SNN (weights, thresholds, labels).

    The serving / learning separation hinges on this: the server's
    runner must hold arrays the learner will never mutate, and each
    candidate must be discardable without touching the last good
    state.  The coder is shared (stateless: it draws only from RNGs
    passed per call).
    """
    twin = SpikingNetwork(network.config, coder=network.coder)
    twin.weights = np.array(network.weights, dtype=np.float64)
    twin.population.thresholds[:] = np.asarray(network.thresholds)
    twin.neuron_labels = (
        None
        if network.neuron_labels is None
        else np.array(network.neuron_labels, dtype=np.int64)
    )
    return twin


# ---------------------------------------------------------------------------
# Versioned snapshots through the content-addressed cache
# ---------------------------------------------------------------------------


class SnapshotStore:
    """Epoch-versioned model snapshots in a :class:`ModelCache`.

    Every promoted (and the baseline) network is stored under the
    content-addressed key of its *actual arrays* — weights, thresholds
    and labels are hashed into the key — plus the tenant and a
    monotonically increasing epoch, so two epochs can never collide
    and a stale entry can never shadow fresh weights.  Entries carry
    the cache's standard SHA-256 sidecar; :meth:`load` verifies it
    before deserializing and treats a mismatch as an evicted epoch.
    """

    def __init__(self, cache: ModelCache, tenant: str, dataset: Dataset):
        self.cache = cache
        self.tenant = str(tenant)
        self.dataset = dataset
        self._keys: Dict[int, str] = {}

    def _params(self, epoch: int, network: SpikingNetwork) -> Dict[str, Any]:
        return {
            "recipe": SNAPSHOT_RECIPE,
            "tenant": self.tenant,
            "epoch": int(epoch),
            "weights": network.weights,
            "thresholds": np.asarray(network.thresholds),
            "labels": np.asarray(
                network.neuron_labels
                if network.neuron_labels is not None
                else []
            ),
        }

    def save(self, epoch: int, network: SpikingNetwork) -> str:
        """Persist one epoch's snapshot; returns its cache key."""
        epoch = int(epoch)
        if self._keys and epoch <= max(self._keys):
            raise ServingError(
                f"snapshot epochs must increase; {epoch} <= {max(self._keys)}"
            )
        params = self._params(epoch, network)
        key = cache_key("snn-live", network.config, self.dataset, params)
        self.cache.get_or_train(
            "snn-live",
            network.config,
            self.dataset,
            lambda: network,
            train_params=params,
        )
        self._keys[epoch] = key
        return key

    def load(self, epoch: int) -> SpikingNetwork:
        """Rebuild one epoch's network after sidecar verification.

        Raises :class:`ServingError` for unknown, evicted or corrupt
        epochs — callers fall back to their in-memory last-good copy.
        """
        from ..core.serialization import load_model

        key = self._keys.get(int(epoch))
        if key is None:
            raise ServingError(f"no snapshot recorded for epoch {epoch}")
        path = self.cache.path_for(key)
        if not path.exists():
            raise ServingError(f"snapshot for epoch {epoch} was evicted")
        if verify_digest_sidecar(path) is False:
            self.cache.stats.corrupt_evictions += 1
            self.cache._evict(path)
            raise ServingError(f"snapshot for epoch {epoch} failed its digest")
        try:
            return load_model(path)
        except (ReproError, OSError, ValueError) as exc:
            raise ServingError(
                f"snapshot for epoch {epoch} unreadable: {exc!r}"
            )

    def epochs(self) -> List[int]:
        return sorted(self._keys)

    def key_for(self, epoch: int) -> Optional[str]:
        return self._keys.get(int(epoch))


# ---------------------------------------------------------------------------
# The continual learner
# ---------------------------------------------------------------------------


class ContinualLearner:
    """One tenant's learn → gate → promote → guard → rollback loop."""

    def __init__(
        self,
        server: InferenceServer,
        tenant: str,
        network: SpikingNetwork,
        stream: LabeledStream,
        probe_set: Dataset,
        slo: Optional[LearnerSLO] = None,
        store: Optional[SnapshotStore] = None,
        seed: int = 0,
        shadow_fraction: float = 0.25,
        label_decay: float = 0.5,
        probe_indices: Optional[Sequence[int]] = None,
        update_injector: Optional[FaultInjector] = None,
    ):
        if network.neuron_labels is None:
            raise ServingError("the live tenant needs a labeled baseline")
        if not 0.0 <= shadow_fraction < 1.0:
            raise ServingError(
                f"shadow_fraction must be in [0, 1), got {shadow_fraction}"
            )
        if len(probe_set) < 1:
            raise ServingError("probe set must be non-empty")
        self.server = server
        self.tenant = str(tenant)
        self.stream = stream
        self.probe = probe_set
        self.slo = (slo or LearnerSLO()).validate()
        self.store = store
        self.seed = int(seed)
        self.shadow_fraction = float(shadow_fraction)
        self.update_injector = update_injector
        self._probe_indices = (
            list(range(len(probe_set)))
            if probe_indices is None
            else [int(i) for i in probe_indices]
        )
        # Learning state (mutable); the serving model is always a clone.
        self.network = clone_network(network)
        self._label_state = _LabelState.from_labels(
            np.asarray(network.neuron_labels),
            network.config.n_labels,
            decay=label_decay,
        )
        # Shared streams: window composition comes from the stream's
        # own RNG; learning spikes and labeling spikes each consume
        # one shared generator, the retention-study scheme.
        self._spikes_rng = child_rng(self.seed, "learn-serve-spikes")
        self._label_rng = child_rng(self.seed, "learn-serve-label")
        # Counters / state surfaced through metrics + health.
        self.epoch = 0
        self.serving_epoch = 0
        self.last_good_epoch = 0
        self.windows = 0
        self.promotions = 0
        self.rejections = 0
        self.rollbacks = 0
        self.hot_swaps = 0
        self.staleness = 0
        self.last_rollback: Optional[Dict[str, Any]] = None
        self.rollbacks_restored = True
        self.history: List[Dict[str, Any]] = []
        # Baseline: snapshot epoch 0 and measure the fixed probe.
        baseline = clone_network(self.network)
        self._last_good_network = baseline
        if self.store is not None:
            self.store.save(0, baseline)
        self.last_good_probe_accuracy = self._probe_accuracy(baseline)

    # -- evaluation helpers ---------------------------------------------

    def _probe_accuracy(self, network: SpikingNetwork) -> float:
        """Accuracy on the fixed probe set (per-index deterministic)."""
        predictions = predict_batch(
            network,
            np.asarray(self.probe.images),
            indices=self._probe_indices,
            seed=self.seed,
        )
        return float(np.mean(predictions == np.asarray(self.probe.labels)))

    @staticmethod
    def _shadow_accuracy(
        network: SpikingNetwork,
        images: np.ndarray,
        labels: np.ndarray,
        indices: Sequence[int],
        seed: int,
    ) -> float:
        predictions = predict_batch(
            network, images, indices=indices, seed=seed
        )
        return float(np.mean(predictions == labels))

    # -- the window loop -------------------------------------------------

    def run_window(self) -> Dict[str, Any]:
        """Run one learning window end to end; returns its record."""
        window = self.windows
        self.windows += 1
        images, labels, indices = self.stream.next_window()
        record: Dict[str, Any] = {
            "window": window,
            "n_images": int(len(images)),
            "drift": float(self.stream.drift_magnitude),
            "flipped": bool(self.stream.flip_labels),
            "ber": bool(
                self.update_injector is not None
                and self.update_injector.config.affects_weights
            ),
        }
        n_shadow = (
            max(1, int(round(len(images) * self.shadow_fraction)))
            if self.shadow_fraction > 0.0 and len(images) > 1
            else 0
        )
        split = len(images) - n_shadow
        train_images, train_labels = images[:split], labels[:split]
        shadow_images, shadow_labels = images[split:], labels[split:]
        shadow_indices = indices[split:]

        # 1. Candidate: clone, learn the window, optional SRAM faults.
        candidate = clone_network(self.network)
        if len(train_images):
            FusedSTDPEngine(candidate).learn_images(
                train_images, rng=self._spikes_rng
            )
        if (
            self.update_injector is not None
            and self.update_injector.config.affects_weights
        ):
            candidate.weights = self.update_injector.corrupt_weights(
                candidate.weights, f"live-update-{window}"
            )
        # 2. Relabel from the decayed win-count state.
        label_state = self._label_state.clone()
        if len(train_images):
            trains = encode_shared(candidate, train_images, self._label_rng)
            winners = batch_winners(candidate, trains)
            label_state.observe([int(w) for w in winners], train_labels)
        candidate.neuron_labels = label_state.labels(
            prior=np.asarray(self.network.neuron_labels)
        )

        # 3. Shadow gate: candidate vs live on the held-out slice.
        if n_shadow:
            candidate_acc = self._shadow_accuracy(
                candidate, shadow_images, shadow_labels, shadow_indices, self.seed
            )
            live_acc = self._shadow_accuracy(
                self._last_good_network,
                shadow_images,
                shadow_labels,
                shadow_indices,
                self.seed,
            )
        else:
            candidate_acc = live_acc = 1.0
        record["shadow"] = {
            "n": int(n_shadow),
            "candidate_accuracy": round(candidate_acc, 4),
            "live_accuracy": round(live_acc, 4),
        }
        gate_ok = (
            candidate_acc + self.slo.gate_tolerance
            >= self.slo.gate_retention * live_acc
        )
        if not gate_ok:
            self.rejections += 1
            self.staleness += 1
            record["outcome"] = "rejected"
            self.history.append(record)
            return record

        # 4. Promote: version the snapshot, hot-swap serving.
        self.epoch += 1
        serving = clone_network(candidate)
        if self.store is not None:
            record["snapshot_key"] = self.store.save(self.epoch, serving)
        swap = self.server.swap_model(self.tenant, serving, seed=self.seed)
        self.hot_swaps += 1
        self.promotions += 1
        self.serving_epoch = self.epoch
        record["swap"] = swap

        # 5. Post-promotion guard on the fixed probe set.
        probe_acc = self._probe_accuracy(serving)
        record["probe_accuracy"] = round(probe_acc, 4)
        breach = (
            probe_acc + self.slo.gate_tolerance
            < self.slo.rollback_retention * self.last_good_probe_accuracy
        )
        if breach:
            self._rollback(record, probe_acc)
            record["outcome"] = "rolled-back"
        else:
            self.network = candidate
            self._label_state = label_state
            self._last_good_network = serving
            self.last_good_epoch = self.epoch
            self.last_good_probe_accuracy = probe_acc
            self.staleness = 0
            record["outcome"] = "promoted"
        self.history.append(record)
        return record

    def _rollback(self, record: Dict[str, Any], bad_probe_acc: float) -> None:
        """Swap serving back to the last good epoch, revert learning."""
        failed_epoch = self.epoch
        target = self.last_good_epoch
        restored: Optional[SpikingNetwork] = None
        source = "snapshot"
        if self.store is not None:
            try:
                restored = self.store.load(target)
            except ServingError:
                restored = None
        if restored is None:
            # Snapshot evicted or corrupt: the in-memory last-good
            # copy carries identical arrays.
            restored = clone_network(self._last_good_network)
            source = "memory"
        self.server.swap_model(self.tenant, restored, seed=self.seed)
        self.hot_swaps += 1
        self.rollbacks += 1
        self.serving_epoch = target
        self.staleness += 1
        # Learning state reverts with serving: weights AND label state.
        self.network = clone_network(restored)
        self._label_state = self._label_state_of_last_good()
        restored_acc = self._probe_accuracy(restored)
        exact = restored_acc == self.last_good_probe_accuracy
        self.rollbacks_restored = self.rollbacks_restored and exact
        self._last_good_network = restored
        self.last_rollback = {
            "window": record["window"],
            "from_epoch": failed_epoch,
            "to_epoch": target,
            "breach_accuracy": round(bad_probe_acc, 4),
            "restored_accuracy": round(restored_acc, 4),
            "last_good_accuracy": round(self.last_good_probe_accuracy, 4),
            "baseline_restored": exact,
            "source": source,
        }
        record["rollback"] = self.last_rollback

    def _label_state_of_last_good(self) -> _LabelState:
        """Label state consistent with the last good network."""
        return _LabelState.from_labels(
            np.asarray(self._last_good_network.neuron_labels),
            self._last_good_network.config.n_labels,
            decay=self._label_state.decay,
        )

    # -- introspection ---------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """JSON-ready learner state for metrics / health / CLI."""
        return {
            "tenant": self.tenant,
            "epoch": self.epoch,
            "serving_epoch": self.serving_epoch,
            "last_good_epoch": self.last_good_epoch,
            "windows": self.windows,
            "promotions": self.promotions,
            "rejections": self.rejections,
            "rollbacks": self.rollbacks,
            "hot_swaps": self.hot_swaps,
            "staleness": self.staleness,
            "probe_accuracy": round(self.last_good_probe_accuracy, 4),
            "rollbacks_restored": self.rollbacks_restored,
            "last_rollback": self.last_rollback,
            "slo": self.slo.as_dict(),
            "snapshots": (
                {
                    "epochs": self.store.epochs(),
                    "cache": self.store.cache.stats.as_dict(),
                }
                if self.store is not None
                else None
            ),
        }

    def health(self) -> Dict[str, Any]:
        """Compact learner block for the ``serve-health`` payload."""
        return {
            "epoch": self.epoch,
            "serving_epoch": self.serving_epoch,
            "staleness": self.staleness,
            "rollbacks": self.rollbacks,
            "last_rollback_epoch": (
                self.last_rollback["from_epoch"] if self.last_rollback else None
            ),
            "retention_slo_ok": self.rollbacks_restored,
        }


# ---------------------------------------------------------------------------
# Driver: serve two tenants, learn on one, audit every request
# ---------------------------------------------------------------------------


def _ledger_clients(
    server: InferenceServer,
    tenants: Dict[str, Optional[np.ndarray]],
    n_indices: int,
    concurrency: int,
    seed: int,
    stop_event: threading.Event,
    timeout: float = 60.0,
):
    """Start ledger-audited closed-loop clients for every tenant.

    Returns ``(ledgers, threads)``; the caller sets ``stop_event`` and
    joins.  A tenant with an oracle array gets per-request bit-identity
    checks; ``None`` skips them (the learning tenant's answers change
    by design across promotions).
    """
    from .chaos import _Ledger

    ledgers = {name: _Ledger() for name in tenants}

    def client(name: str, oracle: Optional[np.ndarray], cid: int) -> None:
        ledger = ledgers[name]
        rng = child_rng(seed, f"learn-client-{name}", cid)
        while not stop_event.is_set():
            index = int(rng.integers(n_indices))
            ledger.open_request()
            try:
                label = server.predict(name, index=index, timeout=timeout)
            except Exception as exc:  # noqa: BLE001 — typed or injected
                ledger.resolve_error(exc, first=True)
                continue
            matched = oracle is None or label == int(oracle[index])
            ledger.resolve_ok(matched=matched, first=True)

    threads = [
        threading.Thread(
            target=client,
            args=(name, oracle, cid),
            name=f"repro-learn-client-{name}-{cid}",
            daemon=True,
        )
        for name, oracle in tenants.items()
        for cid in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    return ledgers, threads


def run_learn_serve(
    scenario: "str | LearningScenario" = "steady",
    dataset: str = "digits",
    seed: int = 0,
    jobs: Optional[int] = None,
    windows: Optional[int] = None,
    window_size: Optional[int] = None,
    concurrency: Optional[int] = None,
    max_batch: int = 8,
    max_wait_us: float = 1000.0,
    max_queue: int = 1024,
    snapshot_dir: Optional[str] = None,
    recovery_timeout: float = 15.0,
) -> Dict[str, Any]:
    """Run one live-learning scenario end to end; returns the payload.

    Serves the learning tenant (``live``) next to an untouched tenant
    (``mlp``) — the latter with a bit-identity oracle, because nothing
    the learner does may ever change another tenant's answers.  Every
    request on both tenants goes through the chaos ledger, so lost or
    duplicated requests across hot-swaps are impossible to miss.
    """
    from .chaos import _await_recovery, get_learning_scenario
    from .loadgen import (
        build_live_learner_model,
        build_models,
        direct_predictions,
    )

    if isinstance(scenario, str):
        scenario = get_learning_scenario(scenario)
    scenario = scenario.validate()
    overrides: Dict[str, Any] = {}
    if jobs is not None:
        overrides["jobs"] = int(jobs)
    if windows is not None:
        overrides["windows"] = int(windows)
    if window_size is not None:
        overrides["window_size"] = int(window_size)
    if concurrency is not None:
        overrides["concurrency"] = int(concurrency)
    if overrides:
        scenario = dataclasses.replace(scenario, **overrides).validate()

    built = build_models(("mlp",), dataset=dataset)
    live_base = build_live_learner_model(
        dataset,
        n_neurons=scenario.n_neurons,
        epochs=scenario.train_epochs,
        train_images=scenario.train_images,
        seed=seed,
    )
    train_set, test_set = built["train"], built["test"]
    test_images = np.asarray(test_set.images)
    probe_n = min(scenario.probe_images, len(test_set))
    probe_set = test_set.take(probe_n)
    probe_indices = list(range(probe_n))
    mlp_oracle = np.asarray(
        direct_predictions(
            built["models"]["mlp"],
            test_images,
            list(range(len(test_images))),
            seed=seed,
        )
    )
    serving_models = {
        "mlp": built["models"]["mlp"],
        LIVE_TENANT: clone_network(live_base),
    }
    policy = BatchPolicy(
        max_batch=max_batch, max_wait_us=max_wait_us, max_queue=max_queue
    )
    pool = None
    if scenario.jobs >= 1:
        from .supervisor import SupervisorPolicy
        from .workers import ShardedPool

        pool = ShardedPool(
            serving_models,
            jobs=scenario.jobs,
            images=test_images,
            seed=seed,
            max_task_retries=2,
            supervisor=SupervisorPolicy(
                poll_interval=0.05,
                backoff_base=0.05,
                backoff_max=0.5,
                cooldown=1.0,
                ready_timeout=60.0,
                seed=seed,
            ),
        )
        server = InferenceServer(pool=pool, policy=policy, images=test_images)
    else:
        server = InferenceServer.from_models(
            serving_models, policy=policy, images=test_images, seed=seed
        )

    snapshot_path = (
        pathlib.Path(snapshot_dir)
        if snapshot_dir is not None
        else cache_directory() / "live-snapshots"
    )
    store = SnapshotStore(ModelCache(snapshot_path), LIVE_TENANT, probe_set)
    stream = LabeledStream(
        train_set, window_size=scenario.window_size, seed=seed
    )
    injector = (
        FaultInjector(FaultConfig.sram_ber(scenario.weight_ber, seed=seed))
        if scenario.weight_ber > 0.0 and scenario.ber_windows
        else None
    )
    payload: Dict[str, Any] = {
        "loadtest": {
            "mode": "learn-serve",
            "dataset": dataset,
            "models": sorted(serving_models),
            "jobs": scenario.jobs,
            "windows": scenario.windows,
            "window_size": scenario.window_size,
            "concurrency": scenario.concurrency,
            "seed": seed,
            "n_test_images": int(len(test_images)),
        },
        "host": host_metadata(),
        "models": {},
    }
    stop_event = threading.Event()
    threads: List[threading.Thread] = []
    try:
        learner = ContinualLearner(
            server,
            LIVE_TENANT,
            live_base,
            stream,
            probe_set,
            slo=scenario.slo,
            store=store,
            seed=seed,
            shadow_fraction=scenario.shadow_fraction,
            probe_indices=probe_indices,
        )
        ledgers, threads = _ledger_clients(
            server,
            {"mlp": mlp_oracle, LIVE_TENANT: None},
            n_indices=len(test_images),
            concurrency=scenario.concurrency,
            seed=seed,
            stop_event=stop_event,
        )
        start = time.perf_counter()
        for window in range(scenario.windows):
            stream.drift_magnitude = (
                scenario.drift_magnitude
                if window in scenario.drift_windows
                else 0.0
            )
            stream.flip_labels = window in scenario.flip_windows
            learner.update_injector = (
                injector if window in scenario.ber_windows else None
            )
            learner.run_window()
        wall = time.perf_counter() - start
        stop_event.set()
        for thread in threads:
            thread.join(timeout=30.0)
        # Serving-consistency spot check: the live tenant's served
        # answers must match direct predictions of the *snapshot* that
        # is supposed to be serving.
        check_indices = probe_indices[: min(16, len(probe_indices))]
        served = server.predict_many(LIVE_TENANT, indices=check_indices)
        try:
            reference = store.load(learner.serving_epoch)
        except ServingError:
            reference = learner._last_good_network
        expected = direct_predictions(
            reference, test_images, check_indices, seed=seed
        )
        consistent = bool(np.array_equal(served, expected))
        recovered = (
            _await_recovery(pool, recovery_timeout) if pool is not None else True
        )
        state = learner.state()
        totals = {"ok": 0}
        lost = duplicates = 0
        mlp_summary = None
        for name, ledger in ledgers.items():
            summary = ledger.summary()
            totals["ok"] += summary["ok"]
            for key, value in summary["errors"].items():
                totals[key] = totals.get(key, 0) + value
            lost += summary["lost"]
            duplicates += summary["duplicates"]
            if name == "mlp":
                mlp_summary = summary
            payload["models"][name] = {
                "model": name,
                **server.metrics[name].snapshot(),
                "breaker": server.breakers[name].snapshot(),
                "client": summary,
            }
        invariants = {
            "no_lost_requests": lost == 0,
            "no_duplicate_responses": duplicates == 0,
            "untouched_tenant_bit_identical": bool(
                mlp_summary
                and mlp_summary["bit_mismatches"] == 0
                and mlp_summary["ok"] > 0
            ),
            "hot_swaps_completed": state["hot_swaps"] >= scenario.min_hot_swaps,
            "rollback_restored_baseline": bool(
                state["rollbacks_restored"]
                and (state["rollbacks"] >= 1 or not scenario.expect_rollback)
            ),
            "learner_serving_consistent": consistent,
            "supervisor_recovered": recovered,
        }
        if pool is not None:
            payload["pool"] = pool.stats()
        payload["learner"] = {**state, "windows_log": learner.history}
        payload["chaos"] = {
            "scenario": scenario.scenario_id,
            "description": scenario.description,
            "seed": seed,
            "wall_seconds": round(wall, 3),
            "outcomes": totals,
            "lost": lost,
            "duplicates": duplicates,
            "bit_mismatches": (
                mlp_summary["bit_mismatches"] if mlp_summary else 0
            ),
            "recovered": recovered,
            "invariants": invariants,
        }
        payload["health"] = server.health()
        payload["health"]["learner"] = learner.health()
    finally:
        stop_event.set()
        for thread in threads:
            thread.join(timeout=10.0)
        server.close()
    return payload
