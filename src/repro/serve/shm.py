"""Zero-copy shared-memory array bundles with integrity checksums.

The serving layer's worker shards and the ``repro report --jobs``
process pool both need the same large, read-only numpy arrays in every
process: trained model weights, encoded datasets, test images.  The
naive route — pickling them into each worker — copies the bytes once
per worker and once more on every job submission.  This module packs a
named set of arrays into **one** ``multiprocessing.shared_memory``
segment so that:

* the parent publishes the arrays once (one copy into the segment);
* every worker *attaches* and gets numpy views backed directly by the
  segment — zero copies, zero pickling, shared page cache;
* views are marked read-only on attach, so a worker bug cannot
  corrupt another worker's model.

**Integrity.**  Read-only flags stop *software* writes, but a DRAM bit
flip (or any other silent-data-corruption source) changes the bytes
under every attached view at once.  ``create`` therefore computes a
SHA-256 digest per array at publish time; the digests travel in the
:meth:`~SharedArrayBundle.spec`, ``attach`` re-verifies them before a
worker builds models on the views, and :meth:`~SharedArrayBundle.verify`
lets a background scrubber re-check the live segment on a period.  A
mismatch raises the typed :class:`~repro.core.errors.IntegrityError`
(attach) or returns the corrupt names (scrub) — silent corruption
becomes a detectable, recoverable event.  :meth:`restore` writes
verified bytes back into the segment in place, so recovery does not
require republishing the whole bundle.

The bundle's :meth:`~SharedArrayBundle.spec` is a small picklable
``(segment_name, layout, digests)`` triple — that is all that crosses
the process boundary.

Lifecycle: the creating process owns the segment and must call
:meth:`~SharedArrayBundle.close` with ``unlink=True`` when done (the
pool / report runner does this in a ``finally``).  Attaching processes
call plain ``close()``.  Platforms without working shared memory (or
sandboxes without ``/dev/shm``) raise :class:`ServingError` from
:meth:`~SharedArrayBundle.create`; callers treat that as "fall back to
the copying path" — sharing is an optimization, never a requirement.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import IntegrityError, ServingError

#: Segment offsets are aligned so every array view starts on a cache
#: line; keeps vectorized loads on attached views as fast as on
#: locally-allocated arrays.
_ALIGN = 64

#: layout: array name -> (byte offset, shape, dtype string)
Layout = Dict[str, Tuple[int, Tuple[int, ...], str]]

#: digests: array name -> hex SHA-256 of the array's raw bytes.
Digests = Dict[str, str]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def array_digest(view: np.ndarray) -> str:
    """Hex SHA-256 over an array's raw bytes (C-contiguous)."""
    data = np.ascontiguousarray(view)
    return hashlib.sha256(data.view(np.uint8).reshape(-1)).hexdigest()


class SharedArrayBundle:
    """A named set of numpy arrays living in one shared-memory segment.

    Create in the publishing process with :meth:`create`, ship
    :meth:`spec` to workers, attach with :meth:`attach`.  ``arrays``
    maps names to numpy views over the segment (writable only in the
    creator before :meth:`freeze`; always read-only for attachers).
    """

    def __init__(self, shm, layout: Layout, owner: bool, digests: Optional[Digests] = None):
        self._shm = shm
        self.layout = dict(layout)
        #: publish-time per-array SHA-256 digests (empty for legacy
        #: specs that shipped without them — then verify() is a no-op).
        self.digests: Digests = dict(digests or {})
        self.owner = owner
        self._closed = False
        self.arrays: Dict[str, np.ndarray] = {}
        for name, (offset, shape, dtype) in self.layout.items():
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            if not owner:
                view.flags.writeable = False
            self.arrays[name] = view

    # -- construction ---------------------------------------------------

    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray], name: Optional[str] = None) -> "SharedArrayBundle":
        """Publish ``arrays`` into a fresh segment (copies each once).

        Computes the per-array SHA-256 digests after the copy-in, so
        the digests describe exactly the bytes attachers will map.
        """
        try:
            from multiprocessing import shared_memory
        except ImportError as exc:  # pragma: no cover - stdlib always has it
            raise ServingError(f"shared memory unavailable: {exc}") from exc
        layout: Layout = {}
        offset = 0
        for key in sorted(arrays):
            value = np.ascontiguousarray(arrays[key])
            offset = _aligned(offset)
            layout[key] = (offset, tuple(value.shape), value.dtype.str)
            offset += value.nbytes
        total = max(offset, 1)
        try:
            shm = shared_memory.SharedMemory(create=True, size=total, name=name)
        except OSError as exc:
            raise ServingError(f"cannot create shared-memory segment: {exc}") from exc
        bundle = cls(shm, layout, owner=True)
        for key in layout:
            source = np.ascontiguousarray(arrays[key])
            if source.size:
                bundle.arrays[key][...] = source
        bundle.digests = {
            key: array_digest(bundle.arrays[key]) for key in layout
        }
        bundle.freeze()
        return bundle

    @classmethod
    def attach(
        cls,
        segment_name: str,
        layout: Layout,
        digests: Optional[Digests] = None,
        untrack: bool = True,
    ) -> "SharedArrayBundle":
        """Attach to a published segment; views are read-only.

        When ``digests`` are given (every spec since the integrity
        layer ships them), the segment's bytes are verified against
        them *before* the caller builds anything on the views; a
        mismatch raises :class:`~repro.core.errors.IntegrityError`.
        ``digests=None`` attaches a legacy spec unverified.

        ``untrack`` handles bpo-38119: Python's resource tracker
        registers *every* attach as if the attacher owned the segment,
        and a spawn-started worker's private tracker would unlink it at
        worker exit, yanking the segment from under the creator —
        attachers must unregister.  Pass ``untrack=False`` in
        **fork**-started workers: they share the parent's tracker
        process, where the duplicate registration collapses into the
        creator's own entry — unregistering there would delete the
        creator's registration and make its eventual ``unlink`` warn.
        """
        try:
            from multiprocessing import shared_memory
        except ImportError as exc:  # pragma: no cover
            raise ServingError(f"shared memory unavailable: {exc}") from exc
        try:
            shm = shared_memory.SharedMemory(name=segment_name)
        except (OSError, ValueError) as exc:
            raise ServingError(
                f"cannot attach shared-memory segment {segment_name!r}: {exc}"
            ) from exc
        if untrack:
            try:  # pragma: no cover - defensive; API is semi-private
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        bundle = cls(shm, layout, owner=False, digests=digests)
        if digests:
            corrupt = bundle.verify()
            if corrupt:
                bundle.close()
                raise IntegrityError(
                    f"shared-memory segment {segment_name!r} failed checksum "
                    f"verification at attach: corrupt array(s) {corrupt}"
                )
        return bundle

    # -- accessors ------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name

    def spec(self) -> Tuple[str, Layout, Digests]:
        """The picklable ``(name, layout, digests)`` workers attach with."""
        return self._shm.name, dict(self.layout), dict(self.digests)

    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]

    def __contains__(self, key: str) -> bool:
        return key in self.arrays

    def nbytes(self) -> int:
        return self._shm.size

    def freeze(self) -> None:
        """Mark every view read-only (creator side, after the copy-in)."""
        for view in self.arrays.values():
            view.flags.writeable = False

    # -- integrity ------------------------------------------------------

    def verify(self, keys: Optional[List[str]] = None) -> List[str]:
        """Re-hash the live segment; returns the corrupt array names.

        Compares the current bytes of each array (all of them, or just
        ``keys``) against the publish-time digests.  Arrays without a
        recorded digest (legacy specs) are skipped.  An empty list
        means the segment is bit-identical to what was published.
        """
        corrupt: List[str] = []
        for key in sorted(keys if keys is not None else self.arrays):
            expected = self.digests.get(key)
            if expected is None:
                continue
            if array_digest(self.arrays[key]) != expected:
                corrupt.append(key)
        return corrupt

    def _writable(self, key: str) -> np.ndarray:
        """A writable alias of one array's bytes in the live segment.

        Deliberately private: the only legitimate writers are
        :meth:`restore` (corruption recovery) and the chaos harness's
        seeded bit-flipper.  Everyone else gets the frozen views.
        """
        offset, shape, dtype = self.layout[key]
        return np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
        )

    def restore(self, key: str, source: np.ndarray) -> None:
        """Write verified bytes back over one (possibly corrupt) array.

        ``source`` must match the publish-time digest — restoring
        unverified bytes would just institutionalize the corruption.
        Raises :class:`~repro.core.errors.IntegrityError` when it does
        not, or when the write-back fails re-verification.
        """
        expected = self.digests.get(key)
        source = np.ascontiguousarray(source)
        if expected is not None and array_digest(source) != expected:
            raise IntegrityError(
                f"refusing to restore {key!r}: replacement bytes do not "
                "match the publish-time digest"
            )
        self._writable(key)[...] = source
        if expected is not None and array_digest(self.arrays[key]) != expected:
            raise IntegrityError(
                f"restore of {key!r} failed re-verification; the segment "
                "may be actively corrupting"
            )

    # -- lifecycle ------------------------------------------------------

    def close(self, unlink: Optional[bool] = None) -> None:
        """Release the mapping; the owner also unlinks by default.

        Safe to call twice.  Drops the numpy views first — the segment
        cannot be unmapped while views hold buffer references.
        """
        if self._closed:
            return
        self._closed = True
        if unlink is None:
            unlink = self.owner
        self.arrays.clear()
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform quirk
            pass
        if unlink:
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):  # already gone
                pass

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close(unlink=False)
        except Exception:
            pass
