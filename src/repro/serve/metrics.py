"""Serving metrics: queue depth, batch sizes, latency percentiles.

One :class:`ServingMetrics` instance per served model accumulates,
under a single lock, everything the closed-loop load harness and the
``repro serve-stats`` view report:

* request counters — submitted / completed / shed (admission control)
  / failed (runner exception);
* queue depth at submission time (mean and peak);
* a batch-size histogram and the derived *occupancy* (mean coalesced
  batch size over ``max_batch`` — how full the dynamic batches run);
* request latency (enqueue -> result routed), recorded per request
  and summarized as p50 / p95 / p99 / mean / max in milliseconds;
* achieved requests/second over the observation window (first
  submission to last completion).

Wall-clock sourcing matches :mod:`repro.core.timing`
(``time.perf_counter``), so serving phase totals and request
latencies are directly comparable in one report.

Latencies are kept exactly (a float per completed request).  At the
load-harness scale — tens of thousands of requests per run — that is
a few hundred kilobytes, and exact percentiles beat a quantized
histogram for the tail assertions CI makes.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

#: Percentiles reported for request latency, in order.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


class ServingMetrics:
    """Thread-safe accumulator for one served model's statistics."""

    def __init__(self, max_batch: int = 1, clock=time.perf_counter):
        self.max_batch = int(max_batch)
        self._clock = clock
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.submitted = 0
            self.completed = 0
            self.shed = 0
            self.failed = 0
            self.deadline_shed = 0
            self.breaker_rejections = 0
            self.queue_depth_peak = 0
            self._queue_depth_sum = 0
            self.batch_histogram: Dict[int, int] = {}
            self._latencies: List[float] = []
            self._first_submit: Optional[float] = None
            self._last_complete: Optional[float] = None

    # -- recording hooks (called by the batcher) ------------------------

    def record_submit(self, queue_depth: int) -> None:
        """One request admitted with ``queue_depth`` requests ahead."""
        now = self._clock()
        with self._lock:
            self.submitted += 1
            self._queue_depth_sum += queue_depth
            if queue_depth > self.queue_depth_peak:
                self.queue_depth_peak = queue_depth
            if self._first_submit is None:
                self._first_submit = now

    def record_shed(self) -> None:
        """One request rejected by admission control."""
        with self._lock:
            self.shed += 1

    def record_deadline_shed(self, count: int = 1) -> None:
        """``count`` requests shed because their deadline expired."""
        with self._lock:
            self.deadline_shed += int(count)

    def record_breaker_rejection(self) -> None:
        """One request rejected by an open circuit breaker."""
        with self._lock:
            self.breaker_rejections += 1

    def record_batch(self, latencies_seconds: Sequence[float]) -> None:
        """One coalesced batch completed; per-request latencies in s."""
        size = len(latencies_seconds)
        now = self._clock()
        with self._lock:
            self.completed += size
            self.batch_histogram[size] = self.batch_histogram.get(size, 0) + 1
            self._latencies.extend(float(v) for v in latencies_seconds)
            self._last_complete = now

    def record_failed(self, count: int) -> None:
        """``count`` requests failed inside the model runner."""
        with self._lock:
            self.failed += int(count)

    # -- summaries ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable summary of everything recorded so far."""
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            histogram = dict(sorted(self.batch_histogram.items()))
            batches = sum(histogram.values())
            occupancy = (
                self.completed / (batches * self.max_batch) if batches else 0.0
            )
            window = None
            if self._first_submit is not None and self._last_complete is not None:
                window = max(self._last_complete - self._first_submit, 1e-9)
            summary: Dict[str, Any] = {
                "max_batch": self.max_batch,
                "submitted": self.submitted,
                "completed": self.completed,
                "shed": self.shed,
                "failed": self.failed,
                "deadline_shed": self.deadline_shed,
                "breaker_rejections": self.breaker_rejections,
                "batches": batches,
                "batch_size_histogram": {str(k): v for k, v in histogram.items()},
                "mean_batch_size": round(self.completed / batches, 3) if batches else 0.0,
                "batch_occupancy": round(occupancy, 4),
                "queue_depth_peak": self.queue_depth_peak,
                "queue_depth_mean": (
                    round(self._queue_depth_sum / self.submitted, 3)
                    if self.submitted
                    else 0.0
                ),
                "window_seconds": round(window, 6) if window else 0.0,
                "requests_per_second": (
                    round(self.completed / window, 2) if window else 0.0
                ),
            }
        summary["latency_ms"] = latency_summary_ms(latencies)
        return summary

    def latencies_seconds(self) -> np.ndarray:
        with self._lock:
            return np.asarray(self._latencies, dtype=np.float64)


def latency_summary_ms(latencies_seconds: np.ndarray) -> Dict[str, float]:
    """p50/p95/p99/mean/max of a latency sample, in milliseconds."""
    sample = np.asarray(latencies_seconds, dtype=np.float64)
    if sample.size == 0:
        return {"count": 0}
    ms = sample * 1e3
    summary: Dict[str, float] = {"count": int(ms.size)}
    for pct in LATENCY_PERCENTILES:
        summary[f"p{pct:g}"] = round(float(np.percentile(ms, pct)), 3)
    summary["mean"] = round(float(ms.mean()), 3)
    summary["max"] = round(float(ms.max()), 3)
    return summary


def dump_stats(payload: Dict[str, Any], path) -> None:
    """Write a stats payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_stats(path) -> Dict[str, Any]:
    """Read a stats payload written by :func:`dump_stats`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def render_stats(payload: Dict[str, Any]) -> str:
    """ASCII rendering of a stats payload (``repro serve-stats``).

    Accepts either one model summary (a :meth:`ServingMetrics.snapshot`
    dict) or a loadtest payload with a ``"models"`` mapping; unknown
    shapes fall back to pretty-printed JSON so the view never fails on
    older files.
    """
    models = payload.get("models")
    if models is None and "completed" in payload:
        models = {payload.get("model", "model"): payload}
    if not isinstance(models, dict) or not models:
        return json.dumps(payload, indent=2, sort_keys=True)
    lines: List[str] = []
    header = payload.get("loadtest")
    if isinstance(header, dict):
        described = ", ".join(
            f"{key}={header[key]}"
            for key in ("mode", "duration_seconds", "concurrency", "offered_rps")
            if key in header
        )
        lines.append(f"loadtest: {described}")
    for name, stats in sorted(models.items()):
        latency = stats.get("latency_ms", {})
        lines.append(f"model {name} (max_batch={stats.get('max_batch', '?')}):")
        lines.append(
            "  requests:  "
            f"{stats.get('completed', 0)} completed, "
            f"{stats.get('shed', 0)} shed, "
            f"{stats.get('failed', 0)} failed "
            f"({stats.get('requests_per_second', 0.0)} req/s)"
        )
        if stats.get("deadline_shed") or stats.get("breaker_rejections"):
            lines.append(
                "  reliability: "
                f"{stats.get('deadline_shed', 0)} deadline shed, "
                f"{stats.get('breaker_rejections', 0)} breaker rejections"
            )
        breaker = stats.get("breaker")
        if isinstance(breaker, dict):
            lines.append(
                "  breaker:   "
                f"state {breaker.get('state', '?')}, "
                f"{breaker.get('trips', 0)} trip(s), "
                f"{breaker.get('rejections', 0)} rejection(s)"
            )
        lines.append(
            "  batching:  "
            f"{stats.get('batches', 0)} batches, "
            f"mean size {stats.get('mean_batch_size', 0.0)}, "
            f"occupancy {stats.get('batch_occupancy', 0.0)}"
        )
        lines.append(
            "  queue:     "
            f"depth mean {stats.get('queue_depth_mean', 0.0)}, "
            f"peak {stats.get('queue_depth_peak', 0)}"
        )
        if latency.get("count"):
            lines.append(
                "  latency:   "
                + ", ".join(
                    f"{key} {latency[key]}ms"
                    for key in ("p50", "p95", "p99", "mean", "max")
                    if key in latency
                )
            )
        histogram = stats.get("batch_size_histogram", {})
        if histogram:
            rendered = "  ".join(
                f"{size}:{count}" for size, count in sorted(
                    histogram.items(), key=lambda kv: int(kv[0])
                )
            )
            lines.append(f"  batch hist (size:count):  {rendered}")
    plan_cache = payload.get("plan_cache")
    if isinstance(plan_cache, dict):
        lines.append("plan cache:")
        lines.append(
            "  plans:     "
            f"{plan_cache.get('plan_hits', 0)} hit(s), "
            f"{plan_cache.get('plan_misses', 0)} miss(es), "
            f"{plan_cache.get('plan_compiles', 0)} compile(s)"
        )
        lines.append(
            "  trains:    "
            f"{plan_cache.get('trains_hits', 0)} hit(s), "
            f"{plan_cache.get('trains_misses', 0)} miss(es)"
        )
    pool = payload.get("pool")
    if isinstance(pool, dict):
        lines.append("pool:")
        engine = pool.get("engine")
        if engine:
            lines.append(f"  engine:    {engine}")
        lines.append(
            "  shards:    "
            f"{len(pool.get('alive_shards', []))} alive of "
            f"{pool.get('jobs', '?')}  "
            f"(respawns {pool.get('respawns', 0)}, "
            f"wedge kills {pool.get('wedge_kills', 0)})"
        )
        spawn = pool.get("spawn_ready_seconds")
        if isinstance(spawn, dict) and spawn.get("count"):
            lines.append(
                "  spawn:     "
                f"{spawn.get('count', 0)} come-up(s), "
                f"mean {round(spawn.get('mean', 0.0) * 1e3, 1)}ms, "
                f"max {round(spawn.get('max', 0.0) * 1e3, 1)}ms"
            )
        lines.append(
            "  tasks:     "
            f"{pool.get('requeues', 0)} requeued, "
            f"{pool.get('duplicate_completions', 0)} duplicate completions "
            f"(no-ops), {pool.get('quarantined', 0)} quarantined, "
            f"{pool.get('quarantine_rejections', 0)} quarantine rejections, "
            f"{pool.get('deadline_shed', 0)} deadline shed"
        )
        supervisor = pool.get("supervisor")
        if isinstance(supervisor, dict):
            slots = supervisor.get("slots", {})
            described = "  ".join(
                f"{slot}:{info.get('breaker', '?')}"
                f"({info.get('respawns', 0)})"
                for slot, info in sorted(slots.items())
            )
            lines.append(
                "  supervisor: "
                f"{supervisor.get('respawns', 0)} respawn(s), "
                f"{supervisor.get('crash_loop_trips', 0)} crash-loop trip(s)"
                + (f"  slots {described}" if described else "")
            )
    learner = payload.get("learner")
    if isinstance(learner, dict):
        lines.append("learner:")
        lines.append(
            "  epochs:    "
            f"serving {learner.get('serving_epoch', '?')} "
            f"(latest {learner.get('epoch', '?')}, "
            f"last good {learner.get('last_good_epoch', '?')}), "
            f"staleness {learner.get('staleness', 0)} window(s)"
        )
        lines.append(
            "  windows:   "
            f"{learner.get('windows', 0)} run, "
            f"{learner.get('promotions', 0)} promoted, "
            f"{learner.get('rejections', 0)} gate-rejected, "
            f"{learner.get('rollbacks', 0)} rolled back "
            f"({learner.get('hot_swaps', 0)} hot-swap(s))"
        )
        slo = learner.get("slo", {})
        lines.append(
            "  slo:       "
            f"gate retention {slo.get('gate_retention', '?')}, "
            f"rollback retention {slo.get('rollback_retention', '?')}, "
            f"probe accuracy {learner.get('probe_accuracy', '?')}"
        )
        rollback = learner.get("last_rollback")
        if isinstance(rollback, dict):
            lines.append(
                "  rollback:  "
                f"epoch {rollback.get('from_epoch', '?')} -> "
                f"{rollback.get('to_epoch', '?')} "
                f"(breach {rollback.get('breach_accuracy', '?')}, "
                f"restored {rollback.get('restored_accuracy', '?')}, "
                f"baseline restored: "
                f"{'yes' if rollback.get('baseline_restored') else 'NO'})"
            )
    integrity = payload.get("integrity")
    if isinstance(integrity, dict):
        lines.append("integrity:")
        lines.append(
            "  audit:     "
            f"rate {integrity.get('audit_rate', 0.0)}, "
            f"{integrity.get('audit_checks', 0)} check(s), "
            f"{integrity.get('audit_matches', 0)} match(es), "
            f"{integrity.get('audit_mismatches', 0)} mismatch(es), "
            f"{integrity.get('audit_skipped', 0)} skipped"
        )
        lines.append(
            "  scrub:     "
            f"period {integrity.get('scrub_period', None)}, "
            f"{integrity.get('scrub_passes', 0)} clean pass(es), "
            f"{integrity.get('scrub_failures', 0)} corruption(s) "
            f"({integrity.get('corrupt_arrays_detected', 0)} array(s), "
            f"{integrity.get('restores', 0)} restore(s))"
        )
        lines.append(
            "  defense:   "
            f"{integrity.get('corrupt_shard_respawns', 0)} corrupt-shard "
            f"respawn(s), {integrity.get('stale_results_discarded', 0)} stale "
            f"result(s) discarded, {integrity.get('sentinel_trips', 0)} "
            f"sentinel trip(s)"
        )
        quarantined = integrity.get("audit_quarantined_pairs") or []
        if quarantined:
            described = "  ".join(f"{sid}:{backend}" for sid, backend in quarantined)
            lines.append(f"  quarantined (shard:backend):  {described}")
        if integrity.get("unrecoverable"):
            lines.append("  UNRECOVERABLE: corruption restore failed")
    chaos = payload.get("chaos")
    if isinstance(chaos, dict):
        lines.append("chaos:")
        lines.append(
            f"  scenario:  {chaos.get('scenario', '?')} "
            f"(seed {chaos.get('seed', '?')})"
        )
        outcomes = chaos.get("outcomes", {})
        if outcomes:
            lines.append(
                "  outcomes:  "
                + ", ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
            )
        lines.append(
            "  invariants: "
            f"lost {chaos.get('lost', '?')}, "
            f"duplicates {chaos.get('duplicates', '?')}, "
            f"bit mismatches {chaos.get('bit_mismatches', '?')}"
        )
    return "\n".join(lines)


def render_health(payload: Dict[str, Any]) -> str:
    """ASCII rendering of a health payload (``repro serve-health``).

    Accepts either a bare :meth:`InferenceServer.health` payload or a
    full loadtest stats payload carrying one under ``"health"``.
    """
    health = payload.get("health", payload)
    if not isinstance(health, dict) or "ready" not in health:
        return json.dumps(payload, indent=2, sort_keys=True)
    lines = [
        f"ready: {'yes' if health.get('ready') else 'NO'}",
        f"live:  {'yes' if health.get('live', True) else 'NO'}",
    ]
    for name, info in sorted(health.get("models", {}).items()):
        breaker = info.get("breaker", {})
        lines.append(
            f"model {name}: breaker {breaker.get('state', '?')} "
            f"({breaker.get('trips', 0)} trip(s)), "
            f"queue depth {info.get('queue_depth', 0)}"
        )
    pool = health.get("pool")
    if isinstance(pool, dict):
        lines.append(
            f"pool: {len(pool.get('alive_shards', []))} of "
            f"{pool.get('jobs', '?')} shard(s) alive"
        )
    integrity = health.get("integrity")
    if isinstance(integrity, dict):
        lines.append(
            f"integrity: audit {integrity.get('audit_checks', 0)} check(s) "
            f"({integrity.get('audit_mismatches', 0)} mismatch(es)), "
            f"scrub {integrity.get('scrub_passes', 0)} pass(es) "
            f"({integrity.get('scrub_failures', 0)} corruption(s)), "
            f"{'UNRECOVERABLE' if integrity.get('unrecoverable') else 'recoverable'}"
        )
    learner = health.get("learner")
    if isinstance(learner, dict):
        lines.append(
            f"learner: epoch {learner.get('serving_epoch', '?')} serving "
            f"(staleness {learner.get('staleness', 0)}, "
            f"rollbacks {learner.get('rollbacks', 0)}, "
            f"retention SLO "
            f"{'ok' if learner.get('retention_slo_ok', True) else 'BREACHED'})"
        )
    return "\n".join(lines)
