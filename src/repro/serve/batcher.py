"""Dynamic micro-batching scheduler.

Single-image requests arrive one at a time; the batched engines
(:mod:`repro.snn.batched`, the GEMM clean paths) are fastest when fed
many images at once.  :class:`MicroBatcher` bridges the two: callers
``submit()`` individual payloads and immediately receive a
:class:`concurrent.futures.Future`; a dedicated scheduler thread
coalesces queued payloads into batches under a
``max_batch`` / ``max_wait_us`` policy and runs them through one
batched-engine call, then routes each result back to its future
positionally.

Correctness guarantees:

* **Deterministic, bit-identical routing.**  Result ``i`` of the
  batch call answers request ``i`` of the batch — and because every
  model runner derives per-request randomness from the request's own
  ``index`` (``child_rng(seed, stream, index)``, the PR2 scheme), the
  *value* of each result is independent of which requests happened to
  be coalesced together.  Dynamic batching can change latency, never
  answers.  (Asserted by ``tests/serve/test_engine.py`` and the PR4
  bench.)
* **Bounded memory.**  The queue holds at most ``max_queue`` pending
  requests; beyond that, ``submit`` sheds with
  :class:`~repro.core.errors.Overloaded` instead of buffering without
  bound.
* **Deadline propagation.**  ``submit(payload, deadline=...)`` attaches
  an absolute deadline (``time.perf_counter`` seconds).  Expired work
  is *shed* with a typed
  :class:`~repro.core.errors.DeadlineExceeded` — at submission when
  already expired, and at batch formation when the request's deadline
  has passed *or* cannot be met by the next batch (estimated from an
  EWMA of recent batch service times).  A doomed request therefore
  never consumes engine or shard work, and is never silently dropped:
  its future always carries the typed error.  Sheds are counted as
  ``deadline_shed`` in :class:`~repro.serve.metrics.ServingMetrics`.
* **Graceful drain.**  ``close(drain=True)`` (the default) stops
  admissions, lets the scheduler finish every queued request, then
  joins the thread.  ``close(drain=False)`` cancels queued requests
  with :class:`~repro.core.errors.ServingError`.

The latency policy mirrors what GPU inference servers call *dynamic
batching*: the first queued request opens a batching window of
``max_wait_us``; the batch is dispatched as soon as it is full
(``max_batch``) or the window expires, whichever comes first.  Under
load the window never expires — the queue refills faster than the
engine drains it, so batches run full and the wait cost vanishes.
At low load the worst-case added latency is exactly ``max_wait_us``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.errors import DeadlineExceeded, Overloaded, ServingError
from .metrics import ServingMetrics

#: EWMA smoothing factor for the batch service-time estimate used by
#: the can't-make-its-deadline shed (higher = faster adaptation).
_SERVICE_EWMA_ALPHA = 0.3


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic micro-batching scheduler.

    Attributes:
        max_batch: largest coalesced batch handed to the engine.
        max_wait_us: batching window opened by the first queued
            request, in microseconds.  0 dispatches immediately with
            whatever is queued (latency-optimal, throughput-pessimal).
        max_queue: admission-control bound on queued requests;
            ``submit`` beyond it raises ``Overloaded``.
    """

    max_batch: int = 16
    max_wait_us: float = 2000.0
    max_queue: int = 1024

    def validate(self) -> "BatchPolicy":
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_us < 0:
            raise ServingError(f"max_wait_us must be >= 0, got {self.max_wait_us}")
        if self.max_queue < 1:
            raise ServingError(f"max_queue must be >= 1, got {self.max_queue}")
        return self


class _Pending:
    """One queued request: payload + future + timestamps + deadline."""

    __slots__ = ("payload", "future", "enqueued_at", "deadline")

    def __init__(
        self, payload: Any, enqueued_at: float, deadline: Optional[float] = None
    ):
        self.payload = payload
        self.future: Future = Future()
        self.enqueued_at = enqueued_at
        self.deadline = deadline


class MicroBatcher:
    """Coalesces submitted payloads into batched ``run_batch`` calls.

    Args:
        run_batch: ``fn(payloads: list) -> sequence`` returning one
            result per payload, positionally aligned.  Runs on the
            scheduler thread; exceptions fail that batch's futures.
        policy: the :class:`BatchPolicy`.
        metrics: optional :class:`ServingMetrics` receiving queue /
            batch / latency observations.
        name: thread-name suffix for diagnostics.
    """

    def __init__(
        self,
        run_batch: Callable[[List[Any]], Sequence[Any]],
        policy: Optional[BatchPolicy] = None,
        metrics: Optional[ServingMetrics] = None,
        name: str = "model",
    ):
        self.policy = (policy or BatchPolicy()).validate()
        self.metrics = metrics if metrics is not None else ServingMetrics(
            self.policy.max_batch
        )
        self._run_batch = run_batch
        self._service_ewma = 0.0
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-batcher-{name}", daemon=True
        )
        self._thread.start()

    # -- client side ----------------------------------------------------

    def submit(self, payload: Any, deadline: Optional[float] = None) -> Future:
        """Enqueue one payload; returns its future.

        ``deadline`` is an absolute ``time.perf_counter`` timestamp;
        an already-expired deadline sheds immediately with
        :class:`DeadlineExceeded` (the request is not enqueued).
        Raises :class:`Overloaded` when the queue is at ``max_queue``
        (the request is *not* enqueued) and :class:`ServingError`
        after :meth:`close`.
        """
        now = time.perf_counter()
        with self._wake:
            if self._closed:
                raise ServingError("batcher is closed; no new requests accepted")
            if deadline is not None and now >= deadline:
                self.metrics.record_deadline_shed()
                raise DeadlineExceeded(
                    f"deadline expired {(now - deadline) * 1e3:.1f}ms before "
                    "submission; request shed"
                )
            depth = len(self._queue)
            if depth >= self.policy.max_queue:
                self.metrics.record_shed()
                raise Overloaded(
                    f"queue full ({depth}/{self.policy.max_queue} pending); "
                    "request shed"
                )
            pending = _Pending(payload, now, deadline)
            self._queue.append(pending)
            self.metrics.record_submit(depth)
            self._wake.notify()
            return pending.future

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- scheduler thread ----------------------------------------------

    def service_estimate(self) -> float:
        """EWMA of recent batch service times, in seconds (0.0 cold)."""
        return self._service_ewma

    def _doomed(self, pending: _Pending, now: float) -> bool:
        """True when ``pending`` is expired or can't make the next batch."""
        if pending.deadline is None:
            return False
        if now >= pending.deadline:
            return True
        estimate = self._service_ewma
        return estimate > 0.0 and now + estimate > pending.deadline

    def _collect(self) -> Tuple[Optional[List[_Pending]], List[_Pending]]:
        """Block for the first live request, then fill the window.

        Returns ``(batch, shed)`` where ``shed`` holds requests whose
        deadline expired (or provably cannot be met) while queued —
        the caller fails them with :class:`DeadlineExceeded` outside
        the lock.  ``batch`` is ``None`` when the batcher is closed
        and the queue has drained (``close(drain=False)`` empties the
        queue itself); it may be empty when only sheds were found.
        """
        policy = self.policy
        shed: List[_Pending] = []
        with self._wake:
            while True:
                while not self._queue:
                    if self._closed:
                        return None, shed
                    if shed:
                        return [], shed  # fail sheds promptly
                    self._wake.wait()
                first = self._queue.popleft()
                if self._doomed(first, time.perf_counter()):
                    shed.append(first)
                    continue
                batch = [first]
                break
            if policy.max_batch == 1:
                return batch, shed
            window_ends = first.enqueued_at + policy.max_wait_us * 1e-6
            while len(batch) < policy.max_batch:
                if self._queue:
                    candidate = self._queue.popleft()
                    if self._doomed(candidate, time.perf_counter()):
                        shed.append(candidate)
                        continue
                    batch.append(candidate)
                    continue
                if self._closed:
                    break  # drain what we have; don't wait for more
                remaining = window_ends - time.perf_counter()
                if remaining <= 0:
                    break
                self._wake.wait(remaining)
            return batch, shed

    def _fail_shed(self, shed: List[_Pending]) -> None:
        if not shed:
            return
        self.metrics.record_deadline_shed(len(shed))
        now = time.perf_counter()
        for pending in shed:
            overdue = (
                (now - pending.deadline) * 1e3
                if pending.deadline is not None and now >= pending.deadline
                else None
            )
            detail = (
                f"expired {overdue:.1f}ms ago while queued"
                if overdue is not None
                else "cannot be met by the next batch "
                f"(service estimate {self._service_ewma * 1e3:.1f}ms)"
            )
            pending.future.set_exception(
                DeadlineExceeded(f"request deadline {detail}; shed unexecuted")
            )

    def _loop(self) -> None:
        while True:
            batch, shed = self._collect()
            self._fail_shed(shed)
            if batch is None:
                return
            if not batch:
                continue
            started = time.perf_counter()
            try:
                results = self._run_batch([p.payload for p in batch])
            except Exception as exc:  # noqa: BLE001 — fail this batch only
                self.metrics.record_failed(len(batch))
                for pending in batch:
                    pending.future.set_exception(exc)
                continue
            if len(results) != len(batch):
                error = ServingError(
                    f"runner returned {len(results)} results for a batch of "
                    f"{len(batch)}"
                )
                self.metrics.record_failed(len(batch))
                for pending in batch:
                    pending.future.set_exception(error)
                continue
            done = time.perf_counter()
            service = done - started
            self._service_ewma = (
                service
                if self._service_ewma == 0.0
                else _SERVICE_EWMA_ALPHA * service
                + (1.0 - _SERVICE_EWMA_ALPHA) * self._service_ewma
            )
            self.metrics.record_batch([done - p.enqueued_at for p in batch])
            for pending, result in zip(batch, results):
                pending.future.set_result(result)

    # -- lifecycle ------------------------------------------------------

    def close(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop admissions; finish (or cancel) queued work; join.

        ``drain=True`` completes every already-admitted request before
        returning.  ``drain=False`` fails queued requests with
        :class:`ServingError` (the batch in flight still completes).
        Idempotent.
        """
        cancelled: List[_Pending] = []
        with self._wake:
            self._closed = True
            if not drain:
                cancelled = list(self._queue)
                self._queue.clear()
            self._wake.notify_all()
        for pending in cancelled:
            pending.future.set_exception(
                ServingError("batcher closed before the request ran")
            )
        self._thread.join(timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
