"""Dynamic micro-batching scheduler.

Single-image requests arrive one at a time; the batched engines
(:mod:`repro.snn.batched`, the GEMM clean paths) are fastest when fed
many images at once.  :class:`MicroBatcher` bridges the two: callers
``submit()`` individual payloads and immediately receive a
:class:`concurrent.futures.Future`; a dedicated scheduler thread
coalesces queued payloads into batches under a
``max_batch`` / ``max_wait_us`` policy and runs them through one
batched-engine call, then routes each result back to its future
positionally.

Correctness guarantees:

* **Deterministic, bit-identical routing.**  Result ``i`` of the
  batch call answers request ``i`` of the batch — and because every
  model runner derives per-request randomness from the request's own
  ``index`` (``child_rng(seed, stream, index)``, the PR2 scheme), the
  *value* of each result is independent of which requests happened to
  be coalesced together.  Dynamic batching can change latency, never
  answers.  (Asserted by ``tests/serve/test_engine.py`` and the PR4
  bench.)
* **Bounded memory.**  The queue holds at most ``max_queue`` pending
  requests; beyond that, ``submit`` sheds with
  :class:`~repro.core.errors.Overloaded` instead of buffering without
  bound.
* **Graceful drain.**  ``close(drain=True)`` (the default) stops
  admissions, lets the scheduler finish every queued request, then
  joins the thread.  ``close(drain=False)`` cancels queued requests
  with :class:`~repro.core.errors.ServingError`.

The latency policy mirrors what GPU inference servers call *dynamic
batching*: the first queued request opens a batching window of
``max_wait_us``; the batch is dispatched as soon as it is full
(``max_batch``) or the window expires, whichever comes first.  Under
load the window never expires — the queue refills faster than the
engine drains it, so batches run full and the wait cost vanishes.
At low load the worst-case added latency is exactly ``max_wait_us``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from ..core.errors import Overloaded, ServingError
from .metrics import ServingMetrics


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic micro-batching scheduler.

    Attributes:
        max_batch: largest coalesced batch handed to the engine.
        max_wait_us: batching window opened by the first queued
            request, in microseconds.  0 dispatches immediately with
            whatever is queued (latency-optimal, throughput-pessimal).
        max_queue: admission-control bound on queued requests;
            ``submit`` beyond it raises ``Overloaded``.
    """

    max_batch: int = 16
    max_wait_us: float = 2000.0
    max_queue: int = 1024

    def validate(self) -> "BatchPolicy":
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_us < 0:
            raise ServingError(f"max_wait_us must be >= 0, got {self.max_wait_us}")
        if self.max_queue < 1:
            raise ServingError(f"max_queue must be >= 1, got {self.max_queue}")
        return self


class _Pending:
    """One queued request: payload + future + enqueue timestamp."""

    __slots__ = ("payload", "future", "enqueued_at")

    def __init__(self, payload: Any, enqueued_at: float):
        self.payload = payload
        self.future: Future = Future()
        self.enqueued_at = enqueued_at


class MicroBatcher:
    """Coalesces submitted payloads into batched ``run_batch`` calls.

    Args:
        run_batch: ``fn(payloads: list) -> sequence`` returning one
            result per payload, positionally aligned.  Runs on the
            scheduler thread; exceptions fail that batch's futures.
        policy: the :class:`BatchPolicy`.
        metrics: optional :class:`ServingMetrics` receiving queue /
            batch / latency observations.
        name: thread-name suffix for diagnostics.
    """

    def __init__(
        self,
        run_batch: Callable[[List[Any]], Sequence[Any]],
        policy: Optional[BatchPolicy] = None,
        metrics: Optional[ServingMetrics] = None,
        name: str = "model",
    ):
        self.policy = (policy or BatchPolicy()).validate()
        self.metrics = metrics if metrics is not None else ServingMetrics(
            self.policy.max_batch
        )
        self._run_batch = run_batch
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-batcher-{name}", daemon=True
        )
        self._thread.start()

    # -- client side ----------------------------------------------------

    def submit(self, payload: Any) -> Future:
        """Enqueue one payload; returns its future.

        Raises :class:`Overloaded` when the queue is at ``max_queue``
        (the request is *not* enqueued) and :class:`ServingError`
        after :meth:`close`.
        """
        with self._wake:
            if self._closed:
                raise ServingError("batcher is closed; no new requests accepted")
            depth = len(self._queue)
            if depth >= self.policy.max_queue:
                self.metrics.record_shed()
                raise Overloaded(
                    f"queue full ({depth}/{self.policy.max_queue} pending); "
                    "request shed"
                )
            pending = _Pending(payload, time.perf_counter())
            self._queue.append(pending)
            self.metrics.record_submit(depth)
            self._wake.notify()
            return pending.future

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- scheduler thread ----------------------------------------------

    def _collect(self) -> Optional[List[_Pending]]:
        """Block for the first request, then fill the batching window.

        Returns ``None`` when the batcher is closed and the queue has
        drained (``close(drain=False)`` empties the queue itself).
        """
        policy = self.policy
        with self._wake:
            while not self._queue:
                if self._closed:
                    return None
                self._wake.wait()
            batch = [self._queue.popleft()]
            if policy.max_batch == 1:
                return batch
            deadline = batch[0].enqueued_at + policy.max_wait_us * 1e-6
            while len(batch) < policy.max_batch:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                if self._closed:
                    break  # drain what we have; don't wait for more
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._wake.wait(remaining)
            return batch

    def _loop(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            try:
                results = self._run_batch([p.payload for p in batch])
            except Exception as exc:  # noqa: BLE001 — fail this batch only
                self.metrics.record_failed(len(batch))
                for pending in batch:
                    pending.future.set_exception(exc)
                continue
            if len(results) != len(batch):
                error = ServingError(
                    f"runner returned {len(results)} results for a batch of "
                    f"{len(batch)}"
                )
                self.metrics.record_failed(len(batch))
                for pending in batch:
                    pending.future.set_exception(error)
                continue
            done = time.perf_counter()
            self.metrics.record_batch([done - p.enqueued_at for p in batch])
            for pending, result in zip(batch, results):
                pending.future.set_result(result)

    # -- lifecycle ------------------------------------------------------

    def close(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop admissions; finish (or cancel) queued work; join.

        ``drain=True`` completes every already-admitted request before
        returning.  ``drain=False`` fails queued requests with
        :class:`ServingError` (the batch in flight still completes).
        Idempotent.
        """
        cancelled: List[_Pending] = []
        with self._wake:
            self._closed = True
            if not drain:
                cancelled = list(self._queue)
                self._queue.clear()
            self._wake.notify_all()
        for pending in cancelled:
            pending.future.set_exception(
                ServingError("batcher closed before the request ran")
            )
        self._thread.join(timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
