"""Closed- and open-loop load generation against the serving layer.

Two canonical arrival models (the same pair inference-server papers
benchmark under):

* **Closed loop** — ``concurrency`` client threads, each issuing its
  next request the moment the previous one completes.  Offered load
  adapts to service rate; the interesting outputs are throughput and
  the latency distribution at a fixed concurrency.
* **Open loop** — requests arrive on a fixed schedule
  (``offered_rps``), regardless of completions.  Offered load does
  *not* adapt, so an overloaded server must shed — the interesting
  outputs are achieved-vs-offered throughput and the shed rate
  (admission control visibly working instead of the queue growing
  without bound).

Client-side request indices are drawn from per-client child RNGs
(``child_rng(seed, "loadgen", client_id)``), so a load run's request
sequence is reproducible independent of thread interleaving.

:func:`run_loadtest` is the CLI / benchmark driver: it trains (or
loads from the PR2 model cache) the requested models, builds an
:class:`~repro.serve.engine.InferenceServer` over the chosen backend
(in-process or a :class:`~repro.serve.workers.ShardedPool`), generates
load, verifies served answers are bit-identical to direct predictions,
and returns one JSON-ready payload (host metadata included).
"""

from __future__ import annotations

import signal
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.errors import DeadlineExceeded, Overloaded, ServingError
from ..core.hostinfo import host_metadata
from ..core.rng import child_rng
from .batcher import BatchPolicy
from .engine import InferenceServer

#: Model names the driver knows how to build.
KNOWN_MODELS = ("mlp", "mlp-q", "snnwt", "snnwot", "snnbp")


class GracefulDrain:
    """SIGTERM/SIGINT-driven graceful shutdown for load runs.

    Entering the context installs handlers that *set an event* instead
    of raising ``KeyboardInterrupt`` mid-batch: load loops poll
    :attr:`stop` and exit cleanly, the server drains its queues, and
    the already-collected metrics are still checkpointed to the output
    payload.  Exiting restores the previous handlers.  ``triggered``
    reports whether a signal arrived (the payload's ``drained`` flag).

    Installation is a no-op off the main thread (Python only allows
    signal handlers there), so library callers and tests can use the
    same code path unconditionally.
    """

    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self) -> None:
        self.stop = threading.Event()
        self._previous: Dict[int, Any] = {}
        self._installed = False

    @property
    def triggered(self) -> bool:
        return self.stop.is_set()

    def _handle(self, _signum, _frame) -> None:
        self.stop.set()

    def __enter__(self) -> "GracefulDrain":
        if threading.current_thread() is threading.main_thread():
            for signum in self.SIGNALS:
                self._previous[signum] = signal.signal(signum, self._handle)
            self._installed = True
        return self

    def __exit__(self, *_exc) -> None:
        if self._installed:
            for signum, previous in self._previous.items():
                signal.signal(signum, previous)
            self._previous.clear()
            self._installed = False


def closed_loop(
    server: InferenceServer,
    model: str,
    n_indices: int,
    concurrency: int = 8,
    duration_seconds: float = 5.0,
    seed: int = 0,
    timeout: float = 60.0,
    deadline_ms: Optional[float] = None,
    stop_event: Optional[threading.Event] = None,
) -> Dict[str, Any]:
    """Drive ``concurrency`` synchronous clients for ``duration_seconds``.

    ``deadline_ms`` attaches a per-request latency budget (deadline
    sheds are tallied separately from hard errors).  ``stop_event``
    ends the run early — the :class:`GracefulDrain` hook.
    """
    if concurrency < 1:
        raise ServingError(f"concurrency must be >= 1, got {concurrency}")
    if n_indices < 1:
        raise ServingError(f"need a non-empty index space, got {n_indices}")
    stop = time.perf_counter() + duration_seconds
    counts = [0] * concurrency
    deadline_sheds = [0] * concurrency
    errors: List[str] = []
    errors_lock = threading.Lock()

    def client(client_id: int) -> None:
        rng = child_rng(seed, "loadgen", client_id)
        while time.perf_counter() < stop:
            if stop_event is not None and stop_event.is_set():
                return
            index = int(rng.integers(n_indices))
            try:
                server.predict(
                    model, index=index, timeout=timeout, deadline_ms=deadline_ms
                )
            except DeadlineExceeded:
                deadline_sheds[client_id] += 1
                continue
            except Exception as exc:  # noqa: BLE001 — tally, keep driving
                with errors_lock:
                    errors.append(repr(exc))
                continue
            counts[client_id] += 1

    threads = [
        threading.Thread(target=client, args=(cid,), name=f"repro-client-{cid}")
        for cid in range(concurrency)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    total = int(sum(counts))
    return {
        "mode": "closed",
        "concurrency": concurrency,
        "duration_seconds": round(duration_seconds, 3),
        "wall_seconds": round(wall, 3),
        "client_requests": total,
        "client_errors": len(errors),
        "client_deadline_shed": int(sum(deadline_sheds)),
        "error_samples": errors[:3],
        "client_rps": round(total / wall, 2) if wall > 0 else 0.0,
    }


def open_loop(
    server: InferenceServer,
    model: str,
    n_indices: int,
    offered_rps: float = 200.0,
    duration_seconds: float = 5.0,
    seed: int = 0,
    timeout: float = 60.0,
    deadline_ms: Optional[float] = None,
    stop_event: Optional[threading.Event] = None,
) -> Dict[str, Any]:
    """Offer a fixed arrival rate; count sheds instead of slowing down."""
    if offered_rps <= 0:
        raise ServingError(f"offered_rps must be positive, got {offered_rps}")
    if n_indices < 1:
        raise ServingError(f"need a non-empty index space, got {n_indices}")
    rng = child_rng(seed, "loadgen", 0)
    n_requests = max(int(offered_rps * duration_seconds), 1)
    interval = 1.0 / offered_rps
    futures = []
    shed = 0
    deadline_shed = 0
    errors: List[str] = []
    start = time.perf_counter()
    for j in range(n_requests):
        if stop_event is not None and stop_event.is_set():
            break
        target = start + j * interval
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        index = int(rng.integers(n_indices))
        try:
            futures.append(
                server.submit(model, index=index, deadline_ms=deadline_ms)
            )
        except Overloaded:
            shed += 1
        except DeadlineExceeded:
            deadline_shed += 1
        except Exception as exc:  # noqa: BLE001
            errors.append(repr(exc))
    completed = 0
    for future in futures:
        try:
            future.result(timeout)
            completed += 1
        except DeadlineExceeded:
            deadline_shed += 1
        except Exception as exc:  # noqa: BLE001
            errors.append(repr(exc))
    wall = time.perf_counter() - start
    return {
        "mode": "open",
        "offered_rps": offered_rps,
        "duration_seconds": round(duration_seconds, 3),
        "wall_seconds": round(wall, 3),
        "client_requests": completed,
        "client_shed": shed,
        "client_deadline_shed": deadline_shed,
        "client_errors": len(errors),
        "error_samples": errors[:3],
        "client_rps": round(completed / wall, 2) if wall > 0 else 0.0,
    }


# ---------------------------------------------------------------------------
# Driver: models -> server -> load -> payload
# ---------------------------------------------------------------------------


def build_models(
    names: Sequence[str], dataset: str = "digits"
) -> Dict[str, Any]:
    """Train (cache-warm) the requested model set on a workload.

    Uses the standard experiment recipes of :mod:`repro.analysis.common`
    so served models are *the same artifacts* the report evaluates —
    and the PR2 content-addressed cache makes repeat loadtests skip
    straight to inference.
    """
    from ..analysis import common
    from ..core.config import (
        mnist_mlp_config,
        mnist_snn_config,
        mpeg7_mlp_config,
        mpeg7_snn_config,
        sad_mlp_config,
        sad_snn_config,
    )

    loaders = {
        "digits": (common.digits, mnist_mlp_config, mnist_snn_config),
        "shapes": (common.shapes, mpeg7_mlp_config, mpeg7_snn_config),
        "spoken": (common.spoken, sad_mlp_config, sad_snn_config),
    }
    if dataset not in loaders:
        raise ServingError(
            f"unknown dataset {dataset!r}; pick one of {sorted(loaders)}"
        )
    unknown = sorted(set(names) - set(KNOWN_MODELS))
    if unknown:
        raise ServingError(
            f"unknown model(s) {unknown}; pick from {list(KNOWN_MODELS)}"
        )
    loader, mlp_config, snn_config = loaders[dataset]
    train_set, test_set = loader()
    models: Dict[str, Any] = {}
    if {"mlp", "mlp-q"} & set(names):
        mlp = common.train_mlp_model(mlp_config(), train_set)
        if "mlp" in names:
            models["mlp"] = mlp
        if "mlp-q" in names:
            from ..mlp.quantized import QuantizedMLP

            models["mlp-q"] = QuantizedMLP(mlp)
    if {"snnwt", "snnwot"} & set(names):
        network = common.train_snn_model(snn_config(), train_set)
        if "snnwt" in names:
            models["snnwt"] = network
        if "snnwot" in names:
            from ..snn.snn_wot import SNNWithoutTime

            models["snnwot"] = SNNWithoutTime(network)
    if "snnbp" in names:
        models["snnbp"] = common.train_snn_bp_model(snn_config(), train_set)
    return {"models": models, "train": train_set, "test": test_set}


def build_live_learner_model(
    dataset: str = "digits",
    n_neurons: int = 30,
    epochs: int = 2,
    train_images: int = 400,
    seed: int = 0,
):
    """Train (cache-warm) the small SNN tenant the live learner grows.

    The continual-learning tenant deliberately starts *small* — a few
    dozen neurons over a few hundred images — so each STDP window is
    cheap enough to run inside a serving loop, and the offline
    baseline leaves headroom for the stream to move accuracy in either
    direction.  Cached under the standard ``stdp-v1`` recipe, so the
    expensive part of a live-learning run amortizes across sessions.
    """
    import dataclasses

    from ..analysis import common
    from ..core.config import (
        mnist_snn_config,
        mpeg7_snn_config,
        sad_snn_config,
    )

    loaders = {
        "digits": (common.digits, mnist_snn_config),
        "shapes": (common.shapes, mpeg7_snn_config),
        "spoken": (common.spoken, sad_snn_config),
    }
    if dataset not in loaders:
        raise ServingError(
            f"unknown dataset {dataset!r}; pick one of {sorted(loaders)}"
        )
    loader, snn_config = loaders[dataset]
    config = dataclasses.replace(
        snn_config().with_neurons(int(n_neurons)), seed=int(seed)
    )
    train_set, _ = loader()
    subset = train_set.take(min(int(train_images), len(train_set)))
    return common.train_snn_model(config, subset, epochs=int(epochs))


def direct_predictions(
    model, images: np.ndarray, indices: Sequence[int], seed=None
) -> np.ndarray:
    """Reference labels for ``indices`` via the model's direct API.

    The oracle for the bit-identity check: the timed SNN goes through
    :func:`~repro.snn.batched.predict_batch` with explicit indices (the
    same per-index RNG streams the server uses); deterministic models
    predict the rows directly.
    """
    from ..snn.batched import predict_batch
    from ..snn.network import SpikingNetwork

    rows = np.atleast_2d(images)[list(indices)]
    if isinstance(model, SpikingNetwork):
        return predict_batch(model, rows, indices=indices, seed=seed)
    if hasattr(model, "predict_images"):
        return np.asarray(model.predict_images(rows))
    return np.asarray(model.predict(rows))


def verify_bit_identity(
    server: InferenceServer,
    models: Dict[str, Any],
    images: np.ndarray,
    n_check: int = 32,
    seed: int = 0,
) -> Dict[str, bool]:
    """Served labels == direct labels, per model, on a random sample."""
    rng = child_rng(seed, "loadgen-verify")
    n = len(images)
    results: Dict[str, bool] = {}
    for name in server.models:
        indices = sorted(
            int(i) for i in rng.choice(n, size=min(n_check, n), replace=False)
        )
        served = server.predict_many(name, indices=indices)
        expected = direct_predictions(models[name], images, indices)
        results[name] = bool(np.array_equal(served, expected))
    return results


def run_loadtest(
    models: Sequence[str] = ("snnwot",),
    dataset: str = "digits",
    jobs: int = 0,
    max_batch: int = 16,
    max_wait_us: float = 2000.0,
    max_queue: int = 1024,
    duration_seconds: float = 5.0,
    concurrency: int = 8,
    mode: str = "closed",
    offered_rps: float = 200.0,
    seed: int = 0,
    warm: bool = True,
    verify: bool = True,
    deadline_ms: Optional[float] = None,
    max_retries: int = 2,
    supervise: bool = True,
    engine: str = "plan",
    backend: Optional[str] = None,
    audit_rate: float = 0.0,
    scrub_period: Optional[float] = None,
) -> Dict[str, Any]:
    """Train, serve, load, measure; returns the JSON-ready payload.

    ``jobs=0`` serves in-process; ``jobs>=1`` serves through a
    :class:`~repro.serve.workers.ShardedPool` of that many worker
    processes sharing weights and the test-image table via shared
    memory — supervised (dead shards respawn) unless ``supervise``
    is off.  ``deadline_ms`` attaches a per-request latency budget;
    ``max_retries`` bounds per-task shard-death requeues before
    quarantine.  ``engine`` selects the execution backend: ``"plan"``
    (default) serves compiled IR plans, ``"legacy"`` the historical
    per-model runners; both are verified bit-identical against direct
    predictions when ``verify`` is on.  ``backend`` pins the plan
    execution backend (flag > ``REPRO_IR_BACKEND`` > default; ignored
    by the legacy engine).  ``audit_rate`` samples that fraction of
    served batches onto the serial-oracle audit lane (``0.0`` keeps
    the request path bit-identical to an audit-free server);
    ``scrub_period`` enables the pool's background integrity scrubber
    (pool backends only).  SIGTERM/SIGINT drain
    gracefully: load stops, queues flush, and the metrics collected so
    far are still returned (the payload's ``drained`` flag records the
    interruption).
    """
    if mode not in ("closed", "open"):
        raise ServingError(f"mode must be 'closed' or 'open', got {mode!r}")
    if engine == "plan":
        # Resolve here (flag > env > default) so the payload records
        # the backend that actually ran and bad names fail pre-train.
        from ..ir.backends import resolve_backend_name

        backend = resolve_backend_name(backend)
    else:
        backend = None
    names = list(dict.fromkeys(models))  # dedupe, keep order
    built = build_models(names, dataset=dataset)
    test_images = np.asarray(built["test"].images)
    policy = BatchPolicy(
        max_batch=max_batch, max_wait_us=max_wait_us, max_queue=max_queue
    )
    pool = None
    if jobs >= 1:
        from .supervisor import SupervisorPolicy
        from .workers import ShardedPool

        pool = ShardedPool(
            built["models"],
            jobs=jobs,
            images=test_images,
            seed=seed,
            warm=warm,
            max_task_retries=max_retries,
            supervisor=SupervisorPolicy(seed=seed) if supervise else None,
            engine=engine,
            backend=backend,
            scrub_period=scrub_period,
        )
        server = InferenceServer(
            pool=pool,
            policy=policy,
            images=test_images,
            audit_rate=audit_rate,
            audit_seed=seed,
        )
    else:
        server = InferenceServer.from_models(
            built["models"],
            policy=policy,
            images=test_images,
            seed=seed,
            engine=engine,
            backend=backend,
            audit_rate=audit_rate,
            audit_seed=seed,
        )
    payload: Dict[str, Any] = {
        "loadtest": {
            "mode": mode,
            "dataset": dataset,
            "models": names,
            "jobs": jobs,
            "max_batch": max_batch,
            "max_wait_us": max_wait_us,
            "duration_seconds": duration_seconds,
            "concurrency": concurrency,
            "offered_rps": offered_rps if mode == "open" else None,
            "deadline_ms": deadline_ms,
            "max_retries": max_retries,
            "seed": seed,
            "engine": engine,
            "backend": backend,
            "audit_rate": audit_rate,
            "scrub_period": scrub_period,
            "n_test_images": int(len(test_images)),
        },
        "host": host_metadata(),
        "models": {},
    }
    try:
        with GracefulDrain() as drain:
            if warm and jobs == 0:
                server.warm()
            if verify:
                payload["bit_identical"] = verify_bit_identity(
                    server, built["models"], test_images, seed=seed
                )
            for name in names:
                if drain.triggered:
                    break
                for metrics in server.metrics.values():
                    metrics.reset()
                if mode == "closed":
                    client = closed_loop(
                        server,
                        name,
                        len(test_images),
                        concurrency=concurrency,
                        duration_seconds=duration_seconds,
                        seed=seed,
                        deadline_ms=deadline_ms,
                        stop_event=drain.stop,
                    )
                else:
                    client = open_loop(
                        server,
                        name,
                        len(test_images),
                        offered_rps=offered_rps,
                        duration_seconds=duration_seconds,
                        seed=seed,
                        deadline_ms=deadline_ms,
                        stop_event=drain.stop,
                    )
                payload["models"][name] = {
                    "model": name,
                    **server.metrics[name].snapshot(),
                    "breaker": server.breakers[name].snapshot(),
                    "client": client,
                }
            payload["drained"] = drain.triggered
            if pool is not None:
                payload["pool"] = pool.stats()
            from ..ir import plan_cache_stats

            payload["plan_cache"] = plan_cache_stats()
            payload["integrity"] = server.integrity()
            payload["health"] = server.health()
    finally:
        server.close()
    return payload
