"""Sharded worker pool: warm model processes over zero-copy weights.

One :class:`ShardedPool` owns N worker processes ("shards").  The
parent publishes every served model's weight arrays — plus, optionally,
the dataset image table — into a single
:class:`~repro.serve.shm.SharedArrayBundle`; each shard *attaches* and
rebuilds its models around read-only numpy views of the segment, so N
shards share one copy of the weights and the dataset (zero pickling,
shared page cache).  Only small things cross the process boundary:
model configs / coders / label maps at spawn, and per-task
``(task_id, model, indices, images-or-None)`` tuples afterwards — with
index-only traffic against a shared dataset, a task is just a list of
ints.

Fault tolerance (asserted by ``tests/serve/test_workers.py`` and
``tests/serve/test_supervisor.py``):

* each shard has a dedicated collector thread that polls the shard's
  result queue with a short timeout and checks ``process.is_alive()``
  between polls; idle shards emit **heartbeats** so a wedged (alive
  but stuck) shard is distinguishable from a busy one;
* when a shard dies mid-task, its in-flight tasks are **requeued** on
  the surviving shards — but only up to ``max_task_retries`` shard
  deaths per task: a task that keeps killing shards is **quarantined**
  with a typed :class:`~repro.core.errors.PoisonedRequest` (its
  signature is remembered and resubmissions fail fast) instead of
  being requeued forever;
* results are keyed by ``task_id``, so a duplicate completion after a
  requeue raced the original is an explicit no-op (counted as
  ``duplicate_completions`` in :meth:`ShardedPool.stats`);
* a task whose **deadline** expired while its shard died is shed with
  :class:`~repro.core.errors.DeadlineExceeded` instead of consuming a
  survivor's capacity;
* when the *last* shard dies, pending tasks fail with
  :class:`~repro.core.errors.ServingError` instead of hanging;
* with a :class:`~repro.serve.supervisor.SupervisorPolicy` attached,
  dead or wedged shards are **respawned** (exponential backoff +
  deterministic jitter) under a per-slot crash-loop breaker — see
  :mod:`repro.serve.supervisor`;
* :meth:`ShardedPool.hot_swap` replaces served models' weights
  **without dropping requests**: it publishes a fresh shared-memory
  bundle (updated arrays for the swapped models, byte-identical copies
  for the rest), flips the spawn-time references, then retires shard
  slots one at a time through :meth:`retire_shard` — a *planned*
  retirement that the supervisor respawns immediately, without crash
  bookkeeping, backoff, or breaker pressure, so a learner promoting
  snapshots every few seconds cannot trip the crash-loop breaker.
  In-flight tasks on a retiring shard requeue on the survivors via the
  ordinary death path; capacity never reaches zero.

Silent-data-corruption defense (asserted by
``tests/serve/test_integrity.py`` and the ``weight-corruption`` chaos
scenario):

* the published bundle carries per-array SHA-256 digests; shards
  verify them at attach, and a **background scrubber** thread
  (``scrub_period=`` seconds) re-hashes the live segment so a bit flip
  in shared memory is *detected*, not served forever;
* on detection the pool **recovers**: dispatch pauses, the corrupt
  arrays are restored in place from the sidecar-verified snapshot the
  pool wrote at publish time (:class:`ServingSnapshotCache`, with an
  in-memory pristine fallback), results computed against the corrupt
  bytes are discarded and transparently re-dispatched (never served),
  and every shard slot is rolled onto a fresh, attach-verified worker;
* a worker whose numeric sentinel trips
  (:class:`~repro.core.errors.NumericSentinelError`) reports the typed
  error instead of a prediction, and the pool counts the trip;
* the audit lane (:class:`~repro.serve.engine.InferenceServer`
  ``audit_rate=``) re-executes sampled requests on a parent-side
  serial-oracle runner built from the *pristine* arrays
  (:meth:`ShardedPool.audit_oracle`) and reports mismatches through
  :meth:`ShardedPool.report_audit_mismatch`, which quarantines the
  (shard, backend) pair, retires the shard, and escalates to a full
  scrub.

Rebuild-from-views is exact: every model family's forward pass reads
its arrays without writing (inference only), so handing it read-only
views of the published weights yields bit-identical predictions to the
parent's own models — the pool changes *where* inference runs, never
its result.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import queue as queue_module
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.artifacts import ServingSnapshotCache, cache_enabled
from ..core.errors import (
    DeadlineExceeded,
    IntegrityError,
    NumericSentinelError,
    PoisonedRequest,
    ServingError,
)
from ..core.rng import SeedLike, child_rng
from .shm import Layout, SharedArrayBundle

#: Seconds a collector waits on the result queue before re-checking
#: that its shard process is still alive.
_POLL_SECONDS = 0.2

#: Key under which the dataset image table is published in the bundle.
_DATASET_KEY = "dataset/images"

#: Seconds an *idle* worker waits for a task before emitting a
#: heartbeat message on its result queue.  Wedge detection compares
#: the parent-side age of the last message against the supervisor's
#: ``wedge_timeout`` — a busy shard goes quiet too, so the timeout
#: must exceed the longest legitimate batch.
HEARTBEAT_SECONDS = 0.5

#: Chaos-hook pseudo-model: a task with this name hard-kills the
#: worker process mid-task (``os._exit``), modelling a poison request
#: that reliably crashes whatever shard picks it up.  Only honoured
#: when the pool was built with ``chaos_hooks=True``.
POISON_MODEL = "__poison__"

#: Chaos-hook control message: ``(_WEDGE, seconds)`` makes the worker
#: sleep without heartbeating — an alive-but-stuck shard.
_WEDGE = "__wedge__"


# ---------------------------------------------------------------------------
# Model publish / rebuild
# ---------------------------------------------------------------------------


def _publish_plan(
    name: str,
    model,
    arrays: Dict[str, np.ndarray],
    seed: SeedLike,
    images: Optional[np.ndarray],
    warm: bool,
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """Describe ``model`` as a compiled plan (consts + trains in shm).

    The spec ships the small plan *skeleton* (instructions, buffers,
    metadata, signature); the const arrays travel through the bundle
    under ``{name}/plan/consts/...``.  For the timed SNN with a
    published dataset and ``warm=True``, the parent also ships the
    whole encoded spike-train set (CSR arrays, from the content-
    addressed trains cache) under ``{name}/plan/trains/...`` — shards
    preload it instead of re-encoding the dataset each, which is where
    the faster spawn->ready comes from.

    Raises :class:`~repro.core.errors.CompileError` for models that
    cannot lower (live fault injectors); the caller falls back to the
    legacy publish for that model.
    """
    from ..ir.plan_cache import get_plan, trains_arrays_for_shipping

    plan = get_plan(model)
    if seed is not None and plan.requires_indices:
        # Bake the pool's RNG root into the shipped plan so shards and
        # shipped trains agree (mirrors SNNwtRunner's seed override).
        plan = plan.__class__(
            plan.kind,
            plan.instructions,
            plan.buffers,
            plan.consts,
            meta={**plan.meta, "seed": seed},
            outputs=plan.outputs,
        )
    for cname, value in plan.consts.items():
        arrays[f"{name}/plan/consts/{cname}"] = np.asarray(value)
    spec: Dict[str, Any] = {
        "kind": "plan",
        "skeleton": plan.skeleton(),
        "trains": False,
        # Resolved in the parent so every shard executes on the same
        # backend regardless of the worker process's environment.
        "backend": backend,
    }
    if warm and images is not None and plan.requires_indices:
        for key, value in trains_arrays_for_shipping(plan, images).items():
            arrays[f"{name}/plan/trains/{key}"] = value
        spec["trains"] = True
    return spec


def _rebuild_plan_runner(name: str, spec: Dict[str, Any], bundle):
    """Worker-side: rebind the shipped plan and preload its trains."""
    from ..ir.ops import CompiledPlan
    from ..ir.plan_cache import unpack_trains
    from .engine import PlanRunner

    skeleton = spec["skeleton"]
    consts = {
        cname: bundle[f"{name}/plan/consts/{cname}"]
        for cname in skeleton["const_names"]
    }
    plan = CompiledPlan.from_skeleton(skeleton, consts)
    runner = PlanRunner(plan, backend=spec.get("backend"))
    if spec.get("trains"):
        keys = (
            "indices",
            "offsets",
            "times",
            "inputs",
            "modulation",
            "n_inputs",
            "durations",
        )
        runner.preload_trains(
            unpack_trains(
                {key: bundle[f"{name}/plan/trains/{key}"] for key in keys}
            )
        )
    return runner


def _publish_model(name: str, model, arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Describe ``model`` as (small picklable meta, big arrays in shm).

    Returns the picklable *spec* shipped to workers; mutates ``arrays``
    with the model's weight tensors under ``{name}/...`` keys.
    """
    from ..mlp.network import MLP
    from ..mlp.quantized import QuantizedMLP
    from ..snn.network import SpikingNetwork
    from ..snn.snn_bp import BackPropSNN
    from ..snn.snn_wot import SNNWithoutTime

    def put(key: str, value: np.ndarray) -> None:
        arrays[f"{name}/{key}"] = np.asarray(value)

    if isinstance(model, SpikingNetwork):
        put("weights", model.weights)
        put("thresholds", model.thresholds)
        return {
            "kind": "snnwt",
            "config": model.config,
            "coder": model.coder,
            "labels": np.asarray(model.neuron_labels),
        }
    if isinstance(model, SNNWithoutTime):
        network = model.network
        put("weights", model.weights)
        put("thresholds", network.thresholds)
        return {
            "kind": "snnwot",
            "config": network.config,
            "coder": network.coder,
            "labels": np.asarray(network.neuron_labels),
        }
    if isinstance(model, BackPropSNN):
        put("weights", model.weights)
        return {
            "kind": "snnbp",
            "config": model.config,
            "learning_rate": model.learning_rate,
            "labels": np.asarray(model.neuron_labels),
        }
    if isinstance(model, QuantizedMLP):
        put("w_hidden_codes", model.w_hidden_codes)
        put("b_hidden_codes", model.b_hidden_codes)
        put("w_output_codes", model.w_output_codes)
        put("b_output_codes", model.b_output_codes)
        return {
            "kind": "mlp-q",
            "config": model.config,
            "weight_format": model.weight_format,
            "activation_format": model.activation_format,
        }
    if isinstance(model, MLP):
        put("w_hidden", model.w_hidden)
        put("b_hidden", model.b_hidden)
        put("w_output", model.w_output)
        put("b_output", model.b_output)
        return {"kind": "mlp", "config": model.config}
    raise ServingError(
        f"cannot publish model {name!r} of type {type(model).__name__}"
    )


def rebuild_model(name: str, spec: Dict[str, Any], bundle: SharedArrayBundle):
    """Reconstruct a served model around the bundle's read-only views."""
    kind = spec["kind"]

    def view(key: str) -> np.ndarray:
        return bundle[f"{name}/{key}"]

    if kind in ("snnwt", "snnwot"):
        from ..snn.network import SpikingNetwork

        network = SpikingNetwork(spec["config"], coder=spec["coder"])
        network.weights = view("weights")
        # Inference never adjusts thresholds (homeostasis is a training
        # mechanism), so the read-only view is safe — and any stray
        # write would raise instead of silently diverging the shard.
        network.population.thresholds = view("thresholds")
        network.neuron_labels = spec["labels"]
        if kind == "snnwt":
            return network
        from ..snn.snn_wot import SNNWithoutTime

        return SNNWithoutTime(network)
    if kind == "snnbp":
        from ..snn.snn_bp import BackPropSNN

        model = BackPropSNN(spec["config"], learning_rate=spec["learning_rate"])
        model.weights = view("weights")
        model.neuron_labels = spec["labels"]
        return model
    if kind == "mlp-q":
        from ..mlp.quantized import QuantizedMLP, SigmoidLUT

        model = object.__new__(QuantizedMLP)
        model.config = spec["config"]
        model.weight_format = spec["weight_format"]
        model.activation_format = spec["activation_format"]
        model.lut = SigmoidLUT.build(slope=spec["config"].sigmoid_slope)
        model.output_lut = SigmoidLUT.build(slope=1.0)
        model.w_hidden_codes = view("w_hidden_codes")
        model.b_hidden_codes = view("b_hidden_codes")
        model.w_output_codes = view("w_output_codes")
        model.b_output_codes = view("b_output_codes")
        return model
    if kind == "mlp":
        from ..mlp.network import MLP

        model = MLP(spec["config"])
        model.w_hidden = view("w_hidden")
        model.b_hidden = view("b_hidden")
        model.w_output = view("w_output")
        model.b_output = view("b_output")
        return model
    raise ServingError(f"unknown model kind {kind!r} for {name!r}")


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _shard_main(
    shard_id: int,
    bundle_spec: Tuple[str, Layout, Dict[str, str]],
    model_specs: Dict[str, Dict[str, Any]],
    seed: SeedLike,
    warm: bool,
    start_method: str,
    in_q,
    out_q,
    chaos_hooks: bool = False,
) -> None:
    """Worker entry point: attach, rebuild, serve tasks until sentinel.

    Idle workers emit a heartbeat message every
    :data:`HEARTBEAT_SECONDS` so the supervisor can distinguish a
    wedged shard (no messages at all) from an idle one.
    """
    import os
    import time as time_module

    from .engine import build_runners

    # Fork-started shards share the parent's resource tracker; see
    # SharedArrayBundle.attach for why untrack must follow the method.
    bundle = SharedArrayBundle.attach(
        *bundle_spec, untrack=(start_method != "fork")
    )
    try:
        runners = {}
        legacy_models = {}
        for name, spec in model_specs.items():
            if spec.get("kind") == "plan":
                runners[name] = _rebuild_plan_runner(name, spec, bundle)
            else:
                legacy_models[name] = rebuild_model(name, spec, bundle)
        if legacy_models:
            runners.update(
                build_runners(legacy_models, seed=seed, engine="legacy")
            )
        images = bundle[_DATASET_KEY] if _DATASET_KEY in bundle else None
        if warm and images is not None:
            # Plan runners with shipped trains find every index already
            # cached — this loop is then a no-op instead of the
            # dominant (re-encode-the-dataset) cold-start cost.
            for runner in runners.values():
                runner.precode(range(len(images)), images)
        out_q.put(("ready", shard_id, None, None))
        while True:
            try:
                task = in_q.get(timeout=HEARTBEAT_SECONDS)
            except queue_module.Empty:
                out_q.put(("heartbeat", shard_id, None, time_module.time()))
                continue
            if task is None:
                return
            if chaos_hooks and isinstance(task, tuple) and task[0] == _WEDGE:
                # Alive-but-stuck: sleep without heartbeating so the
                # supervisor's wedge detector has something to find.
                time_module.sleep(float(task[1]))
                continue
            task_id, model, indices, rows = task
            if chaos_hooks and model == POISON_MODEL:
                os._exit(13)  # poison request: crash the shard mid-task
            try:
                if rows is None:
                    if images is None:
                        raise ServingError(
                            "index-only task but no shared dataset published"
                        )
                    rows = images[list(indices)]
                labels = runners[model].run(indices, rows)
                out_q.put(("result", shard_id, task_id, np.asarray(labels)))
            except Exception as exc:  # noqa: BLE001 — report, keep serving
                out_q.put(("error", shard_id, task_id, repr(exc)))
    finally:
        bundle.close()


# ---------------------------------------------------------------------------
# Parent-side pool
# ---------------------------------------------------------------------------


class _Shard:
    """Parent-side handle: process + queues + collector thread."""

    __slots__ = (
        "shard_id",
        "generation",
        "process",
        "in_q",
        "out_q",
        "collector",
        "alive",
        "last_message_at",
        "spawned_at",
    )

    def __init__(self, shard_id: int, process, in_q, out_q, generation: int = 0):
        self.shard_id = shard_id
        self.generation = generation
        self.process = process
        self.in_q = in_q
        self.out_q = out_q
        self.collector: Optional[threading.Thread] = None
        self.alive = True
        #: Parent-clock time of the last message (ready / heartbeat /
        #: result / error) received from this shard — the wedge signal.
        self.last_message_at = time.perf_counter()
        #: Parent-clock time just before ``process.start()`` — the
        #: start of the spawn->ready window ``stats()`` reports.
        self.spawned_at = self.last_message_at


class _Task:
    """One in-flight batch: future, payload, shard, deaths, deadline."""

    __slots__ = (
        "task_id",
        "payload",
        "shard_id",
        "future",
        "deaths",
        "deadline",
        "epoch",
    )

    def __init__(
        self,
        task_id: int,
        payload: tuple,
        shard_id: int,
        deadline: Optional[float] = None,
        epoch: int = 0,
    ):
        self.task_id = task_id
        self.payload = payload
        self.shard_id = shard_id
        self.future: Future = Future()
        #: Number of shard deaths this task has been in flight across.
        self.deaths = 0
        self.deadline = deadline
        #: Integrity epoch at dispatch.  The pool bumps its epoch when
        #: corruption is detected; a *result* stamped with an older
        #: epoch was computed against bytes that failed verification
        #: and is discarded + re-dispatched instead of served.
        self.epoch = epoch


class ShardedPool:
    """N warm worker processes sharing one weights+dataset segment.

    Args:
        models: ``name -> trained model`` (the publishable families:
            SpikingNetwork, SNNwot, SNN+BP, MLP, QuantizedMLP).
        jobs: number of shard processes.
        images: optional dataset table published into shared memory so
            tasks can reference rows by index only.
        seed: RNG root for the shards' SNNwt runners.
        warm: pre-encode SNNwt spike-train caches in every shard at
            startup (against the published dataset).
        start_method: multiprocessing start method (default: ``fork``
            where available — the shards attach the segment either way).
        task_timeout: seconds :meth:`run_batch` waits before declaring
            a task lost.
        max_task_retries: shard deaths a single task may survive (being
            requeued each time) before it is quarantined with
            :class:`~repro.core.errors.PoisonedRequest`.
        supervisor: optional
            :class:`~repro.serve.supervisor.SupervisorPolicy`; when
            given, a :class:`~repro.serve.supervisor.ShardSupervisor`
            respawns dead/wedged shards under a crash-loop breaker.
        chaos_hooks: enable the in-worker chaos hooks
            (:data:`POISON_MODEL` tasks, :meth:`wedge_shard`, and
            :meth:`chaos_corrupt`) used by the chaos harness and the
            fault-tolerance tests.
        scrub_period: seconds between background re-verifications of
            the shared segment against its publish-time digests
            (``None``/``0`` disables the scrubber; :meth:`scrub_now`
            stays available either way).
    """

    def __init__(
        self,
        models: Dict[str, Any],
        jobs: int = 2,
        images: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        warm: bool = True,
        start_method: Optional[str] = None,
        task_timeout: float = 120.0,
        max_task_retries: int = 2,
        supervisor=None,
        chaos_hooks: bool = False,
        engine: str = "plan",
        backend: Optional[str] = None,
        scrub_period: Optional[float] = None,
    ):
        from .engine import ENGINES

        if engine not in ENGINES:
            raise ServingError(
                f"unknown pool engine {engine!r}; use one of {ENGINES}"
            )
        if engine == "plan":
            # Resolve once in the parent (flag > env > default) so the
            # shipped plan specs pin every shard to the same backend —
            # and an unknown name fails the pool build, not a worker.
            from ..ir.backends import resolve_backend_name

            backend = resolve_backend_name(backend)
        self.backend = backend
        if jobs < 1:
            raise ServingError(f"jobs must be >= 1, got {jobs}")
        if not models:
            raise ServingError("no models to serve")
        if max_task_retries < 0:
            raise ServingError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        self.models = sorted(models)
        self.jobs = jobs
        self.task_timeout = task_timeout
        self.max_task_retries = max_task_retries
        self._chaos_hooks = chaos_hooks
        self._n_rows = 0 if images is None else len(images)
        self._lock = threading.Lock()
        self._tasks: Dict[int, _Task] = {}
        self._task_ids = itertools.count()
        self._rr = itertools.count()
        self._closing = False
        #: quarantined task signature -> shard deaths it caused.
        self._quarantine: Dict[tuple, int] = {}
        #: reliability counters (under self._lock; see stats()).
        self._counters: Dict[str, int] = {
            "requeues": 0,
            "duplicate_completions": 0,
            "quarantined": 0,
            "quarantine_rejections": 0,
            "deadline_shed": 0,
            "respawns": 0,
            "wedge_kills": 0,
            "shard_deaths": 0,
            "hot_swaps": 0,
            "planned_retires": 0,
        }
        #: slots whose next death is a planned retirement (hot-swap
        #: rollover), not a crash; the supervisor consumes the flag.
        self._planned_retires: set = set()
        #: subset of planned retires caused by corruption recovery /
        #: audit quarantine; the supervisor consumes this flag too, to
        #: count corrupt heals separately from swap rollovers.
        self._corrupt_retires: set = set()
        #: SDC-defense counters (under self._lock; see integrity_stats).
        self._integrity: Dict[str, int] = {
            "scrub_passes": 0,
            "scrub_failures": 0,
            "corrupt_arrays_detected": 0,
            "restores": 0,
            "corrupt_shard_respawns": 0,
            "stale_results_discarded": 0,
            "sentinel_trips": 0,
            "audit_mismatch_reports": 0,
        }
        #: bumped on corruption detection; results stamped older are
        #: discarded + re-dispatched instead of served.
        self._integrity_epoch = 0
        self._recovering = False
        self._corrupt_unrecoverable = False
        #: cleared for the (short) restore window so dispatch cannot
        #: race corrupt bytes; set again once the segment re-verifies.
        self._recovery_done = threading.Event()
        self._recovery_done.set()
        self._last_corruption: Optional[Dict[str, Any]] = None
        #: (shard_id, backend) pairs quarantined by audit mismatches.
        self._audit_quarantined: set = set()
        #: per-model parent-side serial oracle runners, keyed on the
        #: bundle they were built against (invalidated by hot_swap).
        self._audit_runners: Dict[str, tuple] = {}
        self.scrub_period = (
            float(scrub_period) if scrub_period else None
        )
        self._scrub_stop = threading.Event()
        self._scrub_thread: Optional[threading.Thread] = None
        #: bundles superseded by hot_swap but possibly still mapped by
        #: retiring workers; unlinked when the swap (or close) finishes.
        self._retired_bundles: List[SharedArrayBundle] = []
        #: set by the collector on every shard death; the supervisor
        #: waits on it instead of busy-polling.
        self.death_event = threading.Event()

        self.engine = engine
        self._seed = seed
        self._warm = warm
        self._images = None if images is None else np.asarray(images)
        #: spawn->ready wall-clock per shard come-up (cold-start metric).
        self._spawn_seconds: List[float] = []
        arrays: Dict[str, np.ndarray] = {}
        self._specs = {
            name: self._publish_spec(name, model, arrays)
            for name, model in models.items()
        }
        if self._images is not None:
            arrays[_DATASET_KEY] = self._images
        self._bundle = SharedArrayBundle.create(arrays)
        self._snapshot_cache = ServingSnapshotCache() if cache_enabled() else None
        self._pristine: Dict[str, np.ndarray] = {}
        self._snapshot_key = ""
        self._record_pristine(self._bundle)

        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        self._start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._supervisor = None
        self._shards: List[_Shard] = []
        try:
            for shard_id in range(jobs):
                self._shards.append(self._spawn_shard(shard_id, generation=0))
            for shard in self._shards:
                self._await_ready(shard)
        except Exception:
            self.close()
            raise
        for shard in self._shards:
            self._start_collector(shard)
        if supervisor is not None:
            from .supervisor import ShardSupervisor, SupervisorPolicy

            if not isinstance(supervisor, SupervisorPolicy):
                raise ServingError(
                    "supervisor= expects a SupervisorPolicy, got "
                    f"{type(supervisor).__name__}"
                )
            self._supervisor = ShardSupervisor(self, supervisor)
            self._supervisor.start()
        if self.scrub_period:
            self._scrub_thread = threading.Thread(
                target=self._scrub_loop, name="repro-scrubber", daemon=True
            )
            self._scrub_thread.start()

    # -- startup / (re)spawn --------------------------------------------

    def _publish_spec(
        self, name: str, model, arrays: Dict[str, np.ndarray]
    ) -> Dict[str, Any]:
        """Publish one model per the pool's engine (plan with fallback)."""
        if self.engine == "plan":
            from ..core.errors import CompileError

            try:
                return _publish_plan(
                    name,
                    model,
                    arrays,
                    self._seed,
                    self._images,
                    self._warm,
                    backend=self.backend,
                )
            except CompileError:
                pass  # e.g. live fault injector: ship the legacy form
        return _publish_model(name, model, arrays)

    def _spawn_shard(self, shard_id: int, generation: int) -> _Shard:
        """Start one worker process for ``shard_id`` (not yet ready)."""
        in_q = self._ctx.Queue()
        out_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=_shard_main,
            args=(
                shard_id,
                self._bundle.spec(),
                self._specs,
                self._seed,
                self._warm,
                self._start_method,
                in_q,
                out_q,
                self._chaos_hooks,
            ),
            name=f"repro-shard-{shard_id}g{generation}",
            daemon=True,
        )
        spawned_at = time.perf_counter()
        process.start()
        shard = _Shard(shard_id, process, in_q, out_q, generation=generation)
        shard.spawned_at = spawned_at
        return shard

    def _await_ready(self, shard: _Shard, timeout: float = 120.0) -> None:
        try:
            kind, *_rest = shard.out_q.get(timeout=timeout)
        except queue_module.Empty:
            raise ServingError(
                f"shard {shard.shard_id} did not come up within {timeout}s"
            ) from None
        if kind != "ready":  # pragma: no cover - defensive
            raise ServingError(
                f"shard {shard.shard_id} sent {kind!r} before ready"
            )
        shard.last_message_at = time.perf_counter()
        with self._lock:
            self._spawn_seconds.append(
                shard.last_message_at - shard.spawned_at
            )

    def _start_collector(self, shard: _Shard) -> None:
        shard.collector = threading.Thread(
            target=self._collect,
            args=(shard,),
            name=f"repro-collector-{shard.shard_id}g{shard.generation}",
            daemon=True,
        )
        shard.collector.start()

    def respawn_shard(self, shard_id: int, ready_timeout: float = 120.0) -> None:
        """Replace a dead shard slot with a fresh worker process.

        Called by the :class:`~repro.serve.supervisor.ShardSupervisor`
        (or tests).  Raises :class:`ServingError` when the replacement
        fails to come up — the supervisor counts that as another crash.
        """
        with self._lock:
            if self._closing:
                raise ServingError("pool is closing; not respawning")
            old = self._shards[shard_id]
            if old.alive and old.process.is_alive():
                raise ServingError(
                    f"shard {shard_id} is still alive; refusing to respawn"
                )
            generation = old.generation + 1
        replacement = self._spawn_shard(shard_id, generation=generation)
        try:
            self._await_ready(replacement, timeout=ready_timeout)
        except ServingError:
            if replacement.process.is_alive():  # pragma: no cover - defensive
                replacement.process.terminate()
            raise
        with self._lock:
            if self._closing:
                replacement.process.terminate()
                raise ServingError("pool closed while respawning")
            self._close_shard_queues(old)
            self._shards[shard_id] = replacement
            self._counters["respawns"] += 1
        self._start_collector(replacement)

    def consume_planned_retire(self, shard_id: int) -> bool:
        """Claim (and clear) the planned-retire flag for one slot.

        The supervisor calls this when healing a dead slot: True means
        the death was a deliberate :meth:`retire_shard` and must not
        count toward the crash-loop breaker.
        """
        with self._lock:
            if shard_id in self._planned_retires:
                self._planned_retires.discard(shard_id)
                return True
            return False

    def retire_shard(self, shard_id: int, ready_timeout: float = 120.0) -> None:
        """Planned retirement: kill one shard so it respawns fresh.

        Used by :meth:`hot_swap` to roll a slot onto the current
        bundle/specs.  With a supervisor attached the respawn happens
        on its next sweep (immediately — no backoff, no crash
        bookkeeping); without one the pool respawns the slot inline
        after the collector has triaged the dead shard's tasks.
        """
        with self._lock:
            if self._closing:
                raise ServingError("pool is closing; not retiring shards")
            self._counters["planned_retires"] += 1
            self._planned_retires.add(shard_id)
            shard = self._shards[shard_id]
            supervised = self._supervisor is not None
        self.kill_shard(shard_id)
        if not supervised:
            # Let the collector requeue the dead shard's in-flight
            # tasks before the slot is replaced under it.
            if shard.collector is not None:
                shard.collector.join(timeout=30.0)
            try:
                self.respawn_shard(shard_id, ready_timeout=ready_timeout)
            finally:
                with self._lock:
                    self._planned_retires.discard(shard_id)

    def _await_generation(
        self, shard_id: int, above: int, timeout: float
    ) -> None:
        """Block until a slot serves at a generation newer than ``above``."""
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            with self._lock:
                shard = self._shards[shard_id]
                if shard.alive and shard.generation > above:
                    return
            time.sleep(0.02)
        raise ServingError(
            f"shard {shard_id} did not roll over past generation {above} "
            f"within {timeout}s"
        )

    def hot_swap(
        self, updates: Dict[str, Any], ready_timeout: float = 120.0
    ) -> Dict[str, Any]:
        """Replace served models' weights with zero dropped requests.

        Publishes a fresh bundle holding the updated arrays for every
        model in ``updates`` and byte-identical copies of everything
        else (untouched tenants and the dataset table), flips the
        references new spawns read, then rolls the shard slots over
        one at a time — at every instant all but one slot is serving,
        and a retiring shard's in-flight tasks requeue on survivors.
        Requests racing the rollover may be answered by either
        generation; untouched models answer bit-identically from both.
        """
        unknown = sorted(set(updates) - set(self.models))
        if unknown:
            raise ServingError(
                f"cannot hot-swap unknown model(s) {unknown}; "
                f"pool serves {self.models}"
            )
        if not updates:
            raise ServingError("hot_swap needs at least one model update")
        with self._lock:
            if self._closing:
                raise ServingError("pool is closing; not hot-swapping")
            old_bundle = self._bundle
            new_specs = dict(self._specs)
        arrays: Dict[str, np.ndarray] = {}
        for name, model in updates.items():
            new_specs[name] = self._publish_spec(name, model, arrays)
        swapped_prefixes = tuple(f"{name}/" for name in updates)
        for key in old_bundle.layout:
            if key.startswith(swapped_prefixes):
                continue
            arrays[key] = np.array(old_bundle[key])
        new_bundle = SharedArrayBundle.create(arrays)
        with self._lock:
            if self._closing:
                new_bundle.close(unlink=True)
                raise ServingError("pool closed while hot-swapping")
            self._bundle = new_bundle
            self._specs = new_specs
            self._retired_bundles.append(old_bundle)
            # Oracle runners hold views into the old bundle; rebuild
            # them lazily against the new one.
            self._audit_runners.clear()
            plan = [(s.shard_id, s.generation) for s in self._shards]
        self._record_pristine(new_bundle)
        for shard_id, generation in plan:
            self.retire_shard(shard_id, ready_timeout=ready_timeout)
            self._await_generation(shard_id, above=generation, timeout=ready_timeout)
        with self._lock:
            self._counters["hot_swaps"] += 1
            if old_bundle in self._retired_bundles:
                self._retired_bundles.remove(old_bundle)
            generations = {
                str(s.shard_id): s.generation for s in self._shards
            }
        # Every slot now serves from the new bundle; dropping the old
        # segment cannot yank views from under a live worker.
        old_bundle.close(unlink=True)
        return {"swapped": sorted(updates), "generations": generations}

    @staticmethod
    def _close_shard_queues(shard: _Shard) -> None:
        for q in (shard.in_q, shard.out_q):
            try:
                q.close()
                q.join_thread()
            except (OSError, ValueError):  # pragma: no cover
                pass

    # -- introspection ---------------------------------------------------

    @property
    def has_dataset(self) -> bool:
        return self._n_rows > 0

    def has_row(self, index: int) -> bool:
        return 0 <= index < self._n_rows

    def alive_shards(self) -> List[int]:
        with self._lock:
            return [s.shard_id for s in self._shards if s.alive]

    def nbytes_shared(self) -> int:
        return self._bundle.nbytes()

    def message_ages(self) -> Dict[int, float]:
        """Seconds since each *alive* shard's last message (wedge signal)."""
        now = time.perf_counter()
        with self._lock:
            return {
                s.shard_id: now - s.last_message_at
                for s in self._shards
                if s.alive
            }

    def quarantined_signatures(self) -> List[tuple]:
        with self._lock:
            return sorted(self._quarantine)

    def clear_quarantine(self) -> int:
        """Forget every quarantined signature; returns how many."""
        with self._lock:
            count = len(self._quarantine)
            self._quarantine.clear()
            return count

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] += by

    def stats(self) -> Dict[str, Any]:
        """Reliability counters + topology (the ``serve-stats`` pool view)."""
        with self._lock:
            payload: Dict[str, Any] = dict(self._counters)
            payload["jobs"] = self.jobs
            payload["alive_shards"] = [
                s.shard_id for s in self._shards if s.alive
            ]
            payload["generations"] = {
                str(s.shard_id): s.generation for s in self._shards
            }
            payload["quarantined_signatures"] = [
                list(map(str, sig)) for sig in sorted(self._quarantine)
            ]
            payload["engine"] = self.engine
            payload["backend"] = self.backend
            spawns = list(self._spawn_seconds)
        payload["spawn_ready_seconds"] = {
            "count": len(spawns),
            "mean": float(np.mean(spawns)) if spawns else 0.0,
            "last": spawns[-1] if spawns else 0.0,
            "max": max(spawns) if spawns else 0.0,
        }
        if self._supervisor is not None:
            payload["supervisor"] = self._supervisor.snapshot()
        payload["integrity"] = self.integrity_stats()
        return payload

    # -- integrity: scrub / recover / audit ------------------------------

    def _record_pristine(self, bundle: SharedArrayBundle) -> None:
        """Snapshot the just-published bytes as the recovery source.

        Keeps an in-memory pristine copy and (cache permitting) writes
        a sidecar-verified on-disk snapshot keyed by the bundle's
        content digest — the copy corruption recovery restores from.
        """
        pristine = {key: np.array(bundle[key]) for key in bundle.layout}
        digest = hashlib.sha256()
        for key in sorted(bundle.digests):
            digest.update(key.encode())
            digest.update(bundle.digests[key].encode())
        snapshot_key = digest.hexdigest()
        with self._lock:
            self._pristine = pristine
            self._snapshot_key = snapshot_key
        if self._snapshot_cache is not None:
            try:
                self._snapshot_cache.store(snapshot_key, pristine)
            except OSError:  # pragma: no cover - read-only cache dir
                pass

    def _verified_snapshot(self) -> Dict[str, np.ndarray]:
        """The restore source: sidecar-verified disk copy when available.

        Falls back to the in-memory pristine copy (itself digest-checked
        by :meth:`SharedArrayBundle.restore` at write-back time) when
        the cache is disabled or the disk snapshot is itself corrupt.
        """
        with self._lock:
            snapshot_key = self._snapshot_key
            pristine = self._pristine
        if self._snapshot_cache is not None:
            stored = self._snapshot_cache.load(snapshot_key)
            if stored is not None:
                return stored
        return pristine

    def _scrub_loop(self) -> None:
        while not self._scrub_stop.wait(self.scrub_period):
            try:
                self.scrub_now()
            except IntegrityError:
                # Unrecoverable corruption: the pool is already
                # refusing requests; keep the scrubber alive so the
                # counters keep telling the truth.
                continue
            except Exception:  # pragma: no cover - never kill the scrubber
                continue

    def scrub_now(self) -> List[str]:
        """Re-hash the live segment; recover when corruption is found.

        Returns the corrupt array names (empty for a clean pass).  On
        corruption the recovery sequence runs synchronously: dispatch
        pauses, the corrupt arrays are restored in place from the
        verified snapshot, in-flight results computed against the bad
        bytes are discarded, and every shard slot is rolled onto a
        fresh attach-verified worker.  Raises
        :class:`~repro.core.errors.IntegrityError` when no verified
        restore source covers a corrupt array — the pool then refuses
        all requests instead of serving unverifiable bytes.
        """
        with self._lock:
            if self._closing or self._recovering:
                return []
            bundle = self._bundle
        corrupt = bundle.verify()
        if not corrupt:
            with self._lock:
                self._integrity["scrub_passes"] += 1
            return []
        self._recover(bundle, corrupt)
        return corrupt

    def _recover(self, bundle: SharedArrayBundle, corrupt: List[str]) -> None:
        with self._lock:
            if self._closing or self._recovering or bundle is not self._bundle:
                return
            self._recovering = True
            self._recovery_done.clear()
            self._integrity["scrub_failures"] += 1
            self._integrity["corrupt_arrays_detected"] += len(corrupt)
            # Results dispatched before this instant are now suspect:
            # bump the epoch so _handle discards them instead of
            # serving bytes that failed verification.
            self._integrity_epoch += 1
            self._last_corruption = {
                "detected_at": time.perf_counter(),
                "arrays": sorted(corrupt),
                "recovered_at": None,
            }
            roll_plan = [
                (s.shard_id, s.generation) for s in self._shards if s.alive
            ]
        restored = False
        try:
            verified = self._verified_snapshot()
            for key in corrupt:
                source = verified.get(key)
                if source is None:
                    raise IntegrityError(
                        f"no verified snapshot covers corrupt array {key!r}; "
                        "refusing to serve unverifiable bytes"
                    )
                bundle.restore(key, source)
                with self._lock:
                    self._integrity["restores"] += 1
            leftover = bundle.verify()
            if leftover:
                raise IntegrityError(
                    f"segment still corrupt after restore: {leftover}"
                )
            restored = True
        finally:
            with self._lock:
                self._recovering = False
                if restored:
                    if self._last_corruption is not None:
                        self._last_corruption["recovered_at"] = (
                            time.perf_counter()
                        )
                else:
                    self._corrupt_unrecoverable = True
            self._recovery_done.set()
        self._roll_shards(roll_plan)

    def _roll_shards(self, plan: List[Tuple[int, int]]) -> None:
        """Retire slots that attached the (now restored) segment.

        The in-place restore already healed every attached view — the
        segment is shared — but a worker may hold state *derived* from
        the corrupt bytes (warm caches, lazily-built structures), so
        each slot is rolled onto a fresh worker that re-verifies the
        digests at attach.  One slot at a time: capacity never drops
        by more than one, exactly like a hot swap.
        """
        for shard_id, generation in plan:
            with self._lock:
                if self._closing:
                    return
                self._corrupt_retires.add(shard_id)
            try:
                self.retire_shard(shard_id)
                self._await_generation(shard_id, above=generation, timeout=120.0)
            except ServingError:
                continue  # the supervisor keeps healing the slot
            with self._lock:
                self._integrity["corrupt_shard_respawns"] += 1

    def consume_corrupt_retire(self, shard_id: int) -> bool:
        """Claim (and clear) the corrupt-retire flag for one slot.

        The supervisor calls this alongside
        :meth:`consume_planned_retire` to count corruption-driven
        heals separately from hot-swap rollovers.
        """
        with self._lock:
            if shard_id in self._corrupt_retires:
                self._corrupt_retires.discard(shard_id)
                return True
            return False

    def audit_oracle(self, name: str):
        """Parent-side serial-oracle runner for one served model.

        Built from the pool's *pristine* snapshot arrays — not the
        live segment — and pinned to the serial interpreter backend,
        so its answers are independent of both shared-memory
        corruption and fast-backend bugs.  Cached per published
        bundle; a hot swap invalidates the cache.
        """
        with self._lock:
            bundle = self._bundle
            spec = self._specs.get(name)
            cached = self._audit_runners.get(name)
            pristine = self._pristine
        if spec is None:
            raise ServingError(
                f"unknown model {name!r}; pool serves {self.models}"
            )
        if cached is not None and cached[0] is bundle:
            return cached[1]
        if spec.get("kind") == "plan":
            runner = _rebuild_plan_runner(
                name, {**spec, "backend": "serial"}, pristine
            )
        else:
            from .engine import build_runners

            model = rebuild_model(name, spec, pristine)
            runner = build_runners(
                {name: model}, seed=self._seed, engine="legacy"
            )[name]
        with self._lock:
            self._audit_runners[name] = (bundle, runner)
        return runner

    def audit_rows(self, indices: Sequence[int]) -> np.ndarray:
        """Pristine dataset rows for the audit oracle.

        Served from the in-memory pristine snapshot — never the live
        segment — so the oracle's inputs cannot themselves be the
        corrupted bytes under audit.
        """
        with self._lock:
            dataset = self._pristine.get(_DATASET_KEY)
        if dataset is None:
            raise ServingError(
                "pool has no shared dataset; audit requests must carry images"
            )
        return dataset[np.asarray(indices, dtype=np.int64)]

    def report_audit_mismatch(self, shard_id: int, model: str) -> None:
        """The audit lane caught a shard answer differing from the oracle.

        Quarantines the (shard, backend) pair, escalates to a full
        segment scrub (whose recovery rolls every shard when it also
        finds corruption), and otherwise retires just the offending
        shard so a fresh attach-verified worker replaces it.
        """
        with self._lock:
            if self._closing:
                return
            self._integrity["audit_mismatch_reports"] += 1
            backend = self.backend if self.engine == "plan" else self.engine
            self._audit_quarantined.add((int(shard_id), str(backend)))
            alive = False
            generation = 0
            if 0 <= shard_id < len(self._shards):
                shard = self._shards[shard_id]
                alive = shard.alive
                generation = shard.generation
        if self.scrub_now():
            return  # recovery already rolled every slot, this one included
        if not alive:
            return
        with self._lock:
            if self._closing:
                return
            self._corrupt_retires.add(shard_id)
        try:
            self.retire_shard(shard_id)
            self._await_generation(shard_id, above=generation, timeout=120.0)
        except ServingError:
            return
        with self._lock:
            self._integrity["corrupt_shard_respawns"] += 1

    def chaos_corrupt(
        self,
        seed: SeedLike = 0,
        n_flips: int = 8,
        key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Flip seeded bits in the live shared weights (chaos hook).

        Requires ``chaos_hooks=True``.  Picks a weight-bearing array
        (never the dataset table) unless ``key`` names one, flips
        ``n_flips`` distinct bytes (one seeded bit each), and returns
        what it did — the chaos harness asserts the scrubber detects
        and repairs every flip.  This is the shared-memory equivalent
        of the PR-1 SRAM bit-flip fault model.
        """
        if not self._chaos_hooks:
            raise ServingError("chaos_corrupt requires chaos_hooks=True")
        with self._lock:
            bundle = self._bundle
        if key is None:
            names = [k for k in sorted(bundle.layout) if k != _DATASET_KEY]
            weighty = [
                k
                for k in names
                if "weight" in k.rsplit("/", 1)[-1]
                or k.rsplit("/", 1)[-1].startswith("w_")
            ]
            candidates = weighty or names
            if not candidates:
                raise ServingError("no corruptible arrays are published")
            key = candidates[0]
        elif key not in bundle.layout:
            raise ServingError(f"unknown shared array {key!r}")
        raw = bundle._writable(key).view(np.uint8).reshape(-1)
        rng = child_rng(seed, "chaos-weight-corruption")
        count = int(min(int(n_flips), raw.size))
        positions = rng.choice(raw.size, size=count, replace=False)
        bits = rng.integers(0, 8, size=count)
        for pos, bit in zip(positions, bits):
            raw[int(pos)] ^= np.uint8(1 << int(bit))
        return {
            "key": key,
            "n_flips": count,
            "injected_at": time.perf_counter(),
        }

    def integrity_stats(self) -> Dict[str, Any]:
        """Stable-keyed SDC-defense counters (serve-stats / health)."""
        with self._lock:
            payload: Dict[str, Any] = dict(self._integrity)
            payload["scrub_period"] = self.scrub_period
            payload["audit_quarantined_pairs"] = [
                [sid, backend]
                for sid, backend in sorted(self._audit_quarantined)
            ]
            payload["last_corruption"] = (
                dict(self._last_corruption) if self._last_corruption else None
            )
            payload["unrecoverable"] = self._corrupt_unrecoverable
        return payload

    # -- task path -------------------------------------------------------

    def run_batch(
        self,
        model: str,
        indices: Sequence[int],
        images: Optional[np.ndarray],
        deadline: Optional[float] = None,
        return_shard: bool = False,
    ) -> np.ndarray:
        """Run one coalesced batch on some shard; blocks for the result.

        ``images=None`` sends an index-only task (requires a published
        dataset).  ``deadline`` is an absolute ``time.perf_counter``
        timestamp: expired work is shed with :class:`DeadlineExceeded`
        *before* it consumes any shard — at dispatch and again if a
        shard death would otherwise requeue it.  A task signature that
        was previously quarantined fails fast with
        :class:`PoisonedRequest`.  Raises :class:`ServingError` when
        every shard is dead or the task fails in the worker, and
        :class:`IntegrityError` when the shared segment is corrupt
        beyond recovery (refusal, never a wrong answer).

        ``return_shard=True`` returns ``(labels, shard_id)`` so the
        audit lane can attribute a mismatching answer to the shard
        that computed it.
        """
        if model not in self.models and not (
            self._chaos_hooks and model == POISON_MODEL
        ):
            raise ServingError(f"unknown model {model!r}; pool serves {self.models}")
        indices = [int(i) for i in indices]
        signature = (model, tuple(indices))
        while True:
            with self._lock:
                if self._corrupt_unrecoverable:
                    raise IntegrityError(
                        "shared segment failed verification and could not "
                        "be restored; refusing to serve"
                    )
                if signature in self._quarantine:
                    self._counters["quarantine_rejections"] += 1
                    raise PoisonedRequest(
                        f"task {signature!r} is quarantined after killing "
                        f"{self._quarantine[signature]} shard(s); rejected"
                    )
                if deadline is not None and time.perf_counter() >= deadline:
                    self._counters["deadline_shed"] += 1
                    raise DeadlineExceeded(
                        "batch deadline expired before dispatch; shed without "
                        "consuming shard work"
                    )
                if not self._recovering:
                    task = _Task(
                        next(self._task_ids),
                        (model, indices, images),
                        shard_id=-1,
                        deadline=deadline,
                        epoch=self._integrity_epoch,
                    )
                    self._tasks[task.task_id] = task
                    shard = self._pick_shard_locked()
                    if shard is None:
                        del self._tasks[task.task_id]
                        raise ServingError("all worker shards are dead")
                    task.shard_id = shard.shard_id
                    break
            # Corruption recovery is restoring the segment: hold
            # dispatch until it re-verifies, then retry the admission
            # checks (the window is a few milliseconds of memcpy+hash).
            if not self._recovery_done.wait(timeout=self.task_timeout):
                raise IntegrityError(
                    "corruption recovery did not release dispatch in time"
                )
        shard.in_q.put((task.task_id, model, indices, images))
        result = task.future.result(timeout=self.task_timeout)
        if return_shard:
            return result, task.shard_id
        return result

    def _pick_shard_locked(self) -> Optional[_Shard]:
        alive = [s for s in self._shards if s.alive]
        if not alive:
            return None
        return alive[next(self._rr) % len(alive)]

    # -- collector threads ----------------------------------------------

    def _collect(self, shard: _Shard) -> None:
        while True:
            try:
                message = shard.out_q.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                if self._closing:
                    # close() fails any stranded tasks itself; don't
                    # requeue onto shards that are also shutting down.
                    return
                if not shard.process.is_alive():
                    self._drain_queue(shard)
                    self._on_shard_death(shard)
                    return
                continue
            self._handle(shard, message)

    def _drain_queue(self, shard: _Shard) -> None:
        """Consume results the shard managed to emit before dying."""
        while True:
            try:
                self._handle(shard, shard.out_q.get_nowait())
            except queue_module.Empty:
                return

    def _handle(self, shard: _Shard, message) -> None:
        kind, _shard_id, task_id, payload = message
        shard.last_message_at = time.perf_counter()
        if kind == "heartbeat":
            return
        stale = False
        requeue_target = None
        with self._lock:
            task = self._tasks.pop(task_id, None)
            if task is None:
                # Duplicate after a requeue raced the original
                # completion: by design an explicit, counted no-op —
                # the future was already resolved exactly once.
                self._counters["duplicate_completions"] += 1
                return
            if kind == "result" and task.epoch < self._integrity_epoch:
                # Computed against bytes that later failed checksum
                # verification: never served.  Re-dispatch at the
                # current epoch; by the time recovery releases
                # dispatch the segment is restored, so the retry
                # reads clean bytes.
                stale = True
                self._integrity["stale_results_discarded"] += 1
                requeue_target = self._pick_shard_locked()
                if requeue_target is not None:
                    task.epoch = self._integrity_epoch
                    task.shard_id = requeue_target.shard_id
                    self._tasks[task.task_id] = task
                    self._counters["requeues"] += 1
        if stale:
            if requeue_target is None:
                task.future.set_exception(
                    IntegrityError(
                        "result discarded after corruption detection and "
                        "no shard is available to re-execute it"
                    )
                )
                return
            # Don't hand the retry to a shard while the segment is
            # still being restored.
            self._recovery_done.wait(timeout=30.0)
            model, indices, images = task.payload
            requeue_target.in_q.put((task.task_id, model, indices, images))
            return
        if kind == "result":
            task.future.set_result(payload)
        elif "NumericSentinelError" in str(payload):
            with self._lock:
                self._integrity["sentinel_trips"] += 1
            task.future.set_exception(
                NumericSentinelError(f"worker refused the batch: {payload}")
            )
        else:
            task.future.set_exception(
                ServingError(f"worker task failed: {payload}")
            )

    def _on_shard_death(self, shard: _Shard) -> None:
        """Triage the dead shard's in-flight tasks.

        Per orphaned task, in order: shed with
        :class:`DeadlineExceeded` when its deadline has passed (a dead
        shard must not hand doomed work to a survivor), quarantine
        with :class:`PoisonedRequest` when it has now been in flight
        across more than ``max_task_retries`` shard deaths, otherwise
        requeue on a surviving shard.  Finally wakes the supervisor.
        """
        now = time.perf_counter()
        with self._lock:
            shard.alive = False
            self._counters["shard_deaths"] += 1
            orphans = [
                t for t in self._tasks.values() if t.shard_id == shard.shard_id
            ]
            assignments = []
            expired: List[_Task] = []
            poisoned: List[_Task] = []
            for task in orphans:
                task.deaths += 1
                if task.deadline is not None and now >= task.deadline:
                    del self._tasks[task.task_id]
                    self._counters["deadline_shed"] += 1
                    expired.append(task)
                    continue
                if task.deaths > self.max_task_retries:
                    del self._tasks[task.task_id]
                    model, indices, _images = task.payload
                    signature = (model, tuple(indices))
                    self._quarantine[signature] = task.deaths
                    self._counters["quarantined"] += 1
                    poisoned.append(task)
                    continue
                target = self._pick_shard_locked()
                if target is None:
                    del self._tasks[task.task_id]
                else:
                    self._counters["requeues"] += 1
                task.shard_id = target.shard_id if target else -1
                assignments.append((task, target))
        for task in expired:
            task.future.set_exception(
                DeadlineExceeded(
                    "deadline expired while the request was in flight on a "
                    "dead shard; shed instead of requeued"
                )
            )
        for task in poisoned:
            model, indices, _images = task.payload
            task.future.set_exception(
                PoisonedRequest(
                    f"task {(model, tuple(indices))!r} was in flight across "
                    f"{task.deaths} shard deaths (> max_task_retries="
                    f"{self.max_task_retries}); quarantined"
                )
            )
        for task, target in assignments:
            if target is None:
                task.future.set_exception(
                    ServingError(
                        "all worker shards died with the request in flight"
                    )
                )
            else:
                model, indices, images = task.payload
                target.in_q.put((task.task_id, model, indices, images))
        self.death_event.set()

    # -- fault injection (tests / chaos harness) -------------------------

    def kill_shard(self, shard_id: int) -> None:
        """Hard-kill one shard process (the kill-a-shard test hook)."""
        with self._lock:
            shards = list(self._shards)
        for shard in shards:
            if shard.shard_id == shard_id and shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=10.0)
                return

    def wedge_shard(self, shard_id: int, seconds: float) -> None:
        """Make one shard sleep without heartbeating (chaos hook).

        Requires ``chaos_hooks=True``.  The shard stays alive but goes
        silent for ``seconds``; a supervisor with ``wedge_timeout``
        shorter than that will declare it wedged, kill it, and respawn.
        """
        if not self._chaos_hooks:
            raise ServingError("wedge_shard requires chaos_hooks=True")
        with self._lock:
            shard = self._shards[shard_id]
            if not shard.alive:
                raise ServingError(f"shard {shard_id} is not alive to wedge")
        shard.in_q.put((_WEDGE, float(seconds)))

    @property
    def supervisor(self):
        """The attached :class:`ShardSupervisor` (None when unsupervised)."""
        return self._supervisor

    # -- lifecycle -------------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Stop shards, fail any stranded tasks, release shared memory."""
        self._closing = True
        self._scrub_stop.set()
        if self._scrub_thread is not None and self._scrub_thread.is_alive():
            self._scrub_thread.join(timeout=timeout)
        self._recovery_done.set()  # release any dispatch waiting on recovery
        if self._supervisor is not None:
            self._supervisor.stop()
        for shard in self._shards:
            if shard.process.is_alive():
                try:
                    shard.in_q.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for shard in self._shards:
            shard.process.join(timeout=timeout)
            if shard.process.is_alive():  # pragma: no cover - stuck worker
                shard.process.terminate()
                shard.process.join(timeout=5.0)
        for shard in self._shards:
            if shard.collector is not None and shard.collector.is_alive():
                shard.collector.join(timeout=timeout)
        with self._lock:
            stranded = list(self._tasks.values())
            self._tasks.clear()
        for task in stranded:
            if not task.future.done():
                task.future.set_exception(
                    ServingError("pool closed with the request in flight")
                )
        for shard in self._shards:
            for q in (shard.in_q, shard.out_q):
                try:
                    q.close()
                    q.join_thread()
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for bundle in self._retired_bundles:
            bundle.close(unlink=True)
        self._retired_bundles.clear()
        self._bundle.close(unlink=True)

    def __enter__(self) -> "ShardedPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
