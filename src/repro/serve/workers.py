"""Sharded worker pool: warm model processes over zero-copy weights.

One :class:`ShardedPool` owns N worker processes ("shards").  The
parent publishes every served model's weight arrays — plus, optionally,
the dataset image table — into a single
:class:`~repro.serve.shm.SharedArrayBundle`; each shard *attaches* and
rebuilds its models around read-only numpy views of the segment, so N
shards share one copy of the weights and the dataset (zero pickling,
shared page cache).  Only small things cross the process boundary:
model configs / coders / label maps at spawn, and per-task
``(task_id, model, indices, images-or-None)`` tuples afterwards — with
index-only traffic against a shared dataset, a task is just a list of
ints.

Fault tolerance (asserted by ``tests/serve/test_workers.py``):

* each shard has a dedicated collector thread that polls the shard's
  result queue with a short timeout and checks ``process.is_alive()``
  between polls;
* when a shard dies mid-task, its in-flight tasks are **requeued** on
  the surviving shards (results are keyed by ``task_id``, so a
  duplicate completion is a no-op);
* when the *last* shard dies, pending tasks fail with
  :class:`~repro.core.errors.ServingError` instead of hanging.

Rebuild-from-views is exact: every model family's forward pass reads
its arrays without writing (inference only), so handing it read-only
views of the published weights yields bit-identical predictions to the
parent's own models — the pool changes *where* inference runs, never
its result.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import threading
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ServingError
from ..core.rng import SeedLike
from .shm import Layout, SharedArrayBundle

#: Seconds a collector waits on the result queue before re-checking
#: that its shard process is still alive.
_POLL_SECONDS = 0.2

#: Key under which the dataset image table is published in the bundle.
_DATASET_KEY = "dataset/images"


# ---------------------------------------------------------------------------
# Model publish / rebuild
# ---------------------------------------------------------------------------


def _publish_model(name: str, model, arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Describe ``model`` as (small picklable meta, big arrays in shm).

    Returns the picklable *spec* shipped to workers; mutates ``arrays``
    with the model's weight tensors under ``{name}/...`` keys.
    """
    from ..mlp.network import MLP
    from ..mlp.quantized import QuantizedMLP
    from ..snn.network import SpikingNetwork
    from ..snn.snn_bp import BackPropSNN
    from ..snn.snn_wot import SNNWithoutTime

    def put(key: str, value: np.ndarray) -> None:
        arrays[f"{name}/{key}"] = np.asarray(value)

    if isinstance(model, SpikingNetwork):
        put("weights", model.weights)
        put("thresholds", model.thresholds)
        return {
            "kind": "snnwt",
            "config": model.config,
            "coder": model.coder,
            "labels": np.asarray(model.neuron_labels),
        }
    if isinstance(model, SNNWithoutTime):
        network = model.network
        put("weights", model.weights)
        put("thresholds", network.thresholds)
        return {
            "kind": "snnwot",
            "config": network.config,
            "coder": network.coder,
            "labels": np.asarray(network.neuron_labels),
        }
    if isinstance(model, BackPropSNN):
        put("weights", model.weights)
        return {
            "kind": "snnbp",
            "config": model.config,
            "learning_rate": model.learning_rate,
            "labels": np.asarray(model.neuron_labels),
        }
    if isinstance(model, QuantizedMLP):
        put("w_hidden_codes", model.w_hidden_codes)
        put("b_hidden_codes", model.b_hidden_codes)
        put("w_output_codes", model.w_output_codes)
        put("b_output_codes", model.b_output_codes)
        return {
            "kind": "mlp-q",
            "config": model.config,
            "weight_format": model.weight_format,
            "activation_format": model.activation_format,
        }
    if isinstance(model, MLP):
        put("w_hidden", model.w_hidden)
        put("b_hidden", model.b_hidden)
        put("w_output", model.w_output)
        put("b_output", model.b_output)
        return {"kind": "mlp", "config": model.config}
    raise ServingError(
        f"cannot publish model {name!r} of type {type(model).__name__}"
    )


def rebuild_model(name: str, spec: Dict[str, Any], bundle: SharedArrayBundle):
    """Reconstruct a served model around the bundle's read-only views."""
    kind = spec["kind"]

    def view(key: str) -> np.ndarray:
        return bundle[f"{name}/{key}"]

    if kind in ("snnwt", "snnwot"):
        from ..snn.network import SpikingNetwork

        network = SpikingNetwork(spec["config"], coder=spec["coder"])
        network.weights = view("weights")
        # Inference never adjusts thresholds (homeostasis is a training
        # mechanism), so the read-only view is safe — and any stray
        # write would raise instead of silently diverging the shard.
        network.population.thresholds = view("thresholds")
        network.neuron_labels = spec["labels"]
        if kind == "snnwt":
            return network
        from ..snn.snn_wot import SNNWithoutTime

        return SNNWithoutTime(network)
    if kind == "snnbp":
        from ..snn.snn_bp import BackPropSNN

        model = BackPropSNN(spec["config"], learning_rate=spec["learning_rate"])
        model.weights = view("weights")
        model.neuron_labels = spec["labels"]
        return model
    if kind == "mlp-q":
        from ..mlp.quantized import QuantizedMLP, SigmoidLUT

        model = object.__new__(QuantizedMLP)
        model.config = spec["config"]
        model.weight_format = spec["weight_format"]
        model.activation_format = spec["activation_format"]
        model.lut = SigmoidLUT.build(slope=spec["config"].sigmoid_slope)
        model.output_lut = SigmoidLUT.build(slope=1.0)
        model.w_hidden_codes = view("w_hidden_codes")
        model.b_hidden_codes = view("b_hidden_codes")
        model.w_output_codes = view("w_output_codes")
        model.b_output_codes = view("b_output_codes")
        return model
    if kind == "mlp":
        from ..mlp.network import MLP

        model = MLP(spec["config"])
        model.w_hidden = view("w_hidden")
        model.b_hidden = view("b_hidden")
        model.w_output = view("w_output")
        model.b_output = view("b_output")
        return model
    raise ServingError(f"unknown model kind {kind!r} for {name!r}")


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _shard_main(
    shard_id: int,
    bundle_spec: Tuple[str, Layout],
    model_specs: Dict[str, Dict[str, Any]],
    seed: SeedLike,
    warm: bool,
    start_method: str,
    in_q,
    out_q,
) -> None:
    """Worker entry point: attach, rebuild, serve tasks until sentinel."""
    from .engine import build_runners

    # Fork-started shards share the parent's resource tracker; see
    # SharedArrayBundle.attach for why untrack must follow the method.
    bundle = SharedArrayBundle.attach(
        *bundle_spec, untrack=(start_method != "fork")
    )
    try:
        models = {
            name: rebuild_model(name, spec, bundle)
            for name, spec in model_specs.items()
        }
        runners = build_runners(models, seed=seed)
        images = bundle[_DATASET_KEY] if _DATASET_KEY in bundle else None
        if warm and images is not None:
            for runner in runners.values():
                runner.precode(range(len(images)), images)
        out_q.put(("ready", shard_id, None, None))
        while True:
            task = in_q.get()
            if task is None:
                return
            task_id, model, indices, rows = task
            try:
                if rows is None:
                    if images is None:
                        raise ServingError(
                            "index-only task but no shared dataset published"
                        )
                    rows = images[list(indices)]
                labels = runners[model].run(indices, rows)
                out_q.put(("result", shard_id, task_id, np.asarray(labels)))
            except Exception as exc:  # noqa: BLE001 — report, keep serving
                out_q.put(("error", shard_id, task_id, repr(exc)))
    finally:
        bundle.close()


# ---------------------------------------------------------------------------
# Parent-side pool
# ---------------------------------------------------------------------------


class _Shard:
    """Parent-side handle: process + queues + collector thread."""

    __slots__ = ("shard_id", "process", "in_q", "out_q", "collector", "alive")

    def __init__(self, shard_id: int, process, in_q, out_q):
        self.shard_id = shard_id
        self.process = process
        self.in_q = in_q
        self.out_q = out_q
        self.collector: Optional[threading.Thread] = None
        self.alive = True


class _Task:
    """One in-flight batch: its future, payload and current shard."""

    __slots__ = ("task_id", "payload", "shard_id", "future")

    def __init__(self, task_id: int, payload: tuple, shard_id: int):
        self.task_id = task_id
        self.payload = payload
        self.shard_id = shard_id
        self.future: Future = Future()


class ShardedPool:
    """N warm worker processes sharing one weights+dataset segment.

    Args:
        models: ``name -> trained model`` (the publishable families:
            SpikingNetwork, SNNwot, SNN+BP, MLP, QuantizedMLP).
        jobs: number of shard processes.
        images: optional dataset table published into shared memory so
            tasks can reference rows by index only.
        seed: RNG root for the shards' SNNwt runners.
        warm: pre-encode SNNwt spike-train caches in every shard at
            startup (against the published dataset).
        start_method: multiprocessing start method (default: ``fork``
            where available — the shards attach the segment either way).
        task_timeout: seconds :meth:`run_batch` waits before declaring
            a task lost.
    """

    def __init__(
        self,
        models: Dict[str, Any],
        jobs: int = 2,
        images: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        warm: bool = True,
        start_method: Optional[str] = None,
        task_timeout: float = 120.0,
    ):
        if jobs < 1:
            raise ServingError(f"jobs must be >= 1, got {jobs}")
        if not models:
            raise ServingError("no models to serve")
        self.models = sorted(models)
        self.task_timeout = task_timeout
        self._n_rows = 0 if images is None else len(images)
        self._lock = threading.Lock()
        self._tasks: Dict[int, _Task] = {}
        self._task_ids = itertools.count()
        self._rr = itertools.count()
        self._closing = False

        arrays: Dict[str, np.ndarray] = {}
        specs = {
            name: _publish_model(name, model, arrays)
            for name, model in models.items()
        }
        if images is not None:
            arrays[_DATASET_KEY] = np.asarray(images)
        self._bundle = SharedArrayBundle.create(arrays)

        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        ctx = multiprocessing.get_context(start_method)
        self._shards: List[_Shard] = []
        try:
            for shard_id in range(jobs):
                in_q = ctx.Queue()
                out_q = ctx.Queue()
                process = ctx.Process(
                    target=_shard_main,
                    args=(
                        shard_id,
                        self._bundle.spec(),
                        specs,
                        seed,
                        warm,
                        start_method,
                        in_q,
                        out_q,
                    ),
                    name=f"repro-shard-{shard_id}",
                    daemon=True,
                )
                process.start()
                self._shards.append(_Shard(shard_id, process, in_q, out_q))
            self._await_ready()
        except Exception:
            self.close()
            raise
        for shard in self._shards:
            shard.collector = threading.Thread(
                target=self._collect,
                args=(shard,),
                name=f"repro-collector-{shard.shard_id}",
                daemon=True,
            )
            shard.collector.start()

    # -- startup --------------------------------------------------------

    def _await_ready(self, timeout: float = 120.0) -> None:
        for shard in self._shards:
            try:
                kind, *_rest = shard.out_q.get(timeout=timeout)
            except queue_module.Empty:
                raise ServingError(
                    f"shard {shard.shard_id} did not come up within {timeout}s"
                ) from None
            if kind != "ready":  # pragma: no cover - defensive
                raise ServingError(
                    f"shard {shard.shard_id} sent {kind!r} before ready"
                )

    # -- introspection ---------------------------------------------------

    @property
    def has_dataset(self) -> bool:
        return self._n_rows > 0

    def has_row(self, index: int) -> bool:
        return 0 <= index < self._n_rows

    def alive_shards(self) -> List[int]:
        with self._lock:
            return [s.shard_id for s in self._shards if s.alive]

    def nbytes_shared(self) -> int:
        return self._bundle.nbytes()

    # -- task path -------------------------------------------------------

    def run_batch(
        self,
        model: str,
        indices: Sequence[int],
        images: Optional[np.ndarray],
    ) -> np.ndarray:
        """Run one coalesced batch on some shard; blocks for the result.

        ``images=None`` sends an index-only task (requires a published
        dataset).  Raises :class:`ServingError` when every shard is
        dead or the task fails in the worker.
        """
        if model not in self.models:
            raise ServingError(f"unknown model {model!r}; pool serves {self.models}")
        indices = [int(i) for i in indices]
        with self._lock:
            task = _Task(
                next(self._task_ids),
                (model, indices, images),
                shard_id=-1,
            )
            self._tasks[task.task_id] = task
            shard = self._pick_shard_locked()
            if shard is None:
                del self._tasks[task.task_id]
                raise ServingError("all worker shards are dead")
            task.shard_id = shard.shard_id
        shard.in_q.put((task.task_id, model, indices, images))
        result = task.future.result(timeout=self.task_timeout)
        return result

    def _pick_shard_locked(self) -> Optional[_Shard]:
        alive = [s for s in self._shards if s.alive]
        if not alive:
            return None
        return alive[next(self._rr) % len(alive)]

    # -- collector threads ----------------------------------------------

    def _collect(self, shard: _Shard) -> None:
        while True:
            try:
                message = shard.out_q.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                if self._closing:
                    # close() fails any stranded tasks itself; don't
                    # requeue onto shards that are also shutting down.
                    return
                if not shard.process.is_alive():
                    self._drain_queue(shard)
                    self._on_shard_death(shard)
                    return
                continue
            self._handle(message)

    def _drain_queue(self, shard: _Shard) -> None:
        """Consume results the shard managed to emit before dying."""
        while True:
            try:
                self._handle(shard.out_q.get_nowait())
            except queue_module.Empty:
                return

    def _handle(self, message) -> None:
        kind, _shard_id, task_id, payload = message
        with self._lock:
            task = self._tasks.pop(task_id, None)
        if task is None:  # duplicate after a requeue raced completion
            return
        if kind == "result":
            task.future.set_result(payload)
        else:
            task.future.set_exception(
                ServingError(f"worker task failed: {payload}")
            )

    def _on_shard_death(self, shard: _Shard) -> None:
        """Requeue the dead shard's in-flight tasks on survivors."""
        with self._lock:
            shard.alive = False
            orphans = [
                t for t in self._tasks.values() if t.shard_id == shard.shard_id
            ]
            assignments = []
            for task in orphans:
                target = self._pick_shard_locked()
                if target is None:
                    del self._tasks[task.task_id]
                task.shard_id = target.shard_id if target else -1
                assignments.append((task, target))
        for task, target in assignments:
            if target is None:
                task.future.set_exception(
                    ServingError(
                        "all worker shards died with the request in flight"
                    )
                )
            else:
                model, indices, images = task.payload
                target.in_q.put((task.task_id, model, indices, images))

    # -- fault injection (tests) ----------------------------------------

    def kill_shard(self, shard_id: int) -> None:
        """Hard-kill one shard process (the kill-a-shard test hook)."""
        for shard in self._shards:
            if shard.shard_id == shard_id and shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=10.0)
                return

    # -- lifecycle -------------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Stop shards, fail any stranded tasks, release shared memory."""
        self._closing = True
        for shard in self._shards:
            if shard.process.is_alive():
                try:
                    shard.in_q.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for shard in self._shards:
            shard.process.join(timeout=timeout)
            if shard.process.is_alive():  # pragma: no cover - stuck worker
                shard.process.terminate()
                shard.process.join(timeout=5.0)
        for shard in self._shards:
            if shard.collector is not None and shard.collector.is_alive():
                shard.collector.join(timeout=timeout)
        with self._lock:
            stranded = list(self._tasks.values())
            self._tasks.clear()
        for task in stranded:
            if not task.future.done():
                task.future.set_exception(
                    ServingError("pool closed with the request in flight")
                )
        for shard in self._shards:
            for q in (shard.in_q, shard.out_q):
                try:
                    q.close()
                    q.join_thread()
                except (OSError, ValueError):  # pragma: no cover
                    pass
        self._bundle.close(unlink=True)

    def __enter__(self) -> "ShardedPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
