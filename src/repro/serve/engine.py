"""Inference serving engine: model runners + the routing server.

The pieces:

* **Runners** adapt each trained model family to one uniform call —
  ``run(indices, images) -> labels`` — so the batcher and the worker
  shards never special-case model kinds.  :class:`SNNwtRunner` is the
  interesting one: the timed SNN's forward pass is stochastic, so the
  runner derives every request's spike train from the request's own
  dataset index (``child_rng(seed, "snn-test-spikes", index)``, the
  PR2 scheme) and caches encoded trains per index — encoding is a flat
  ~0.6 ms/image cost that served traffic pays once, not per request.
* :class:`InferenceServer` owns one :class:`MicroBatcher` (and one
  :class:`ServingMetrics`) per served model, routes submissions by
  model name, resolves index-only requests against an attached image
  table, and times every coalesced batch under the ``serve-batch``
  phase.  Backends: in-process runners (default) or a
  :class:`~repro.serve.workers.ShardedPool` of warm worker processes.

Bit-identity: a served prediction equals the corresponding direct
``predict`` / ``predict_batch`` call for the same index, independent
of batch composition, concurrency, or backend — the per-index RNG
scheme plus the PR2 batched-engine contract guarantee it, and
``tests/serve/test_engine.py`` asserts it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import (
    CircuitOpen,
    DeadlineExceeded,
    NumericSentinelError,
    Overloaded,
    PoisonedRequest,
    ServingError,
)
from ..core.rng import SeedLike, child_rng
from ..core.timing import phase
from ..snn.batched import TEST_SPIKE_STREAM, batch_winners, encode_indexed
from .batcher import BatchPolicy, MicroBatcher
from .breaker import BreakerPolicy, CircuitBreaker
from .metrics import ServingMetrics

#: A request payload as it sits in the batcher queue:
#: ``(index, image-or-None, absolute-deadline-or-None)``.
Payload = Tuple[int, Optional[np.ndarray], Optional[float]]

#: Errors that are *not* evidence of a broken model path and must not
#: feed a model's circuit breaker: typed sheds and the breaker's own
#: rejections.
_NON_BREAKER_ERRORS = (Overloaded, DeadlineExceeded, CircuitOpen, PoisonedRequest)


class ModelRunner:
    """Uniform interface over one trained model: ``run(indices, images)``."""

    def run(self, indices: Sequence[int], images: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def precode(self, indices: Sequence[int], images: np.ndarray) -> int:
        """Warm any per-index caches; returns entries added (default 0)."""
        return 0


class ArrayRunner(ModelRunner):
    """Deterministic models: one vectorized ``predict_fn(images)`` call.

    Fits SNNwot, SNN+BP (both take raw luminance rows) and the float /
    quantized MLPs (via their ``predict_images``).  ``indices`` are
    ignored — these forward paths draw no randomness, so the index-
    keyed RNG scheme is moot and bit-identity is free.
    """

    def __init__(self, predict_fn):
        self._predict = predict_fn

    def run(self, indices: Sequence[int], images: np.ndarray) -> np.ndarray:
        return np.asarray(self._predict(np.atleast_2d(images)))


class SNNwtRunner(ModelRunner):
    """Timed-SNN serving: per-index spike-train cache + batched grid sim.

    Args:
        network: a trained, labeled :class:`~repro.snn.network.SpikingNetwork`.
        seed: RNG root for test-time encoding (defaults to the
            network's config seed, matching ``predict_batch``).
        stream: RNG stream name (the PR2 test-spike stream).
        max_cache: bound on cached trains (FIFO eviction); None keeps
            every index ever served (fine at dataset scale).
    """

    def __init__(
        self,
        network,
        seed: SeedLike = None,
        stream: str = TEST_SPIKE_STREAM,
        max_cache: Optional[int] = None,
    ):
        if network.neuron_labels is None:
            raise ServingError(
                "cannot serve an unlabeled SNN; run the labeling pass first"
            )
        self.network = network
        self.seed = network.config.seed if seed is None else seed
        self.stream = stream
        self.max_cache = max_cache
        self._trains: Dict[int, Any] = {}

    def _encode_missing(
        self, indices: Sequence[int], images: np.ndarray
    ) -> None:
        missing = [
            (j, int(index))
            for j, index in enumerate(indices)
            if int(index) not in self._trains
        ]
        if not missing:
            return
        rows = np.atleast_2d(images)[[j for j, _ in missing]]
        trains = encode_indexed(
            self.network,
            rows,
            [index for _, index in missing],
            seed=self.seed,
            stream=self.stream,
        )
        for (_, index), train in zip(missing, trains):
            self._trains[index] = train
        if self.max_cache is not None:
            while len(self._trains) > self.max_cache:
                self._trains.pop(next(iter(self._trains)))

    def precode(self, indices: Sequence[int], images: np.ndarray) -> int:
        """Encode (and cache) the given rows ahead of traffic."""
        before = len(self._trains)
        self._encode_missing(indices, images)
        return len(self._trains) - before

    def run(self, indices: Sequence[int], images: np.ndarray) -> np.ndarray:
        for index in indices:
            if int(index) < 0:
                raise ServingError(
                    "snnwt serving needs a dataset index per request; the "
                    "per-request RNG stream is keyed by index"
                )
        self._encode_missing(indices, images)
        trains = [self._trains[int(index)] for index in indices]
        winners = batch_winners(self.network, trains, batch_size=len(trains))
        return np.asarray(self.network.neuron_labels)[winners]


class PlanRunner(ModelRunner):
    """Serve a :class:`~repro.ir.ops.CompiledPlan` (the default engine).

    One long-lived :class:`~repro.ir.runtime.ExecutionContext` carries
    the timed SNN's per-index spike-train cache across requests, so a
    plan runner has exactly the :class:`SNNwtRunner` warm-cache
    behaviour — and deterministic plans simply ignore the context.
    Bit-identity to the legacy runners is the IR's per-kind golden
    contract (``tests/ir/test_golden.py``).

    ``backend`` pins the plan-execution backend for every request this
    runner serves (resolved at construction so an unknown name fails
    fast, not mid-traffic; ``None`` follows the registry precedence).
    The context is backend-agnostic, so a runner's warm caches survive
    a backend change across hot-swaps.
    """

    def __init__(self, plan, seed: SeedLike = None, backend: Optional[str] = None):
        from ..ir.backends import resolve_backend_name
        from ..ir.runtime import ExecutionContext

        self.backend = resolve_backend_name(backend)
        if seed is not None and plan.requires_indices:
            # The legacy SNNwtRunner lets callers re-root the RNG; the
            # plan carries its seed in metadata, so rebind a copy (the
            # fresh plan computes its own — different — signature).
            plan = plan.__class__(
                plan.kind,
                plan.instructions,
                plan.buffers,
                plan.consts,
                meta={**plan.meta, "seed": seed},
                outputs=plan.outputs,
            )
        self.plan = plan
        self._ctx = ExecutionContext(plan)

    def precode(self, indices: Sequence[int], images: np.ndarray) -> int:
        if not self.plan.requires_indices:
            return 0
        before = self._ctx.cached_train_count()
        self._ctx.trains_for(np.atleast_2d(images), indices)
        return self._ctx.cached_train_count() - before

    def preload_trains(self, trains: Dict[int, Any]) -> int:
        """Seed the context with shipped/cached trains (shard spawn)."""
        return self._ctx.preload_trains(trains)

    def run(self, indices: Sequence[int], images: np.ndarray) -> np.ndarray:
        from ..ir.execute import run_plan

        if self.plan.requires_indices:
            for index in indices:
                if int(index) < 0:
                    raise ServingError(
                        "snnwt serving needs a dataset index per request; "
                        "the per-request RNG stream is keyed by index"
                    )
        return np.asarray(
            run_plan(
                self.plan,
                np.atleast_2d(images),
                indices=indices,
                ctx=self._ctx,
                backend=self.backend,
            )
        )


#: Engines ``build_runners`` / the pool / the CLI accept.
ENGINES = ("plan", "legacy")


def _legacy_runner(name: str, model, seed: SeedLike) -> ModelRunner:
    from ..snn.network import SpikingNetwork

    if isinstance(model, SpikingNetwork):
        return SNNwtRunner(model, seed=seed)
    if hasattr(model, "predict_images"):
        return ArrayRunner(model.predict_images)
    if hasattr(model, "predict"):
        return ArrayRunner(model.predict)
    raise ServingError(
        f"model {name!r} ({type(model).__name__}) has no predict API"
    )


def build_runners(
    models: Dict[str, Any],
    seed: SeedLike = None,
    engine: str = "plan",
    backend: Optional[str] = None,
) -> Dict[str, ModelRunner]:
    """Wrap a ``name -> trained model`` mapping into runners.

    ``engine="plan"`` (the default) compiles each model onto the
    execution IR and serves its :class:`CompiledPlan`; models that
    refuse to compile (live fault injectors) fall back to their legacy
    runner per model, so a partially-faulted fleet still serves.
    ``engine="legacy"`` is the escape hatch: the pre-IR dispatch —
    :class:`SNNwtRunner` for :class:`~repro.snn.network.SpikingNetwork`,
    :class:`ArrayRunner` over ``predict_images``/``predict`` otherwise.

    ``backend`` pins the plan-execution backend for every plan runner
    (``None`` follows the registry precedence: ``REPRO_IR_BACKEND``,
    then the default).  Validated up front so an unknown name fails the
    whole build instead of the first request.  Ignored by legacy
    runners.
    """
    if engine not in ENGINES:
        raise ServingError(
            f"unknown serving engine {engine!r}; use one of {ENGINES}"
        )
    if engine == "plan":
        from ..ir.backends import resolve_backend_name

        backend = resolve_backend_name(backend)
    runners: Dict[str, ModelRunner] = {}
    for name, model in models.items():
        if engine == "plan":
            from ..core.errors import CompileError
            from ..ir.plan_cache import get_plan

            try:
                runners[name] = PlanRunner(
                    get_plan(model), seed=seed, backend=backend
                )
                continue
            except CompileError:
                pass  # fall back to the legacy runner for this model
        runners[name] = _legacy_runner(name, model, seed)
    return runners


class InferenceServer:
    """Routes single-image requests to per-model micro-batched engines.

    Exactly one backend:

    * ``runners`` — in-process :class:`ModelRunner` instances (the
      default; what ``build_runners`` produces);
    * ``pool`` — a :class:`~repro.serve.workers.ShardedPool` whose
      worker processes hold the models (rebuilt zero-copy from shared
      memory); the server still owns batching, admission control and
      metrics, and the pool owns execution.

    ``images`` optionally attaches a read-only ``(N, n_inputs)`` image
    table so clients can submit *just an index* — the serving-bench
    shape, where request payloads stay tiny.  With a pool backend and
    index-only traffic, only indices cross the process boundary; the
    workers resolve rows against their shared-memory dataset view.

    Args:
        runners: ``name -> ModelRunner`` (exclusive with ``pool``).
        policy: shared :class:`BatchPolicy` for every model's batcher.
        images: optional image table for index-only submissions.
        pool: optional sharded worker-pool backend.
        breaker: shared :class:`~repro.serve.breaker.BreakerPolicy` for
            every model's circuit breaker (default: the stock policy).
        interceptor: optional chaos/diagnostics hook; its
            ``before_batch(model, payloads)`` runs ahead of every
            coalesced batch (the seam the chaos harness uses for
            latency spikes and transient-error bursts).
        audit_rate: fraction of served batches re-executed on the
            serial-interpreter oracle and bit-compared against the
            served answer (the SDC audit lane).  ``0.0`` (the default)
            disables auditing entirely — no RNG is created and the
            request path is bit-identical to a server built without
            the feature.
        audit_seed: RNG root for the audit sampling stream.
    """

    def __init__(
        self,
        runners: Optional[Dict[str, ModelRunner]] = None,
        policy: Optional[BatchPolicy] = None,
        images: Optional[np.ndarray] = None,
        pool=None,
        breaker: Optional[BreakerPolicy] = None,
        interceptor=None,
        audit_rate: float = 0.0,
        audit_seed: int = 0,
    ):
        if (runners is None) == (pool is None):
            raise ServingError("pass exactly one of runners= or pool=")
        self.runners = dict(runners) if runners is not None else {}
        self.pool = pool
        self.policy = (policy or BatchPolicy()).validate()
        self.breaker_policy = (breaker or BreakerPolicy()).validate()
        self.interceptor = interceptor
        self.images = None if images is None else np.asarray(images)
        self.audit_rate = float(audit_rate)
        if not 0.0 <= self.audit_rate <= 1.0:
            raise ServingError(
                f"audit_rate must be in [0, 1], got {audit_rate}"
            )
        self._audit_lock = threading.Lock()
        self._audit_counters = {
            "audit_checks": 0,
            "audit_matches": 0,
            "audit_mismatches": 0,
            "audit_skipped": 0,
        }
        self._sentinel_trips = 0
        self._audit_rng = (
            child_rng(audit_seed, "audit-lane") if self.audit_rate > 0 else None
        )
        self._oracle_runners: Dict[str, tuple] = {}
        names = sorted(self.runners) if pool is None else sorted(pool.models)
        if not names:
            raise ServingError("no models to serve")
        self.metrics: Dict[str, ServingMetrics] = {}
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._batchers: Dict[str, MicroBatcher] = {}
        self._closed = False
        for name in names:
            metrics = ServingMetrics(self.policy.max_batch)
            self.metrics[name] = metrics
            self.breakers[name] = CircuitBreaker(self.breaker_policy, name=name)
            self._batchers[name] = MicroBatcher(
                run_batch=self._bind(name),
                policy=self.policy,
                metrics=metrics,
                name=name,
            )

    @classmethod
    def from_models(
        cls,
        models: Dict[str, Any],
        policy: Optional[BatchPolicy] = None,
        images: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        engine: str = "plan",
        backend: Optional[str] = None,
        audit_rate: float = 0.0,
        audit_seed: int = 0,
    ) -> "InferenceServer":
        """In-process server over trained models (see :func:`build_runners`)."""
        return cls(
            runners=build_runners(
                models, seed=seed, engine=engine, backend=backend
            ),
            policy=policy,
            images=images,
            audit_rate=audit_rate,
            audit_seed=audit_seed,
        )

    @property
    def models(self) -> List[str]:
        return sorted(self._batchers)

    # -- request path ---------------------------------------------------

    def submit(
        self,
        model: str,
        image: Optional[np.ndarray] = None,
        index: int = -1,
        deadline_ms: Optional[float] = None,
    ) -> Future:
        """Enqueue one request; returns a future resolving to its label.

        Give ``image`` (a raw luminance row), or just ``index`` when an
        image table is attached.  ``deadline_ms`` is a per-request
        latency budget: work that cannot complete inside it is shed
        with :class:`~repro.core.errors.DeadlineExceeded` wherever it
        happens to be queued (never silently dropped).  Raises
        :class:`~repro.core.errors.CircuitOpen` while the model's
        circuit breaker is open,
        :class:`~repro.core.errors.Overloaded` when the model's queue
        is full and :class:`~repro.core.errors.ServingError` for an
        unknown model or after :meth:`close`.
        """
        batcher = self._batchers.get(model)
        if batcher is None:
            raise ServingError(
                f"unknown model {model!r}; serving {self.models}"
            )
        if image is None and not self._has_row(index):
            raise ServingError(
                f"request for model {model!r} has no image and index "
                f"{index} is not in the attached table"
            )
        metrics = self.metrics[model]
        breaker = self.breakers[model]
        if not breaker.allow():
            metrics.record_breaker_rejection()
            raise CircuitOpen(
                f"circuit breaker for model {model!r} is {breaker.state}; "
                "request rejected"
            )
        if deadline_ms is not None and deadline_ms <= 0:
            breaker.cancel()
            raise ServingError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        submitted_at = time.perf_counter()
        deadline = (
            None if deadline_ms is None else submitted_at + deadline_ms * 1e-3
        )
        try:
            future = batcher.submit((int(index), image, deadline), deadline=deadline)
        except ServingError:
            breaker.cancel()  # shed before reaching the model path
            raise
        future.add_done_callback(
            self._breaker_recorder(breaker, submitted_at)
        )
        return future

    @staticmethod
    def _breaker_recorder(breaker: CircuitBreaker, submitted_at: float):
        def record(future: Future) -> None:
            latency = time.perf_counter() - submitted_at
            error = future.exception()
            if error is None:
                breaker.record_success(latency)
            elif isinstance(error, _NON_BREAKER_ERRORS):
                breaker.cancel()  # typed shed, not a model-path failure
            else:
                breaker.record_failure(latency)

        return record

    def predict(
        self,
        model: str,
        image: Optional[np.ndarray] = None,
        index: int = -1,
        timeout: Optional[float] = 60.0,
        deadline_ms: Optional[float] = None,
    ) -> int:
        """Blocking single prediction (``submit().result()``)."""
        return int(
            self.submit(
                model, image=image, index=index, deadline_ms=deadline_ms
            ).result(timeout)
        )

    def predict_many(
        self,
        model: str,
        images: Optional[np.ndarray] = None,
        indices: Optional[Sequence[int]] = None,
        timeout: Optional[float] = 60.0,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Submit many requests concurrently; gather labels in order."""
        if images is None and indices is None:
            raise ServingError("predict_many needs images and/or indices")
        count = len(images) if images is not None else len(indices)
        futures = []
        for j in range(count):
            image = images[j] if images is not None else None
            index = int(indices[j]) if indices is not None else j
            futures.append(
                self.submit(
                    model, image=image, index=index, deadline_ms=deadline_ms
                )
            )
        return np.array([int(f.result(timeout)) for f in futures], dtype=np.int64)

    # -- model lifecycle ------------------------------------------------

    def swap_model(
        self,
        name: str,
        model,
        seed: SeedLike = None,
        engine: str = "plan",
        backend: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Replace one served model's weights without dropping requests.

        The batcher, metrics and breaker for ``name`` stay in place —
        only the execution target changes.  In-process backend: a
        fresh runner is built and the reference swapped atomically
        (``_run_batch`` dereferences ``self.runners[name]`` per batch,
        so queued requests drain to whichever model is current — none
        are shed).  Pool backend: delegates to
        :meth:`~repro.serve.workers.ShardedPool.hot_swap`, which rolls
        the shard slots onto the new weights one at a time.
        """
        if name not in self._batchers:
            raise ServingError(
                f"unknown model {name!r}; serving {self.models}"
            )
        if self._closed:
            raise ServingError("server is closed; cannot swap models")
        if self.pool is not None:
            result = self.pool.hot_swap({name: model})
            return {"model": name, "backend": "pool", **result}
        runner = build_runners(
            {name: model}, seed=seed, engine=engine, backend=backend
        )[name]
        self.runners[name] = runner
        return {"model": name, "backend": "runners"}

    # -- warmup / introspection ----------------------------------------

    def warm(
        self, model: Optional[str] = None, indices: Optional[Sequence[int]] = None
    ) -> int:
        """Pre-encode per-index caches against the attached image table.

        Returns the number of cache entries added.  A no-op for
        deterministic runners and for pool backends (pool workers warm
        themselves at startup).
        """
        if self.images is None or self.pool is not None:
            return 0
        if indices is None:
            indices = range(len(self.images))
        indices = [int(i) for i in indices]
        rows = self.images[indices]
        names = [model] if model is not None else list(self.runners)
        added = 0
        for name in names:
            runner = self.runners.get(name)
            if runner is None:
                raise ServingError(f"unknown model {name!r}")
            added += runner.precode(indices, rows)
        return added

    def queue_depth(self, model: str) -> int:
        return self._batchers[model].queue_depth()

    def stats(self) -> Dict[str, Any]:
        """Per-model metric snapshots (the ``serve-stats`` payload)."""
        from ..ir.plan_cache import plan_cache_stats

        payload: Dict[str, Any] = {
            "models": {
                name: {
                    "model": name,
                    **self.metrics[name].snapshot(),
                    "breaker": self.breakers[name].snapshot(),
                }
                for name in self.models
            },
            "plan_cache": plan_cache_stats(),
        }
        if self.runners:
            payload["engines"] = {
                name: (
                    "plan" if isinstance(runner, PlanRunner) else "legacy"
                )
                for name, runner in sorted(self.runners.items())
            }
            payload["backends"] = {
                name: (
                    runner.backend
                    if isinstance(runner, PlanRunner)
                    else None
                )
                for name, runner in sorted(self.runners.items())
            }
        if self.pool is not None:
            payload["pool"] = self.pool.stats()
        payload["integrity"] = self.integrity()
        return payload

    def health(self) -> Dict[str, Any]:
        """Readiness / liveness probe payload (``serve-health``).

        * **live** — the server object exists and is not closed (a
          process-level liveness signal).
        * **ready** — every model's breaker admits traffic (not open)
          *and*, with a pool backend, at least one shard is alive.

        Per-model detail carries the breaker state and current queue
        depth so an operator can see *why* readiness flipped.
        """
        live = not self._closed
        models: Dict[str, Any] = {}
        ready = live
        for name in self.models:
            snapshot = self.breakers[name].snapshot()
            models[name] = {
                "breaker": snapshot,
                "queue_depth": self._batchers[name].queue_depth(),
            }
            if snapshot["state"] == "open":
                ready = False
        payload: Dict[str, Any] = {
            "live": live,
            "models": models,
        }
        if self.pool is not None:
            alive = self.pool.alive_shards()
            payload["pool"] = {
                "alive_shards": alive,
                "jobs": self.pool.jobs,
            }
            if not alive:
                ready = False
        integrity = self.integrity()
        payload["integrity"] = integrity
        if integrity.get("unrecoverable"):
            # Corruption recovery failed: answers cannot be trusted.
            ready = False
        payload["ready"] = ready
        return payload

    # -- batch execution (scheduler threads land here) ------------------

    def _bind(self, name: str):
        def run_batch(payloads: List[Payload]) -> Sequence[Any]:
            return self._run_batch(name, payloads)

        return run_batch

    def _has_row(self, index: int) -> bool:
        if 0 <= index:
            if self.images is not None and index < len(self.images):
                return True
            if self.pool is not None and self.pool.has_row(index):
                return True
        return False

    def _resolve_images(self, payloads: List[Payload]) -> np.ndarray:
        rows = []
        for index, image, _deadline in payloads:
            if image is not None:
                rows.append(np.asarray(image))
            elif self.images is not None and 0 <= index < len(self.images):
                rows.append(self.images[index])
            else:
                raise ServingError(
                    f"no image for request index {index} and no attached table"
                )
        return np.stack(rows)

    def _run_batch(self, name: str, payloads: List[Payload]) -> Sequence[Any]:
        if self.interceptor is not None:
            # Chaos / diagnostics seam: may sleep (latency spike) or
            # raise (transient error burst) ahead of the model call.
            self.interceptor.before_batch(name, payloads)
        indices = [index for index, _, _ in payloads]
        deadlines = [d for _, _, d in payloads if d is not None]
        deadline = min(deadlines) if deadlines else None
        audit = self._should_audit()
        with phase("serve-batch"):
            if self.pool is not None:
                if (
                    all(image is None for _, image, _ in payloads)
                    and self.pool.has_dataset
                ):
                    images = None  # workers resolve rows from shared memory
                else:
                    images = self._resolve_images(payloads)
                if audit:
                    result, shard_id = self.pool.run_batch(
                        name, indices, images, deadline=deadline,
                        return_shard=True,
                    )
                    self._audit_batch(name, indices, images, result, shard_id)
                    return result
                return self.pool.run_batch(
                    name, indices, images, deadline=deadline
                )
            rows = self._resolve_images(payloads)
            try:
                result = self.runners[name].run(indices, rows)
            except NumericSentinelError:
                with self._audit_lock:
                    self._sentinel_trips += 1
                raise
            if audit:
                self._audit_batch(name, indices, rows, result, None)
            return result

    # -- audit lane ------------------------------------------------------

    def _should_audit(self) -> bool:
        """Seeded coin flip per coalesced batch (rate 0: draw-free)."""
        if self.audit_rate <= 0:
            return False
        with self._audit_lock:
            return float(self._audit_rng.random()) < self.audit_rate

    def _oracle_for(self, name: str) -> Optional[ModelRunner]:
        """Serial-backend twin of an in-process plan runner (cached).

        Legacy runners have no independent execution path to compare
        against, so they return None (counted as ``audit_skipped``).
        The cache is keyed by runner identity: :meth:`swap_model`
        replaces the runner object, which invalidates the oracle.
        """
        runner = self.runners.get(name)
        cached = self._oracle_runners.get(name)
        if cached is not None and cached[0] is runner:
            return cached[1]
        if not isinstance(runner, PlanRunner):
            return None
        oracle = PlanRunner(runner.plan, backend="serial")
        self._oracle_runners[name] = (runner, oracle)
        return oracle

    def _audit_batch(
        self,
        name: str,
        indices: Sequence[int],
        images: Optional[np.ndarray],
        served,
        shard_id: Optional[int],
    ) -> None:
        """Re-execute one served batch on the serial oracle and compare.

        A mismatch is the audit lane's whole reason to exist: the fast
        path returned an answer the independent serial interpreter
        disagrees with — silent corruption.  Pool mode escalates via
        :meth:`~repro.serve.workers.ShardedPool.report_audit_mismatch`
        (quarantine + full scrub); either mode counts it.  Oracle
        failures degrade to ``audit_skipped`` — the audit lane must
        never fail a request the serving path already answered.
        """
        try:
            if self.pool is not None:
                oracle = self.pool.audit_oracle(name)
                rows = (
                    images if images is not None else self.pool.audit_rows(indices)
                )
            else:
                oracle = self._oracle_for(name)
                rows = images
            if oracle is None:
                with self._audit_lock:
                    self._audit_counters["audit_skipped"] += 1
                return
            expected = np.asarray(oracle.run(indices, np.atleast_2d(rows)))
        except Exception:
            with self._audit_lock:
                self._audit_counters["audit_skipped"] += 1
            return
        matched = np.array_equal(
            np.asarray(served).reshape(-1), expected.reshape(-1)
        )
        with self._audit_lock:
            self._audit_counters["audit_checks"] += 1
            key = "audit_matches" if matched else "audit_mismatches"
            self._audit_counters[key] += 1
        if not matched and self.pool is not None and shard_id is not None:
            self.pool.report_audit_mismatch(shard_id, name)

    def integrity(self) -> Dict[str, Any]:
        """Stable-keyed SDC-defense section for stats/health payloads."""
        with self._audit_lock:
            payload: Dict[str, Any] = {
                "audit_rate": self.audit_rate,
                **self._audit_counters,
            }
            sentinel_trips = self._sentinel_trips
        if self.pool is not None:
            # Pool counters include worker-side sentinel trips; the
            # engine-side counter only matters for in-process runners.
            payload.update(self.pool.integrity_stats())
        else:
            payload["sentinel_trips"] = sentinel_trips
        return payload

    # -- lifecycle ------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Close every batcher (draining by default) and the pool."""
        if self._closed:
            return
        self._closed = True
        for batcher in self._batchers.values():
            batcher.close(drain=drain)
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
