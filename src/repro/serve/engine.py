"""Inference serving engine: model runners + the routing server.

The pieces:

* **Runners** adapt each trained model family to one uniform call —
  ``run(indices, images) -> labels`` — so the batcher and the worker
  shards never special-case model kinds.  :class:`SNNwtRunner` is the
  interesting one: the timed SNN's forward pass is stochastic, so the
  runner derives every request's spike train from the request's own
  dataset index (``child_rng(seed, "snn-test-spikes", index)``, the
  PR2 scheme) and caches encoded trains per index — encoding is a flat
  ~0.6 ms/image cost that served traffic pays once, not per request.
* :class:`InferenceServer` owns one :class:`MicroBatcher` (and one
  :class:`ServingMetrics`) per served model, routes submissions by
  model name, resolves index-only requests against an attached image
  table, and times every coalesced batch under the ``serve-batch``
  phase.  Backends: in-process runners (default) or a
  :class:`~repro.serve.workers.ShardedPool` of warm worker processes.

Bit-identity: a served prediction equals the corresponding direct
``predict`` / ``predict_batch`` call for the same index, independent
of batch composition, concurrency, or backend — the per-index RNG
scheme plus the PR2 batched-engine contract guarantee it, and
``tests/serve/test_engine.py`` asserts it.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ServingError
from ..core.rng import SeedLike
from ..core.timing import phase
from ..snn.batched import TEST_SPIKE_STREAM, batch_winners, encode_indexed
from .batcher import BatchPolicy, MicroBatcher
from .metrics import ServingMetrics

#: A request payload as it sits in the batcher queue.
Payload = Tuple[int, Optional[np.ndarray]]


class ModelRunner:
    """Uniform interface over one trained model: ``run(indices, images)``."""

    def run(self, indices: Sequence[int], images: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def precode(self, indices: Sequence[int], images: np.ndarray) -> int:
        """Warm any per-index caches; returns entries added (default 0)."""
        return 0


class ArrayRunner(ModelRunner):
    """Deterministic models: one vectorized ``predict_fn(images)`` call.

    Fits SNNwot, SNN+BP (both take raw luminance rows) and the float /
    quantized MLPs (via their ``predict_images``).  ``indices`` are
    ignored — these forward paths draw no randomness, so the index-
    keyed RNG scheme is moot and bit-identity is free.
    """

    def __init__(self, predict_fn):
        self._predict = predict_fn

    def run(self, indices: Sequence[int], images: np.ndarray) -> np.ndarray:
        return np.asarray(self._predict(np.atleast_2d(images)))


class SNNwtRunner(ModelRunner):
    """Timed-SNN serving: per-index spike-train cache + batched grid sim.

    Args:
        network: a trained, labeled :class:`~repro.snn.network.SpikingNetwork`.
        seed: RNG root for test-time encoding (defaults to the
            network's config seed, matching ``predict_batch``).
        stream: RNG stream name (the PR2 test-spike stream).
        max_cache: bound on cached trains (FIFO eviction); None keeps
            every index ever served (fine at dataset scale).
    """

    def __init__(
        self,
        network,
        seed: SeedLike = None,
        stream: str = TEST_SPIKE_STREAM,
        max_cache: Optional[int] = None,
    ):
        if network.neuron_labels is None:
            raise ServingError(
                "cannot serve an unlabeled SNN; run the labeling pass first"
            )
        self.network = network
        self.seed = network.config.seed if seed is None else seed
        self.stream = stream
        self.max_cache = max_cache
        self._trains: Dict[int, Any] = {}

    def _encode_missing(
        self, indices: Sequence[int], images: np.ndarray
    ) -> None:
        missing = [
            (j, int(index))
            for j, index in enumerate(indices)
            if int(index) not in self._trains
        ]
        if not missing:
            return
        rows = np.atleast_2d(images)[[j for j, _ in missing]]
        trains = encode_indexed(
            self.network,
            rows,
            [index for _, index in missing],
            seed=self.seed,
            stream=self.stream,
        )
        for (_, index), train in zip(missing, trains):
            self._trains[index] = train
        if self.max_cache is not None:
            while len(self._trains) > self.max_cache:
                self._trains.pop(next(iter(self._trains)))

    def precode(self, indices: Sequence[int], images: np.ndarray) -> int:
        """Encode (and cache) the given rows ahead of traffic."""
        before = len(self._trains)
        self._encode_missing(indices, images)
        return len(self._trains) - before

    def run(self, indices: Sequence[int], images: np.ndarray) -> np.ndarray:
        for index in indices:
            if int(index) < 0:
                raise ServingError(
                    "snnwt serving needs a dataset index per request; the "
                    "per-request RNG stream is keyed by index"
                )
        self._encode_missing(indices, images)
        trains = [self._trains[int(index)] for index in indices]
        winners = batch_winners(self.network, trains, batch_size=len(trains))
        return np.asarray(self.network.neuron_labels)[winners]


def build_runners(
    models: Dict[str, Any], seed: SeedLike = None
) -> Dict[str, ModelRunner]:
    """Wrap a ``name -> trained model`` mapping into runners.

    Dispatches on model type: :class:`~repro.snn.network.SpikingNetwork`
    gets the caching :class:`SNNwtRunner`; everything else that exposes
    ``predict_images`` (the MLPs) or ``predict`` (SNNwot, SNN+BP) gets
    an :class:`ArrayRunner`.
    """
    from ..snn.network import SpikingNetwork

    runners: Dict[str, ModelRunner] = {}
    for name, model in models.items():
        if isinstance(model, SpikingNetwork):
            runners[name] = SNNwtRunner(model, seed=seed)
        elif hasattr(model, "predict_images"):
            runners[name] = ArrayRunner(model.predict_images)
        elif hasattr(model, "predict"):
            runners[name] = ArrayRunner(model.predict)
        else:
            raise ServingError(
                f"model {name!r} ({type(model).__name__}) has no predict API"
            )
    return runners


class InferenceServer:
    """Routes single-image requests to per-model micro-batched engines.

    Exactly one backend:

    * ``runners`` — in-process :class:`ModelRunner` instances (the
      default; what ``build_runners`` produces);
    * ``pool`` — a :class:`~repro.serve.workers.ShardedPool` whose
      worker processes hold the models (rebuilt zero-copy from shared
      memory); the server still owns batching, admission control and
      metrics, and the pool owns execution.

    ``images`` optionally attaches a read-only ``(N, n_inputs)`` image
    table so clients can submit *just an index* — the serving-bench
    shape, where request payloads stay tiny.  With a pool backend and
    index-only traffic, only indices cross the process boundary; the
    workers resolve rows against their shared-memory dataset view.

    Args:
        runners: ``name -> ModelRunner`` (exclusive with ``pool``).
        policy: shared :class:`BatchPolicy` for every model's batcher.
        images: optional image table for index-only submissions.
        pool: optional sharded worker-pool backend.
    """

    def __init__(
        self,
        runners: Optional[Dict[str, ModelRunner]] = None,
        policy: Optional[BatchPolicy] = None,
        images: Optional[np.ndarray] = None,
        pool=None,
    ):
        if (runners is None) == (pool is None):
            raise ServingError("pass exactly one of runners= or pool=")
        self.runners = dict(runners) if runners is not None else {}
        self.pool = pool
        self.policy = (policy or BatchPolicy()).validate()
        self.images = None if images is None else np.asarray(images)
        names = sorted(self.runners) if pool is None else sorted(pool.models)
        if not names:
            raise ServingError("no models to serve")
        self.metrics: Dict[str, ServingMetrics] = {}
        self._batchers: Dict[str, MicroBatcher] = {}
        self._closed = False
        for name in names:
            metrics = ServingMetrics(self.policy.max_batch)
            self.metrics[name] = metrics
            self._batchers[name] = MicroBatcher(
                run_batch=self._bind(name),
                policy=self.policy,
                metrics=metrics,
                name=name,
            )

    @classmethod
    def from_models(
        cls,
        models: Dict[str, Any],
        policy: Optional[BatchPolicy] = None,
        images: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ) -> "InferenceServer":
        """In-process server over trained models (see :func:`build_runners`)."""
        return cls(
            runners=build_runners(models, seed=seed),
            policy=policy,
            images=images,
        )

    @property
    def models(self) -> List[str]:
        return sorted(self._batchers)

    # -- request path ---------------------------------------------------

    def submit(
        self,
        model: str,
        image: Optional[np.ndarray] = None,
        index: int = -1,
    ) -> Future:
        """Enqueue one request; returns a future resolving to its label.

        Give ``image`` (a raw luminance row), or just ``index`` when an
        image table is attached.  Raises
        :class:`~repro.core.errors.Overloaded` when the model's queue
        is full and :class:`~repro.core.errors.ServingError` for an
        unknown model or after :meth:`close`.
        """
        batcher = self._batchers.get(model)
        if batcher is None:
            raise ServingError(
                f"unknown model {model!r}; serving {self.models}"
            )
        if image is None and not self._has_row(index):
            raise ServingError(
                f"request for model {model!r} has no image and index "
                f"{index} is not in the attached table"
            )
        return batcher.submit((int(index), image))

    def predict(
        self,
        model: str,
        image: Optional[np.ndarray] = None,
        index: int = -1,
        timeout: Optional[float] = 60.0,
    ) -> int:
        """Blocking single prediction (``submit().result()``)."""
        return int(self.submit(model, image=image, index=index).result(timeout))

    def predict_many(
        self,
        model: str,
        images: Optional[np.ndarray] = None,
        indices: Optional[Sequence[int]] = None,
        timeout: Optional[float] = 60.0,
    ) -> np.ndarray:
        """Submit many requests concurrently; gather labels in order."""
        if images is None and indices is None:
            raise ServingError("predict_many needs images and/or indices")
        count = len(images) if images is not None else len(indices)
        futures = []
        for j in range(count):
            image = images[j] if images is not None else None
            index = int(indices[j]) if indices is not None else j
            futures.append(self.submit(model, image=image, index=index))
        return np.array([int(f.result(timeout)) for f in futures], dtype=np.int64)

    # -- warmup / introspection ----------------------------------------

    def warm(
        self, model: Optional[str] = None, indices: Optional[Sequence[int]] = None
    ) -> int:
        """Pre-encode per-index caches against the attached image table.

        Returns the number of cache entries added.  A no-op for
        deterministic runners and for pool backends (pool workers warm
        themselves at startup).
        """
        if self.images is None or self.pool is not None:
            return 0
        if indices is None:
            indices = range(len(self.images))
        indices = [int(i) for i in indices]
        rows = self.images[indices]
        names = [model] if model is not None else list(self.runners)
        added = 0
        for name in names:
            runner = self.runners.get(name)
            if runner is None:
                raise ServingError(f"unknown model {name!r}")
            added += runner.precode(indices, rows)
        return added

    def queue_depth(self, model: str) -> int:
        return self._batchers[model].queue_depth()

    def stats(self) -> Dict[str, Any]:
        """Per-model metric snapshots (the ``serve-stats`` payload)."""
        return {
            "models": {
                name: {"model": name, **metrics.snapshot()}
                for name, metrics in self.metrics.items()
            }
        }

    # -- batch execution (scheduler threads land here) ------------------

    def _bind(self, name: str):
        def run_batch(payloads: List[Payload]) -> Sequence[Any]:
            return self._run_batch(name, payloads)

        return run_batch

    def _has_row(self, index: int) -> bool:
        if 0 <= index:
            if self.images is not None and index < len(self.images):
                return True
            if self.pool is not None and self.pool.has_row(index):
                return True
        return False

    def _resolve_images(self, payloads: List[Payload]) -> np.ndarray:
        rows = []
        for index, image in payloads:
            if image is not None:
                rows.append(np.asarray(image))
            elif self.images is not None and 0 <= index < len(self.images):
                rows.append(self.images[index])
            else:
                raise ServingError(
                    f"no image for request index {index} and no attached table"
                )
        return np.stack(rows)

    def _run_batch(self, name: str, payloads: List[Payload]) -> Sequence[Any]:
        indices = [index for index, _ in payloads]
        with phase("serve-batch"):
            if self.pool is not None:
                if all(image is None for _, image in payloads) and self.pool.has_dataset:
                    images = None  # workers resolve rows from shared memory
                else:
                    images = self._resolve_images(payloads)
                return self.pool.run_batch(name, indices, images)
            return self.runners[name].run(indices, self._resolve_images(payloads))

    # -- lifecycle ------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Close every batcher (draining by default) and the pool."""
        if self._closed:
            return
        self._closed = True
        for batcher in self._batchers.values():
            batcher.close(drain=drain)
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
