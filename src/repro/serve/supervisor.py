"""Shard supervision: respawn dead/wedged shards under a crash-loop breaker.

PR 4's :class:`~repro.serve.workers.ShardedPool` tolerated shard death
by degrading capacity — a killed shard stayed dead.  The
:class:`ShardSupervisor` closes the loop:

* **death detection** — the pool's collector threads flag dead shards
  (``process.is_alive()``) and wake the supervisor via the pool's
  ``death_event``;
* **wedge detection** — every shard emits heartbeats while idle and
  results while busy, so a shard whose last message is older than
  ``wedge_timeout`` is *wedged* (alive but stuck); the supervisor
  hard-kills it (counted as ``wedge_kills``) and lets the normal
  death path requeue its work;
* **respawn with exponential backoff + deterministic jitter** — a dead
  slot is respawned after ``backoff_base * factor^crashes`` seconds
  (capped at ``backoff_max``), plus a jitter fraction drawn from a
  seeded child RNG (:func:`repro.core.rng.child_rng` keyed by slot),
  so restart stampedes are avoided *and* reproducible;
* **crash-loop breaker** — more than ``max_respawns`` deaths within
  ``respawn_window`` seconds trips the slot's breaker **open**
  (respawns stop; the condition is reported as
  :class:`~repro.core.errors.ShardCrashLoop` in the snapshot); after
  ``cooldown`` seconds the breaker goes **half-open** and one probe
  respawn is allowed — a crash re-opens it, while outliving the
  window closes it again;
* **planned retirement** — a death flagged by
  :meth:`~repro.serve.workers.ShardedPool.retire_shard` (the hot-swap
  rollover) is respawned immediately, with no crash bookkeeping, so
  routine snapshot promotions never trip the crash-loop breaker.

The supervisor never touches request routing: surviving shards keep
serving while a slot is down, and a respawned shard rebuilds its
models from the same shared-memory weights, so recovery cannot change
answers — only capacity.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional

from ..core.errors import ServingError
from ..core.rng import child_rng

#: Crash-loop breaker states (mirrors :mod:`repro.serve.breaker`).
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of the shard supervisor.

    Attributes:
        poll_interval: seconds between health sweeps (the supervisor
            also wakes immediately on a collector-reported death).
        wedge_timeout: seconds of shard silence (no heartbeat, no
            result) before an *alive* shard is declared wedged and
            hard-killed; ``None`` disables wedge detection.  Must
            exceed the longest legitimate batch.
        backoff_base: delay before the first respawn attempt.
        backoff_factor: multiplier per consecutive crash.
        backoff_max: cap on the respawn delay.
        jitter: fraction of the delay added as seeded jitter in
            ``[0, jitter)``.
        max_respawns: deaths tolerated within ``respawn_window``
            before the slot's crash-loop breaker trips open.
        respawn_window: sliding window (seconds) for the crash count.
        cooldown: seconds an open crash-loop breaker waits before
            allowing one half-open probe respawn.
        ready_timeout: seconds to wait for a respawned shard's ready
            message before counting the attempt as another crash.
        seed: RNG root for the per-slot jitter streams.
    """

    poll_interval: float = 0.2
    wedge_timeout: Optional[float] = 30.0
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.25
    max_respawns: int = 3
    respawn_window: float = 30.0
    cooldown: float = 10.0
    ready_timeout: float = 120.0
    seed: int = 0

    def validate(self) -> "SupervisorPolicy":
        if self.poll_interval <= 0:
            raise ServingError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        if self.wedge_timeout is not None and self.wedge_timeout <= 0:
            raise ServingError(
                f"wedge_timeout must be positive or None, got {self.wedge_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_max < self.backoff_base:
            raise ServingError(
                "need 0 <= backoff_base <= backoff_max, got "
                f"{self.backoff_base}/{self.backoff_max}"
            )
        if self.backoff_factor < 1.0:
            raise ServingError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ServingError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.max_respawns < 1:
            raise ServingError(
                f"max_respawns must be >= 1, got {self.max_respawns}"
            )
        if self.respawn_window <= 0 or self.cooldown < 0:
            raise ServingError(
                "respawn_window must be positive and cooldown >= 0, got "
                f"{self.respawn_window}/{self.cooldown}"
            )
        return self


class _SlotState:
    """Supervisor-side bookkeeping for one shard slot."""

    __slots__ = (
        "slot",
        "death_times",
        "consecutive_crashes",
        "respawns",
        "breaker",
        "opened_at",
        "next_attempt_at",
        "awaiting_respawn",
        "rng",
    )

    def __init__(self, slot: int, seed: int):
        self.slot = slot
        self.death_times: Deque[float] = deque()
        self.consecutive_crashes = 0
        self.respawns = 0
        self.breaker = CLOSED
        self.opened_at: Optional[float] = None
        self.next_attempt_at: Optional[float] = None
        self.awaiting_respawn = False
        self.rng = child_rng(seed, "shard-supervisor", slot)


class ShardSupervisor:
    """Background thread healing one :class:`ShardedPool`."""

    def __init__(self, pool, policy: Optional[SupervisorPolicy] = None):
        self.pool = pool
        self.policy = (policy or SupervisorPolicy()).validate()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._slots: Dict[int, _SlotState] = {
            slot: _SlotState(slot, self.policy.seed)
            for slot in range(pool.jobs)
        }
        self._crash_loop_trips = 0
        self._total_respawns = 0
        self._corrupt_heals = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-shard-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        self.pool.death_event.set()  # wake a waiting supervisor promptly
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    # -- the supervision loop -------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            self.pool.death_event.wait(self.policy.poll_interval)
            self.pool.death_event.clear()
            if self._stop.is_set():
                return
            try:
                self._sweep()
            except ServingError:
                # Pool closing underneath us or a respawn refused —
                # the next sweep (or stop()) sorts it out.
                continue

    def _sweep(self) -> None:
        now = time.perf_counter()
        self._detect_wedges(now)
        alive = set(self.pool.alive_shards())
        for slot, state in self._slots.items():
            if slot in alive:
                self._note_alive(state, now)
                continue
            self._heal_slot(state, now)

    def _detect_wedges(self, now: float) -> None:
        if self.policy.wedge_timeout is None:
            return
        for slot, age in self.pool.message_ages().items():
            if age > self.policy.wedge_timeout:
                self.pool._bump("wedge_kills")
                self.pool.kill_shard(slot)
                # The slot's collector notices the death and requeues;
                # the next sweep schedules the respawn.

    def _note_alive(self, state: _SlotState, now: float) -> None:
        """Alive slot housekeeping: probe outcomes + breaker closing."""
        state.awaiting_respawn = False
        state.next_attempt_at = None
        self._prune(state, now)
        if state.breaker == HALF_OPEN and not state.death_times:
            # The probe respawn outlived the crash window: close.
            state.breaker = CLOSED
            state.consecutive_crashes = 0
        elif state.breaker == CLOSED and not state.death_times:
            state.consecutive_crashes = 0

    def _prune(self, state: _SlotState, now: float) -> None:
        while (
            state.death_times
            and now - state.death_times[0] > self.policy.respawn_window
        ):
            state.death_times.popleft()

    def _heal_slot(self, state: _SlotState, now: float) -> None:
        policy = self.policy
        if self.pool.consume_planned_retire(state.slot):
            # Planned retirement (hot-swap rollover or corruption
            # roll): respawn right away — no death bookkeeping, no
            # backoff, no breaker pressure.  A learner promoting
            # snapshots every few seconds must not read as a crash
            # loop, and neither must a corruption recovery rolling
            # every shard at once.
            corrupt = self.pool.consume_corrupt_retire(state.slot)
            try:
                self.pool.respawn_shard(
                    state.slot, ready_timeout=policy.ready_timeout
                )
            except ServingError:
                # Replacement failed to come up; fall through and let
                # the ordinary crash path handle the slot.
                pass
            else:
                state.respawns += 1
                state.awaiting_respawn = False
                state.next_attempt_at = None
                with self._lock:
                    self._total_respawns += 1
                    if corrupt:
                        self._corrupt_heals += 1
                return
        if not state.awaiting_respawn:
            # Newly observed death: record it, maybe trip the breaker,
            # and schedule the (backed-off, jittered) respawn attempt.
            state.awaiting_respawn = True
            state.death_times.append(now)
            state.consecutive_crashes += 1
            self._prune(state, now)
            if state.breaker == HALF_OPEN:
                # The probe shard crashed: straight back to open.
                state.breaker = OPEN
                state.opened_at = now
            elif (
                state.breaker == CLOSED
                and len(state.death_times) > policy.max_respawns
            ):
                state.breaker = OPEN
                state.opened_at = now
                self._crash_loop_trips += 1
            state.next_attempt_at = now + self._backoff(state)
        if state.breaker == OPEN:
            if (
                state.opened_at is not None
                and now - state.opened_at >= policy.cooldown
            ):
                state.breaker = HALF_OPEN  # allow one probe respawn
            else:
                return  # crash-looping: sit out the cooldown
        if state.next_attempt_at is not None and now < state.next_attempt_at:
            return
        try:
            self.pool.respawn_shard(state.slot, ready_timeout=policy.ready_timeout)
        except ServingError:
            # The replacement failed to come up: count it as another
            # crash and back off further.
            state.death_times.append(time.perf_counter())
            state.consecutive_crashes += 1
            if state.breaker == HALF_OPEN:
                state.breaker = OPEN
                state.opened_at = time.perf_counter()
            elif (
                state.breaker == CLOSED
                and len(state.death_times) > policy.max_respawns
            ):
                state.breaker = OPEN
                state.opened_at = time.perf_counter()
                self._crash_loop_trips += 1
            state.next_attempt_at = time.perf_counter() + self._backoff(state)
            return
        state.respawns += 1
        state.awaiting_respawn = False
        state.next_attempt_at = None
        with self._lock:
            self._total_respawns += 1

    def _backoff(self, state: _SlotState) -> float:
        """Exponential backoff with deterministic per-slot jitter."""
        policy = self.policy
        exponent = max(state.consecutive_crashes - 1, 0)
        delay = min(
            policy.backoff_base * (policy.backoff_factor ** exponent),
            policy.backoff_max,
        )
        if policy.jitter > 0:
            delay *= 1.0 + policy.jitter * float(state.rng.random())
        return delay

    # -- introspection ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready supervisor state for ``serve-stats`` / health."""
        with self._lock:
            total = self._total_respawns
            corrupt_heals = self._corrupt_heals
        slots = {}
        for slot, state in sorted(self._slots.items()):
            slots[str(slot)] = {
                "breaker": state.breaker,
                "respawns": state.respawns,
                "consecutive_crashes": state.consecutive_crashes,
                "recent_deaths": len(state.death_times),
                "awaiting_respawn": state.awaiting_respawn,
            }
        return {
            "respawns": total,
            "crash_loop_trips": self._crash_loop_trips,
            "corrupt_heals": corrupt_heals,
            "slots": slots,
        }

    def crash_looping_slots(self) -> list:
        """Slots whose crash-loop breaker is currently open."""
        return [
            slot
            for slot, state in sorted(self._slots.items())
            if state.breaker == OPEN
        ]
