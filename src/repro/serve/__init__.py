"""High-throughput inference serving over the reproduced models.

Layers (each importable on its own):

* :mod:`repro.serve.batcher` — dynamic micro-batching scheduler
  (``max_batch`` / ``max_wait_us`` window, bounded queue, deadline
  shedding, graceful drain).
* :mod:`repro.serve.engine` — model runners + the routing
  :class:`~repro.serve.engine.InferenceServer` (per-model circuit
  breakers, health/readiness probes).
* :mod:`repro.serve.breaker` — the closed/open/half-open circuit
  breaker state machine.
* :mod:`repro.serve.workers` — sharded worker pool over zero-copy
  shared-memory weights (kill-tolerant, bounded retries, poison
  quarantine).
* :mod:`repro.serve.supervisor` — shard supervision: respawn of dead
  or wedged shards under a crash-loop breaker.
* :mod:`repro.serve.shm` — the shared-memory array bundle (also used
  by ``repro report --jobs``).
* :mod:`repro.serve.metrics` — queue / batch / latency / reliability
  accounting and the ``serve-stats`` / ``serve-health`` renderings.
* :mod:`repro.serve.loadgen` — closed/open-loop load generation, the
  ``repro loadtest`` driver, and SIGTERM/SIGINT graceful drain.
* :mod:`repro.serve.chaos` — the deterministic seeded chaos harness
  (``repro loadtest --chaos <scenario>``).

The load-bearing invariant, asserted across the test suite *and under
chaos*: serving is a *latency* transformation, never a *value* one —
every served label is bit-identical to the corresponding direct
``predict`` call, at any batch size, concurrency, or backend, and
faults may turn answers into typed errors but never into different
answers.
"""

from ..core.errors import (
    CircuitOpen,
    DeadlineExceeded,
    Overloaded,
    PoisonedRequest,
    ServingError,
    ShardCrashLoop,
)
from .batcher import BatchPolicy, MicroBatcher
from .breaker import BreakerPolicy, CircuitBreaker
from .chaos import (
    SCENARIOS,
    ChaosEvent,
    ChaosInterceptor,
    ChaosScenario,
    chaos_passed,
    get_scenario,
    run_chaos,
)
from .engine import ArrayRunner, InferenceServer, ModelRunner, SNNwtRunner, build_runners
from .loadgen import GracefulDrain, run_loadtest
from .metrics import (
    ServingMetrics,
    dump_stats,
    load_stats,
    render_health,
    render_stats,
)
from .shm import SharedArrayBundle
from .supervisor import ShardSupervisor, SupervisorPolicy
from .workers import ShardedPool

__all__ = [
    "ArrayRunner",
    "BatchPolicy",
    "BreakerPolicy",
    "ChaosEvent",
    "ChaosInterceptor",
    "ChaosScenario",
    "CircuitBreaker",
    "CircuitOpen",
    "DeadlineExceeded",
    "GracefulDrain",
    "InferenceServer",
    "MicroBatcher",
    "ModelRunner",
    "Overloaded",
    "PoisonedRequest",
    "SCENARIOS",
    "ServingError",
    "ServingMetrics",
    "SharedArrayBundle",
    "ShardCrashLoop",
    "ShardSupervisor",
    "ShardedPool",
    "SNNwtRunner",
    "SupervisorPolicy",
    "build_runners",
    "chaos_passed",
    "dump_stats",
    "get_scenario",
    "load_stats",
    "render_health",
    "render_stats",
    "run_chaos",
    "run_loadtest",
]
