"""High-throughput inference serving over the reproduced models.

Layers (each importable on its own):

* :mod:`repro.serve.batcher` — dynamic micro-batching scheduler
  (``max_batch`` / ``max_wait_us`` window, bounded queue, graceful
  drain).
* :mod:`repro.serve.engine` — model runners + the routing
  :class:`~repro.serve.engine.InferenceServer`.
* :mod:`repro.serve.workers` — sharded worker pool over zero-copy
  shared-memory weights (kill-tolerant).
* :mod:`repro.serve.shm` — the shared-memory array bundle (also used
  by ``repro report --jobs``).
* :mod:`repro.serve.metrics` — queue / batch / latency accounting and
  the ``serve-stats`` rendering.
* :mod:`repro.serve.loadgen` — closed/open-loop load generation and
  the ``repro loadtest`` driver.

The load-bearing invariant, asserted across the test suite: serving is
a *latency* transformation, never a *value* one — every served label
is bit-identical to the corresponding direct ``predict`` call, at any
batch size, concurrency, or backend.
"""

from ..core.errors import Overloaded, ServingError
from .batcher import BatchPolicy, MicroBatcher
from .engine import ArrayRunner, InferenceServer, ModelRunner, SNNwtRunner, build_runners
from .metrics import ServingMetrics, dump_stats, load_stats, render_stats
from .shm import SharedArrayBundle
from .workers import ShardedPool

__all__ = [
    "ArrayRunner",
    "BatchPolicy",
    "InferenceServer",
    "MicroBatcher",
    "ModelRunner",
    "Overloaded",
    "ServingError",
    "ServingMetrics",
    "SharedArrayBundle",
    "ShardedPool",
    "SNNwtRunner",
    "build_runners",
    "dump_stats",
    "load_stats",
    "render_stats",
]
