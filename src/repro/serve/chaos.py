"""Deterministic seeded chaos harness for the serving layer.

A :class:`ChaosScenario` is a declarative schedule of faults over one
load run — shard kills, alive-but-silent wedges, latency spikes and
transient-error bursts — expressed as *fractions of the run duration*
so the same scenario scales from a CI smoke run to a long soak.

Determinism contract:

* the fault **schedule** is fixed by the scenario (event times are
  fractions of the configured duration — no randomness at all);
* the **error burst** draws its per-batch failure lottery from a PR1
  :class:`~repro.faults.injector.FaultInjector` stream keyed by the
  run seed, so which batches fail is reproducible for a given seed;
* the **client request sequence** comes from per-client child RNGs
  (``child_rng(seed, "chaos-client", cid)``), the loadgen scheme.

Invariants the harness *asserts* (and reports):

* **zero lost requests** — every submitted request resolves with a
  result or a typed error; nothing is silently dropped;
* **zero duplicated responses** — each request resolves exactly once
  (duplicate *completions* inside the pool are counted no-ops and
  reported separately);
* **bit-identity** — every *successful* response equals the direct
  oracle prediction for its index, no matter what the chaos schedule
  did to the serving path.  Faults may turn answers into typed
  errors; they may never turn answers into *different answers*.

The chaos seams are intentionally narrow and explicit: the
:class:`ChaosInterceptor` plugs into
:class:`~repro.serve.engine.InferenceServer`'s ``interceptor=`` hook
(latency spikes sleep, error bursts raise, both ahead of the model
call), and shard kills / wedges go through the pool's
``chaos_hooks=True`` surface — no monkeypatching anywhere.

Learning-time chaos lives in :data:`LEARNING_SCENARIOS`: drift storms,
label-flip bursts and SRAM bit errors over the live continual learner
(:mod:`repro.serve.learner`), with the learning-time invariant set —
zero lost / duplicated requests across hot-swaps, rollback restores
the baseline within one window, untouched tenants stay bit-identical.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import (
    CircuitOpen,
    DeadlineExceeded,
    Overloaded,
    PoisonedRequest,
    ServingError,
)
from ..core.hostinfo import host_metadata
from ..core.rng import child_rng
from ..faults.injector import FaultInjector
from ..faults.models import FaultConfig
from .batcher import BatchPolicy
from .engine import InferenceServer
from .supervisor import SupervisorPolicy

#: Event kinds a scenario may schedule.
KILL, WEDGE, LATENCY_SPIKE, ERROR_BURST, CORRUPT_WEIGHTS = (
    "kill_shard",
    "wedge_shard",
    "latency_spike",
    "error_burst",
    "corrupt_weights",
)

#: RNG stream the error burst's failure lottery draws from (via the
#: PR1 fault injector, so bursts compose with its determinism rules).
ERROR_STREAM = "chaos-error-burst"


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault.

    Attributes:
        kind: one of ``kill_shard`` / ``wedge_shard`` /
            ``latency_spike`` / ``error_burst``.
        at: event time as a fraction of the run duration in [0, 1).
        target: shard slot for ``kill_shard`` / ``wedge_shard``.
        duration: window length as a duration fraction
            (``latency_spike`` / ``error_burst``), or the wedge sleep
            for ``wedge_shard`` as a duration fraction.
        magnitude: latency-spike sleep in **milliseconds**, the
            error-burst per-batch failure probability in [0, 1], or
            the ``corrupt_weights`` flip count (whole bits, >= 1).
    """

    kind: str
    at: float
    target: int = 0
    duration: float = 0.0
    magnitude: float = 0.0

    def validate(self) -> "ChaosEvent":
        if self.kind not in (
            KILL, WEDGE, LATENCY_SPIKE, ERROR_BURST, CORRUPT_WEIGHTS
        ):
            raise ServingError(f"unknown chaos event kind {self.kind!r}")
        if not 0.0 <= self.at < 1.0:
            raise ServingError(f"event time must be in [0, 1), got {self.at}")
        if self.duration < 0.0:
            raise ServingError(f"duration must be >= 0, got {self.duration}")
        if self.kind == ERROR_BURST and not 0.0 <= self.magnitude <= 1.0:
            raise ServingError(
                f"error-burst magnitude is a probability, got {self.magnitude}"
            )
        if self.kind in (KILL, WEDGE) and self.target < 0:
            raise ServingError(f"target must be >= 0, got {self.target}")
        if self.kind == CORRUPT_WEIGHTS and self.magnitude < 1:
            raise ServingError(
                f"corrupt_weights magnitude is the flip count (>= 1), "
                f"got {self.magnitude}"
            )
        return self


@dataclass(frozen=True)
class ChaosScenario:
    """A named, fully deterministic chaos schedule.

    Attributes:
        scenario_id: the ``--chaos`` identifier.
        description: one-line human summary.
        jobs: shard processes in the pool.
        duration_seconds: load window length.
        concurrency: closed-loop client threads.
        deadline_ms: per-request deadline handed to every submission
            (``None`` disables deadline propagation).
        events: the fault schedule.
        wedge_timeout: supervisor silence threshold, seconds (small so
            wedge scenarios recover inside the run).
        max_task_retries: pool quarantine threshold.
        scrub_period: background integrity-scrub period, seconds
            (``None`` leaves the scrubber off — the default for
            scenarios that never corrupt shared memory).
        audit_rate: audit-lane sampling rate handed to the server.
    """

    scenario_id: str
    description: str
    jobs: int = 2
    duration_seconds: float = 4.0
    concurrency: int = 4
    deadline_ms: Optional[float] = None
    events: Tuple[ChaosEvent, ...] = field(default_factory=tuple)
    wedge_timeout: float = 1.0
    max_task_retries: int = 2
    scrub_period: Optional[float] = None
    audit_rate: float = 0.0

    def validate(self) -> "ChaosScenario":
        if self.jobs < 1:
            raise ServingError(f"jobs must be >= 1, got {self.jobs}")
        if self.scrub_period is not None and self.scrub_period <= 0:
            raise ServingError(
                f"scrub_period must be positive or None, got {self.scrub_period}"
            )
        if not 0.0 <= self.audit_rate <= 1.0:
            raise ServingError(
                f"audit_rate must be in [0, 1], got {self.audit_rate}"
            )
        if self.duration_seconds <= 0:
            raise ServingError(
                f"duration_seconds must be positive, got {self.duration_seconds}"
            )
        if self.concurrency < 1:
            raise ServingError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        for event in self.events:
            event.validate()
            if event.kind in (KILL, WEDGE) and event.target >= self.jobs:
                raise ServingError(
                    f"event targets shard {event.target} but the scenario "
                    f"runs {self.jobs} shard(s)"
                )
        return self


#: The built-in scenario registry (``repro loadtest --chaos <id>``).
SCENARIOS: Dict[str, ChaosScenario] = {
    scenario.scenario_id: scenario.validate()
    for scenario in (
        ChaosScenario(
            scenario_id="smoke",
            description=(
                "CI smoke: kill one of two shards at 25%, 25ms latency "
                "spike over the middle fifth; supervisor must respawn"
            ),
            jobs=2,
            duration_seconds=4.0,
            concurrency=4,
            events=(
                ChaosEvent(kind=KILL, at=0.25, target=0),
                ChaosEvent(
                    kind=LATENCY_SPIKE, at=0.5, duration=0.2, magnitude=25.0
                ),
            ),
        ),
        ChaosScenario(
            scenario_id="kill-spike",
            description=(
                "acceptance: kill one of four shards at 25%, 50ms latency "
                "spike at 50%; every answered request bit-identical"
            ),
            jobs=4,
            duration_seconds=8.0,
            concurrency=8,
            events=(
                ChaosEvent(kind=KILL, at=0.25, target=1),
                ChaosEvent(
                    kind=LATENCY_SPIKE, at=0.5, duration=0.25, magnitude=50.0
                ),
            ),
        ),
        ChaosScenario(
            scenario_id="wedge",
            description=(
                "wedge one shard (alive but silent) at 25%; the "
                "supervisor's wedge detector must kill and respawn it"
            ),
            jobs=2,
            duration_seconds=6.0,
            concurrency=4,
            wedge_timeout=0.8,
            events=(
                ChaosEvent(kind=WEDGE, at=0.25, target=0, duration=0.5),
            ),
        ),
        ChaosScenario(
            scenario_id="error-burst",
            description=(
                "transient-error burst (40% of batches fail) over the "
                "middle third; breakers may trip, answers never change"
            ),
            jobs=2,
            duration_seconds=5.0,
            concurrency=4,
            events=(
                ChaosEvent(
                    kind=ERROR_BURST, at=0.33, duration=0.34, magnitude=0.4
                ),
            ),
        ),
        ChaosScenario(
            scenario_id="weight-corruption",
            description=(
                "flip 8 seeded bits in the live shared weights at 25%; "
                "the scrubber must detect within one period, restore "
                "the segment bit-identically from the verified "
                "snapshot, and serve nothing corrupt after detection"
            ),
            jobs=2,
            duration_seconds=4.0,
            concurrency=4,
            scrub_period=0.4,
            audit_rate=0.05,
            events=(
                ChaosEvent(kind=CORRUPT_WEIGHTS, at=0.25, magnitude=8.0),
            ),
        ),
        ChaosScenario(
            scenario_id="deadline-storm",
            description=(
                "tight 40ms deadlines under a 60ms latency spike: doomed "
                "work must shed with DeadlineExceeded, never hang"
            ),
            jobs=2,
            duration_seconds=5.0,
            concurrency=6,
            deadline_ms=40.0,
            events=(
                ChaosEvent(
                    kind=LATENCY_SPIKE, at=0.4, duration=0.3, magnitude=60.0
                ),
            ),
        ),
    )
}


def get_scenario(scenario_id: str) -> ChaosScenario:
    """Look up a built-in scenario; :class:`ServingError` on unknown."""
    scenario = SCENARIOS.get(scenario_id)
    if scenario is None:
        raise ServingError(
            f"unknown chaos scenario {scenario_id!r}; "
            f"pick one of {sorted(SCENARIOS)}"
        )
    return scenario


def scale_scenario(
    scenario: ChaosScenario,
    duration_seconds: Optional[float] = None,
    concurrency: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    max_task_retries: Optional[int] = None,
) -> ChaosScenario:
    """Override run-shape knobs without touching the fault schedule."""
    changes: Dict[str, Any] = {}
    if duration_seconds is not None:
        changes["duration_seconds"] = duration_seconds
    if concurrency is not None:
        changes["concurrency"] = concurrency
    if deadline_ms is not None:
        changes["deadline_ms"] = deadline_ms
    if max_task_retries is not None:
        changes["max_task_retries"] = max_task_retries
    return replace(scenario, **changes).validate() if changes else scenario


class ChaosInterceptor:
    """The server-side chaos seam: latency spikes + error bursts.

    Armed with the run's start time, it turns the scenario's
    fractional windows into absolute ``perf_counter`` intervals.  On
    every coalesced batch it (a) sleeps ``magnitude`` ms while inside
    a latency-spike window and (b) raises a transient
    :class:`ServingError` with probability ``magnitude`` while inside
    an error-burst window — the failure lottery drawn from a PR1
    :class:`FaultInjector` stream so a given seed fails the same batch
    sequence every run.
    """

    def __init__(self, scenario: ChaosScenario, seed: int = 0):
        self.scenario = scenario
        self.injector = FaultInjector(FaultConfig(seed=seed))
        self._armed_at: Optional[float] = None
        self._windows: List[Tuple[float, float, ChaosEvent]] = []
        self._lock = threading.Lock()
        self.injected_errors = 0
        self.spiked_batches = 0

    def arm(self, start: float) -> None:
        """Fix the run's absolute timeline (called once at load start)."""
        duration = self.scenario.duration_seconds
        windows = []
        for event in self.scenario.events:
            if event.kind not in (LATENCY_SPIKE, ERROR_BURST):
                continue
            begin = start + event.at * duration
            end = begin + event.duration * duration
            windows.append((begin, end, event))
        with self._lock:
            self._armed_at = start
            self._windows = windows

    def before_batch(self, model: str, payloads: Sequence[Any]) -> None:
        with self._lock:
            if self._armed_at is None:
                return
            windows = list(self._windows)
        now = time.perf_counter()
        for begin, end, event in windows:
            if not begin <= now < end:
                continue
            if event.kind == LATENCY_SPIKE:
                with self._lock:
                    self.spiked_batches += 1
                time.sleep(event.magnitude * 1e-3)
            elif event.kind == ERROR_BURST:
                # Streaming draw: deterministic per-batch lottery.
                draw = float(self.injector.stream(ERROR_STREAM).random())
                if draw < event.magnitude:
                    with self._lock:
                        self.injected_errors += 1
                    raise ServingError(
                        f"chaos: injected transient error for model "
                        f"{model!r} ({len(payloads)} request(s) in batch)"
                    )

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "injected_errors": self.injected_errors,
                "spiked_batches": self.spiked_batches,
            }


class _Ledger:
    """Per-request accounting: every submit must resolve exactly once."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.resolutions = 0
        self.double_resolutions = 0
        self.ok = 0
        self.bit_mismatches = 0
        self.mismatch_times: List[float] = []
        self.errors: Dict[str, int] = {}

    def open_request(self) -> None:
        with self._lock:
            self.submitted += 1

    def resolve_ok(self, matched: bool, first: bool) -> None:
        with self._lock:
            self._count_resolution(first)
            self.ok += 1
            if not matched:
                self.bit_mismatches += 1
                # Absolute timestamp: corruption invariants check that
                # no mismatch postdates the scrubber's detection.
                self.mismatch_times.append(time.perf_counter())

    def resolve_error(self, error: BaseException, first: bool) -> None:
        key = type(error).__name__
        with self._lock:
            self._count_resolution(first)
            self.errors[key] = self.errors.get(key, 0) + 1

    def _count_resolution(self, first: bool) -> None:
        if first:
            self.resolutions += 1
        else:
            self.double_resolutions += 1

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            lost = self.submitted - self.resolutions
            return {
                "submitted": self.submitted,
                "ok": self.ok,
                "errors": dict(sorted(self.errors.items())),
                "lost": lost,
                "duplicates": self.double_resolutions,
                "bit_mismatches": self.bit_mismatches,
            }


def _chaos_clients(
    server: InferenceServer,
    model: str,
    oracle: np.ndarray,
    scenario: ChaosScenario,
    seed: int,
    stop_event: threading.Event,
    timeout: float = 60.0,
) -> _Ledger:
    """Closed-loop clients with exhaustive per-request accounting."""
    ledger = _Ledger()
    n_indices = len(oracle)
    deadline_ms = scenario.deadline_ms
    stop_at = time.perf_counter() + scenario.duration_seconds

    def client(client_id: int) -> None:
        rng = child_rng(seed, "chaos-client", client_id)
        while time.perf_counter() < stop_at and not stop_event.is_set():
            index = int(rng.integers(n_indices))
            ledger.open_request()
            resolved = False  # guards against double accounting
            try:
                future = server.submit(
                    model, index=index, deadline_ms=deadline_ms
                )
            except Exception as exc:  # noqa: BLE001 — typed shed at submit
                ledger.resolve_error(exc, first=not resolved)
                continue
            try:
                label = int(future.result(timeout))
            except Exception as exc:  # noqa: BLE001 — typed or injected
                ledger.resolve_error(exc, first=not resolved)
                continue
            ledger.resolve_ok(
                matched=label == int(oracle[index]), first=not resolved
            )

    threads = [
        threading.Thread(
            target=client, args=(cid,), name=f"repro-chaos-client-{cid}"
        )
        for cid in range(scenario.concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return ledger


def _run_schedule(
    pool,
    scenario: ChaosScenario,
    start: float,
    stop_event: threading.Event,
    log: List[Dict[str, Any]],
    log_lock: threading.Lock,
    seed: int = 0,
) -> None:
    """Fire the scenario's pool-side events at their absolute times."""
    duration = scenario.duration_seconds
    events = sorted(
        (e for e in scenario.events if e.kind in (KILL, WEDGE, CORRUPT_WEIGHTS)),
        key=lambda e: e.at,
    )
    for event in events:
        fire_at = start + event.at * duration
        while True:
            remaining = fire_at - time.perf_counter()
            if remaining <= 0:
                break
            if stop_event.wait(min(remaining, 0.05)):
                return
        entry = {
            "kind": event.kind,
            "target": event.target,
            "at_fraction": event.at,
            "fired_at": round(time.perf_counter() - start, 4),
        }
        try:
            if event.kind == KILL:
                pool.kill_shard(event.target)
            elif event.kind == WEDGE:
                pool.wedge_shard(
                    event.target, event.duration * duration
                )
            else:
                entry.update(
                    pool.chaos_corrupt(
                        seed=seed, n_flips=int(event.magnitude)
                    )
                )
        except ServingError as exc:
            entry["error"] = repr(exc)
        with log_lock:
            log.append(entry)


def _await_recovery(pool, deadline_seconds: float = 15.0) -> bool:
    """Wait for the supervisor to restore full shard capacity."""
    stop_at = time.perf_counter() + deadline_seconds
    while time.perf_counter() < stop_at:
        if len(pool.alive_shards()) == pool.jobs:
            return True
        time.sleep(0.05)
    return len(pool.alive_shards()) == pool.jobs


def run_chaos(
    scenario: str | ChaosScenario = "smoke",
    models: Sequence[str] = ("mlp",),
    dataset: str = "digits",
    seed: int = 0,
    max_batch: int = 8,
    max_wait_us: float = 1000.0,
    max_queue: int = 1024,
    duration_seconds: Optional[float] = None,
    concurrency: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    max_task_retries: Optional[int] = None,
    recovery_timeout: float = 15.0,
) -> Dict[str, Any]:
    """Run one chaos scenario end to end; returns the stats payload.

    Trains (cache-warm) the requested models, serves them through a
    supervised, chaos-hooked :class:`~repro.serve.workers.ShardedPool`,
    fires the scenario's schedule while closed-loop clients drive load,
    then checks the three invariants (zero lost, zero duplicated,
    zero bit mismatches among successes) and supervisor recovery.
    """
    from .loadgen import build_models, direct_predictions

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    scenario = scale_scenario(
        scenario.validate(),
        duration_seconds=duration_seconds,
        concurrency=concurrency,
        deadline_ms=deadline_ms,
        max_task_retries=max_task_retries,
    )
    names = list(dict.fromkeys(models))
    built = build_models(names, dataset=dataset)
    test_images = np.asarray(built["test"].images)
    oracles = {
        name: np.asarray(
            direct_predictions(
                built["models"][name],
                test_images,
                list(range(len(test_images))),
                seed=seed,
            )
        )
        for name in names
    }
    policy = BatchPolicy(
        max_batch=max_batch, max_wait_us=max_wait_us, max_queue=max_queue
    )
    supervisor = SupervisorPolicy(
        poll_interval=0.05,
        wedge_timeout=scenario.wedge_timeout,
        backoff_base=0.05,
        backoff_max=0.5,
        cooldown=1.0,
        ready_timeout=60.0,
        seed=seed,
    )
    from .workers import ShardedPool

    interceptor = ChaosInterceptor(scenario, seed=seed)
    pool = ShardedPool(
        built["models"],
        jobs=scenario.jobs,
        images=test_images,
        seed=seed,
        max_task_retries=scenario.max_task_retries,
        supervisor=supervisor,
        chaos_hooks=True,
        scrub_period=scenario.scrub_period,
    )
    server = InferenceServer(
        pool=pool,
        policy=policy,
        images=test_images,
        interceptor=interceptor,
        audit_rate=scenario.audit_rate,
        audit_seed=seed,
    )
    schedule_log: List[Dict[str, Any]] = []
    log_lock = threading.Lock()
    stop_event = threading.Event()
    payload: Dict[str, Any] = {
        "loadtest": {
            "mode": "chaos",
            "dataset": dataset,
            "models": names,
            "jobs": scenario.jobs,
            "duration_seconds": scenario.duration_seconds,
            "concurrency": scenario.concurrency,
            "seed": seed,
            "n_test_images": int(len(test_images)),
        },
        "host": host_metadata(),
        "models": {},
    }
    try:
        ledgers: Dict[str, _Ledger] = {}
        for name in names:
            for metrics in server.metrics.values():
                metrics.reset()
            start = time.perf_counter()
            interceptor.arm(start)
            stop_event.clear()
            schedule = threading.Thread(
                target=_run_schedule,
                args=(
                    pool, scenario, start, stop_event, schedule_log,
                    log_lock, seed,
                ),
                name="repro-chaos-schedule",
                daemon=True,
            )
            schedule.start()
            ledgers[name] = _chaos_clients(
                server, name, oracles[name], scenario, seed, stop_event
            )
            stop_event.set()
            schedule.join(timeout=5.0)
            payload["models"][name] = {
                "model": name,
                **server.metrics[name].snapshot(),
                "breaker": server.breakers[name].snapshot(),
                "client": ledgers[name].summary(),
            }
        recovered = _await_recovery(pool, recovery_timeout)
        outcomes: Dict[str, int] = {"ok": 0}
        lost = duplicates = mismatches = 0
        for ledger in ledgers.values():
            summary = ledger.summary()
            outcomes["ok"] += summary["ok"]
            for key, value in summary["errors"].items():
                outcomes[key] = outcomes.get(key, 0) + value
            lost += summary["lost"]
            duplicates += summary["duplicates"]
            mismatches += summary["bit_mismatches"]
        payload["pool"] = pool.stats()
        invariants: Dict[str, Any] = {
            "no_lost_requests": lost == 0,
            "no_duplicate_responses": duplicates == 0,
            "bit_identical_successes": mismatches == 0,
            "supervisor_recovered": recovered,
        }
        has_corruption = any(
            e.kind == CORRUPT_WEIGHTS for e in scenario.events
        )
        if has_corruption:
            # Final sweep: anything still corrupt is restored (and
            # counted) before the bit-identity check below.
            leftovers = pool.scrub_now()
            integrity = pool.integrity_stats()
            last = integrity.get("last_corruption") or {}
            detected_at = last.get("detected_at")
            fired = [
                e for e in schedule_log
                if e.get("kind") == CORRUPT_WEIGHTS and "injected_at" in e
            ]
            injected_at = fired[0]["injected_at"] if fired else None
            period = scenario.scrub_period or 0.0
            # A mismatch served *before* the scrubber could notice is
            # the attack window; one served after detection is a
            # defense failure — the epoch gate must have discarded it.
            late_mismatches = [
                t
                for ledger in ledgers.values()
                for t in ledger.mismatch_times
                if detected_at is None or t > detected_at
            ]
            invariants.update(
                {
                    "corruption_detected": integrity["scrub_failures"] >= 1
                    and detected_at is not None,
                    "detected_within_scrub_period": (
                        detected_at is not None
                        and injected_at is not None
                        # 1s of slack for a loaded CI scheduler.
                        and detected_at - injected_at <= period + 1.0
                    ),
                    "no_corrupt_responses_after_detection": not late_mismatches,
                    "restored_bit_identical": (
                        not leftovers
                        and integrity["restores"] >= 1
                        and not integrity["unrecoverable"]
                    ),
                    # Mismatches inside the pre-detection window are the
                    # injected fault doing its job, not a serving bug.
                    "bit_identical_successes": not late_mismatches,
                }
            )
        payload["chaos"] = {
            "scenario": scenario.scenario_id,
            "description": scenario.description,
            "seed": seed,
            "deadline_ms": scenario.deadline_ms,
            "events": sorted(
                schedule_log, key=lambda e: e.get("fired_at", 0.0)
            ),
            "interceptor": interceptor.counters(),
            "outcomes": outcomes,
            "lost": lost,
            "duplicates": duplicates,
            "bit_mismatches": mismatches,
            "recovered": recovered,
            "invariants": invariants,
        }
        payload["integrity"] = server.integrity()
        payload["health"] = server.health()
    finally:
        stop_event.set()
        server.close()
    return payload


def chaos_passed(payload: Dict[str, Any]) -> bool:
    """True when every invariant of a chaos payload holds."""
    invariants = payload.get("chaos", {}).get("invariants", {})
    return bool(invariants) and all(invariants.values())


# ---------------------------------------------------------------------------
# Learning-time chaos: scenarios over the live continual learner
# ---------------------------------------------------------------------------

from .learner import LearnerSLO, LearningScenario  # noqa: E402

#: Learning-time scenario registry (``repro learn-serve --chaos <id>``).
#: Kept separate from :data:`SCENARIOS` — these drive
#: :func:`repro.serve.learner.run_learn_serve`, not :func:`run_chaos`,
#: and their invariants are the learning-time set (zero lost/duplicate
#: requests across hot-swaps, rollback restores the baseline,
#: untouched tenants stay bit-identical).
LEARNING_SCENARIOS: Dict[str, LearningScenario] = {
    scenario.scenario_id: scenario.validate()
    for scenario in (
        LearningScenario(
            scenario_id="steady",
            description=(
                "clean stream: windows learn, gate, promote; at least "
                "one guarded hot-swap with zero dropped requests"
            ),
            windows=4,
            window_size=32,
            slo=LearnerSLO(
                gate_retention=0.6, gate_tolerance=0.05, rollback_retention=0.6
            ),
            min_hot_swaps=1,
        ),
        LearningScenario(
            scenario_id="drift-storm",
            description=(
                "covariate shift on the middle windows: lenient SLOs "
                "keep promotions flowing — >= 3 hot-swaps, zero lost "
                "or duplicated requests across every swap"
            ),
            windows=6,
            window_size=32,
            drift_windows=(2, 3, 4),
            drift_magnitude=0.3,
            slo=LearnerSLO(
                gate_retention=0.4, gate_tolerance=0.1, rollback_retention=0.4
            ),
            min_hot_swaps=3,
        ),
        LearningScenario(
            scenario_id="label-flip-burst",
            description=(
                "label poisoning on window 1: the shadow gate (flipped "
                "labels on both sides) waves the bad candidate through, "
                "the fixed-probe guard catches it — automatic rollback "
                "restores the baseline within the same window"
            ),
            windows=4,
            window_size=32,
            flip_windows=(1,),
            slo=LearnerSLO(
                gate_retention=0.6, gate_tolerance=0.05, rollback_retention=0.8
            ),
            min_hot_swaps=2,
            expect_rollback=True,
        ),
        LearningScenario(
            scenario_id="sram-ber-learning",
            description=(
                "SRAM bit errors hit candidate weights between STDP "
                "windows: gate and guard contain the damage; requests "
                "are never lost and untouched tenants never change"
            ),
            windows=4,
            window_size=32,
            ber_windows=(1, 2),
            weight_ber=0.02,
            slo=LearnerSLO(
                gate_retention=0.6, gate_tolerance=0.05, rollback_retention=0.6
            ),
        ),
    )
}


def get_learning_scenario(scenario_id: str) -> LearningScenario:
    """Look up a learning scenario; :class:`ServingError` on unknown."""
    scenario = LEARNING_SCENARIOS.get(scenario_id)
    if scenario is None:
        raise ServingError(
            f"unknown learning scenario {scenario_id!r}; "
            f"pick one of {sorted(LEARNING_SCENARIOS)}"
        )
    return scenario


def run_learning_chaos(
    scenario: "str | LearningScenario" = "steady", **kwargs: Any
) -> Dict[str, Any]:
    """Run one learning-time scenario (see :func:`run_learn_serve`)."""
    from .learner import run_learn_serve

    if isinstance(scenario, str):
        scenario = get_learning_scenario(scenario)
    return run_learn_serve(scenario, **kwargs)
