"""Per-model circuit breakers for the inference serving layer.

A :class:`CircuitBreaker` guards one served model with the classic
three-state machine:

* **closed** — requests flow; outcomes are recorded into a sliding
  count window.  When, with at least ``min_volume`` observations, the
  window's error rate reaches ``error_threshold`` *or* its mean
  latency reaches ``latency_threshold_ms``, the breaker trips open.
* **open** — requests are rejected immediately with
  :class:`~repro.core.errors.CircuitOpen` (fail fast; no queueing onto
  a broken path).  After ``reset_timeout`` seconds the breaker moves
  to half-open.
* **half-open** — up to ``half_open_max`` probe requests are admitted.
  ``half_open_successes`` consecutive probe successes close the
  breaker (window cleared — old failures don't immediately re-trip
  it); any probe failure reopens it and restarts the cooldown.

Everything is deterministic given the injected ``clock`` (tests drive
a fake clock; production uses ``time.perf_counter``), and every
transition is recorded with its wall-clock time and reason so
``serve-stats`` / ``serve-health`` can render the breaker's history.

Thread safety: all public methods take the internal lock; the breaker
is shared between many client threads and the batcher's scheduler
thread.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..core.errors import ServingError

#: The three breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip / recovery knobs of one circuit breaker.

    Attributes:
        error_threshold: error-rate in [0, 1] over the sliding window
            at (or above) which the breaker trips.
        latency_threshold_ms: mean request latency over the window at
            (or above) which the breaker trips; ``None`` disables the
            latency trigger.
        window: number of most-recent request outcomes kept.
        min_volume: minimum outcomes in the window before either
            trigger is evaluated (avoid tripping on one cold failure).
        reset_timeout: seconds an open breaker waits before admitting
            half-open probes.
        half_open_max: probe requests admitted while half-open.
        half_open_successes: consecutive probe successes required to
            close again.
    """

    error_threshold: float = 0.5
    latency_threshold_ms: Optional[float] = None
    window: int = 32
    min_volume: int = 8
    reset_timeout: float = 5.0
    half_open_max: int = 2
    half_open_successes: int = 2

    def validate(self) -> "BreakerPolicy":
        if not 0.0 < self.error_threshold <= 1.0:
            raise ServingError(
                f"error_threshold must be in (0, 1], got {self.error_threshold}"
            )
        if self.latency_threshold_ms is not None and self.latency_threshold_ms <= 0:
            raise ServingError(
                f"latency_threshold_ms must be positive, got "
                f"{self.latency_threshold_ms}"
            )
        if self.window < 1:
            raise ServingError(f"window must be >= 1, got {self.window}")
        if self.min_volume < 1:
            raise ServingError(f"min_volume must be >= 1, got {self.min_volume}")
        if self.reset_timeout < 0:
            raise ServingError(
                f"reset_timeout must be >= 0, got {self.reset_timeout}"
            )
        if self.half_open_max < 1:
            raise ServingError(
                f"half_open_max must be >= 1, got {self.half_open_max}"
            )
        if self.half_open_successes < 1:
            raise ServingError(
                "half_open_successes must be >= 1, got "
                f"{self.half_open_successes}"
            )
        return self


class CircuitBreaker:
    """Closed / open / half-open breaker over a sliding outcome window."""

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        name: str = "model",
        clock=time.perf_counter,
    ):
        self.policy = (policy or BreakerPolicy()).validate()
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        #: (ok: bool, latency_ms: float) per recorded outcome.
        self._window: Deque[Tuple[bool, float]] = deque(
            maxlen=self.policy.window
        )
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._rejections = 0
        self._trips = 0
        #: (time, from_state, to_state, reason) transition log.
        self._transitions: List[Tuple[float, str, str, str]] = []

    # -- state machine ---------------------------------------------------

    def _transition_locked(self, to_state: str, reason: str) -> None:
        if to_state == self._state:
            return
        self._transitions.append((self._clock(), self._state, to_state, reason))
        if to_state == OPEN:
            self._trips += 1
            self._opened_at = self._clock()
        if to_state == HALF_OPEN:
            self._probes_in_flight = 0
            self._probe_successes = 0
        if to_state == CLOSED:
            self._window.clear()
            self._opened_at = None
        self._state = to_state

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.policy.reset_timeout
        ):
            self._transition_locked(HALF_OPEN, "reset timeout elapsed")

    def _evaluate_locked(self) -> None:
        """Closed-state trigger check over the sliding window."""
        if self._state != CLOSED or len(self._window) < self.policy.min_volume:
            return
        outcomes = list(self._window)
        errors = sum(1 for ok, _ in outcomes if not ok)
        error_rate = errors / len(outcomes)
        if error_rate >= self.policy.error_threshold:
            self._transition_locked(
                OPEN,
                f"error rate {error_rate:.2f} >= "
                f"{self.policy.error_threshold:.2f} over {len(outcomes)}",
            )
            return
        if self.policy.latency_threshold_ms is not None:
            mean_ms = sum(lat for _, lat in outcomes) / len(outcomes)
            if mean_ms >= self.policy.latency_threshold_ms:
                self._transition_locked(
                    OPEN,
                    f"mean latency {mean_ms:.1f}ms >= "
                    f"{self.policy.latency_threshold_ms:.1f}ms "
                    f"over {len(outcomes)}",
                )

    # -- request path ----------------------------------------------------

    def allow(self) -> bool:
        """Admission check; False means reject with ``CircuitOpen``.

        Half-open admits up to ``half_open_max`` in-flight probes; the
        caller must report the probe's outcome via :meth:`record_success`
        / :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.policy.half_open_max:
                    self._probes_in_flight += 1
                    return True
                self._rejections += 1
                return False
            self._rejections += 1
            return False

    def record_success(self, latency_seconds: float = 0.0) -> None:
        with self._lock:
            latency_ms = float(latency_seconds) * 1e3
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(self._probes_in_flight - 1, 0)
                self._probe_successes += 1
                if self._probe_successes >= self.policy.half_open_successes:
                    self._transition_locked(
                        CLOSED,
                        f"{self._probe_successes} probe successes",
                    )
                return
            self._window.append((True, latency_ms))
            self._evaluate_locked()

    def record_failure(self, latency_seconds: float = 0.0) -> None:
        with self._lock:
            latency_ms = float(latency_seconds) * 1e3
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(self._probes_in_flight - 1, 0)
                self._transition_locked(OPEN, "probe request failed")
                return
            self._window.append((False, latency_ms))
            self._evaluate_locked()

    def cancel(self) -> None:
        """An admitted request was shed before reaching the model.

        Undoes the half-open probe reservation made by :meth:`allow`
        without recording an outcome (sheds say nothing about the
        model path's health).
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(self._probes_in_flight - 1, 0)

    # -- introspection ---------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def force_open(self, reason: str = "forced") -> None:
        """Trip the breaker manually (operational kill switch / tests)."""
        with self._lock:
            self._transition_locked(OPEN, reason)

    def force_close(self, reason: str = "forced") -> None:
        with self._lock:
            self._transition_locked(CLOSED, reason)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready summary for ``serve-stats`` / ``serve-health``."""
        with self._lock:
            self._maybe_half_open_locked()
            outcomes = list(self._window)
            errors = sum(1 for ok, _ in outcomes if not ok)
            return {
                "state": self._state,
                "trips": self._trips,
                "rejections": self._rejections,
                "window_size": len(outcomes),
                "window_errors": errors,
                "window_error_rate": (
                    round(errors / len(outcomes), 4) if outcomes else 0.0
                ),
                "transitions": [
                    {
                        "at": round(at, 6),
                        "from": from_state,
                        "to": to_state,
                        "reason": reason,
                    }
                    for at, from_state, to_state, reason in self._transitions
                ],
            }
