"""IR-driven cycle-accurate pricing of sampled design points.

The folded cycle-accurate simulators (:mod:`repro.hardware.cyclesim`)
walk one image at a time, which priced a single design point honestly
but made cycle-accurate *sweep* numbers unaffordable.  Two clean-path
facts make a fast path possible without losing bit-accuracy:

* **Labels are fold-invariant.**  A clean folded datapath computes the
  same arithmetic at every ``ni`` (integer accumulation is
  associative; the timed SNN's behavioural simulation never consults
  ``ni``), so one label pass per *family* covers every sampled fold
  factor and node.
* **Cycles are closed-form.**  Every clean per-image trace is the
  constant the simulator's ``cycles_per_image()`` formula gives —
  Table 7's expressions — so per-point cycle counts are arithmetic,
  not simulation.

The label pass itself is IR-driven where a plan expresses the
datapath exactly: the quantized MLP reuses the standard ``mlp-q``
lowering (the clean folded pipeline *is* ``QuantizedMLP.predict``),
the no-time SNN lowers to a small counts->integer-GEMV->argmax plan
over the simulator's rounded weight codes, and the timed SNN — whose
hardware LFSR stream is inherently sequential — runs its behavioural
simulator once per family.

:func:`sample_with_cyclesim` is the sweep hook
(:func:`repro.hardware.sweep.sample_with_cyclesim` re-exports it):
given an analytic :class:`~repro.hardware.sweep.SweepResult` and
trained models, it samples matching design points and attaches
cycle-accurate cycles / latency / accuracy to each.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..core.errors import HardwareModelError
from . import ops
from .compile import _Builder, compile_model
from .execute import run_plan
from .ops import CompiledPlan

#: Sweep families this module can price (``SNN-online`` has no
#: cycle-accurate simulator; analytic numbers stand alone there).
CYCLESIM_FAMILIES = ("MLP", "SNNwot", "SNNwt")


def _lower_snnwot_codes(model) -> CompiledPlan:
    """The no-time SNN's *hardware* readout as an IR plan.

    Unlike the software ``snnwot`` lowering (float weights), the
    folded datapath accumulates the rounded int64 weight codes — the
    exact clean-path arithmetic of
    :class:`~repro.hardware.cyclesim.FoldedSNNwotSimulator`.  Counts
    and codes are small integers, so the float64 GEMV is exact and the
    argmax matches the integer accumulate bit-for-bit.
    """
    config = model.network.config
    b = _Builder("snnwot-codes")
    b.buffer("x", "input")
    b.emit(ops.LOAD_V, "x", transform="raw")
    b.const("weight_codes", np.round(model.weights).astype(np.int64))
    b.const("neuron_labels", np.asarray(model.network.neuron_labels))
    c = b.buffer("c", "temp")
    b.emit(
        ops.COUNTS, c, ("x",),
        duration=float(config.t_period),
        max_rate_interval=float(config.min_spike_interval),
    )
    p = b.buffer("p", "temp")
    b.emit(ops.GEMV, p, (c, "weight_codes"), cast="int64")
    b.buffer("winner", "temp", "int64")
    b.emit(ops.THRESH, "winner", ("p",))
    b.buffer("y", "temp", "int64")
    b.emit(ops.TAKE, "y", ("winner", "neuron_labels"))
    b.store("labels", "y")
    return b.finish()


def cycle_plan(family: str, model) -> Optional[CompiledPlan]:
    """The IR plan of one family's clean folded readout.

    ``None`` for the timed SNN: its hardware LFSR stream is stateful
    across images, so the label pass runs the behavioural simulator
    (once per family) instead of a plan.
    """
    if family == "MLP":
        return compile_model(model, kind="mlp-q")
    if family == "SNNwot":
        return _lower_snnwot_codes(model)
    if family == "SNNwt":
        return None
    raise HardwareModelError(
        f"no cycle-accurate path for family {family!r}; "
        f"known: {', '.join(CYCLESIM_FAMILIES)}"
    )


def family_labels(
    family: str, model, images: np.ndarray, seed: int = 1
) -> np.ndarray:
    """One fold-invariant label pass for a family's trained model."""
    images = np.atleast_2d(np.asarray(images))
    plan = cycle_plan(family, model)
    if plan is not None:
        return run_plan(plan, images)
    from ..hardware.cyclesim import FoldedSNNwtSimulator

    # ni only shapes the reported cycle count, never the behaviour;
    # any legal fold factor yields the same label sequence.
    return FoldedSNNwtSimulator(model, ni=1, seed=seed).predict(images)


def closed_form_cycles(family: str, model, ni: int) -> int:
    """Clean-path cycles per image at fold factor ``ni`` (Table 7)."""
    if ni < 1:
        raise HardwareModelError(f"folded datapaths need ni >= 1, got {ni}")
    if family == "MLP":
        config = model.config
        return (
            math.ceil(config.n_inputs / ni) + 1
            + math.ceil(config.n_hidden / ni) + 1
        )
    if family == "SNNwot":
        from ..hardware.cyclesim import FoldedSNNwotSimulator

        config = model.config
        return math.ceil(config.n_inputs / ni) + FoldedSNNwotSimulator.FLUSH_CYCLES
    if family == "SNNwt":
        config = model.config
        return math.ceil(config.n_inputs / ni) * int(config.t_period)
    raise HardwareModelError(
        f"no cycle-accurate path for family {family!r}; "
        f"known: {', '.join(CYCLESIM_FAMILIES)}"
    )


def _model_hidden(family: str, model) -> int:
    if family == "MLP":
        return int(model.config.n_hidden)
    return int(model.config.n_neurons)


def sample_with_cyclesim(
    result,
    models: Dict[str, Any],
    images: np.ndarray,
    labels: Optional[Sequence[int]] = None,
    n_samples: int = 16,
    seed: int = 0,
    sim_seed: int = 1,
) -> Dict[str, Any]:
    """Price a sampled sub-grid of ``result`` with cycle-accurate numbers.

    Args:
        result: an analytic :class:`~repro.hardware.sweep.SweepResult`.
        models: ``family -> trained model`` (``MLP`` expects the
            :class:`~repro.mlp.quantized.QuantizedMLP`, ``SNNwot`` the
            :class:`~repro.snn.snn_wot.SNNWithoutTime`, ``SNNwt`` the
            :class:`~repro.snn.network.SpikingNetwork`).
        images: evaluation batch the label passes run over.
        labels: optional ground truth; adds per-family accuracy.
        n_samples: design points to sample (without replacement) from
            the rows whose family has a model, whose topology matches
            it, and whose datapath is folded (``ni >= 1``).
        seed: sampling RNG root (reproducible sub-grids).
        sim_seed: the timed SNN simulator's LFSR seed.

    Returns a JSON-ready document: sampled points (each the analytic
    record plus ``sim_cycles_per_image`` / ``sim_latency_us``), one
    label-pass summary per family, and the families skipped because no
    grid row matched their trained topology.
    """
    from ..core.rng import child_rng

    unknown = sorted(set(models) - set(CYCLESIM_FAMILIES))
    if unknown:
        raise HardwareModelError(
            f"no cycle-accurate path for family(ies) {unknown}; "
            f"known: {', '.join(CYCLESIM_FAMILIES)}"
        )
    if n_samples < 1:
        raise HardwareModelError(f"n_samples must be >= 1, got {n_samples}")
    images = np.atleast_2d(np.asarray(images))
    candidates: list = []
    skipped: list = []
    for family in sorted(models, key=CYCLESIM_FAMILIES.index):
        code = result.families.index(family)
        rows = np.flatnonzero(
            (result.family_code == code)
            & (result.ni >= 1)
            & (result.hidden == _model_hidden(family, models[family]))
        )
        if rows.size:
            candidates.extend(int(i) for i in rows)
        else:
            skipped.append(family)
    if not candidates:
        raise HardwareModelError(
            "no sampleable design points: no folded grid row matches any "
            "trained model's topology"
        )
    rng = child_rng(seed, "cyclesim-sample")
    take = min(n_samples, len(candidates))
    chosen = sorted(
        int(i)
        for i in rng.choice(len(candidates), size=take, replace=False)
    )
    label_passes: Dict[str, np.ndarray] = {}
    families_doc: Dict[str, Any] = {}
    points = []
    for slot in chosen:
        i = candidates[slot]
        family = result.family_of(i)
        model = models[family]
        if family not in label_passes:
            predicted = family_labels(family, model, images, seed=sim_seed)
            label_passes[family] = predicted
            families_doc[family] = {
                "n_images": int(len(images)),
                "accuracy": (
                    round(float(np.mean(predicted == np.asarray(labels))), 4)
                    if labels is not None
                    else None
                ),
            }
        cycles = closed_form_cycles(family, model, int(result.ni[i]))
        point = result.point(i)
        point["ni"] = int(result.ni[i])
        point["sim_cycles_per_image"] = int(cycles)
        point["sim_latency_us"] = float(cycles * result.delay_ns[i] * 1e-3)
        points.append(point)
    return {
        "n_sampled": len(points),
        "seed": seed,
        "sim_seed": sim_seed,
        "families": families_doc,
        "skipped_families": skipped,
        "points": points,
    }
