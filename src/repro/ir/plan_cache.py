"""Compile-once plan caching + content-addressed spike-train bundles.

Two caches, two cost profiles:

* **Plan memo** — ``get_plan(model)`` compiles each live model object
  exactly once (weak-keyed, so plans die with their models) and counts
  hits/misses/compiles for ``serve-stats``.
* **Trains cache** — the timed SNN's real cold-start cost is encoding
  one spike train per dataset row (~0.6 ms/image).  A train depends
  only on ``(coder, seed, stream, index, image)`` — never on weights —
  so encoded datasets are cached in memory (bounded LRU) and persisted
  through :class:`~repro.core.artifacts.ArrayBundleCache` as CSR
  ``.npz`` bundles keyed by that content address.  Warm evaluation,
  plan-shipping shard spawn, and learner hot-swap (same coder/seed, new
  weights) all hit this cache instead of re-encoding.

:func:`pack_trains` / :func:`unpack_trains` are the CSR wire format the
bundles and the shared-memory shard shipping both use.
"""

from __future__ import annotations

import hashlib
import json
import threading
import weakref
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.errors import CompileError
from .compile import compile_model
from .execute import run_plan  # noqa: F401  (re-export convenience)
from .ops import PLAN_CODE_VERSION, CompiledPlan
from .runtime import ExecutionContext

#: Encoded datasets kept in process memory (LRU beyond this).
_TRAINS_MEMO_LIMIT = 8

_lock = threading.Lock()
#: Single-flight locks: a cold ``get_plan``/``cached_trains`` holds one
#: of these across its compile/encode so concurrent first callers block
#: and then take the memo hit, instead of racing N duplicate compiles
#: (and N spurious miss counts) under the threaded executor.
_compile_lock = threading.Lock()
_trains_flight_lock = threading.Lock()
_plan_memo: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_trains_memo: "OrderedDict[str, Dict[int, Any]]" = OrderedDict()
_counters: Dict[str, int] = {
    "plan_hits": 0,
    "plan_misses": 0,
    "plan_compiles": 0,
    "trains_hits": 0,
    "trains_misses": 0,
}


def get_plan(model, kind: Optional[str] = None) -> CompiledPlan:
    """The model's compiled plan, compiling at most once per object.

    Raises :class:`~repro.core.errors.CompileError` exactly like
    :func:`~repro.ir.compile.compile_model`; failures are not cached
    (a model whose injector is later cleared can compile then).

    Thread-safe and single-flight: when N threads request the same
    uncompiled model concurrently, exactly one compiles (1 miss,
    1 compile) and the rest block on the flight lock and take hits —
    the counters never drift under the threaded executor.
    """
    weakable = True
    with _lock:
        try:
            plan = _plan_memo.get(model)
        except TypeError:
            # Not weak-referenceable (e.g. a bare object()): let the
            # compiler produce its usual diagnostic, uncached.
            weakable = False
            plan = None
        if plan is not None:
            _counters["plan_hits"] += 1
            return plan
    if not weakable:
        with _lock:
            _counters["plan_misses"] += 1
        plan = compile_model(model, kind=kind)
        with _lock:
            _counters["plan_compiles"] += 1
        return plan
    with _compile_lock:
        with _lock:
            # Double-check: a concurrent caller may have compiled this
            # model while we waited on the flight lock.
            plan = _plan_memo.get(model)
            if plan is not None:
                _counters["plan_hits"] += 1
                return plan
            _counters["plan_misses"] += 1
        plan = compile_model(model, kind=kind)
        with _lock:
            _counters["plan_compiles"] += 1
            try:
                _plan_memo[model] = plan
            except TypeError:
                pass
    return plan


def plan_cache_stats() -> Dict[str, int]:
    """Counter snapshot (surfaced in ``serve-stats``)."""
    with _lock:
        return dict(_counters)


def reset_plan_cache() -> None:
    """Drop memos and zero counters (tests / benchmarks)."""
    with _lock:
        _plan_memo.clear()
        _trains_memo.clear()
        for key in _counters:
            _counters[key] = 0


# ---------------------------------------------------------------------------
# Spike-train bundles (CSR wire format)
# ---------------------------------------------------------------------------


def encode_signature(plan: CompiledPlan) -> Dict[str, Any]:
    """The encode-relevant content of a timed-SNN plan.

    Deliberately excludes weights/thresholds: spike trains depend only
    on the coder, the RNG root and the per-row index, so a hot-swapped
    learner snapshot (new weights, same coder/seed) shares its
    predecessor's encoded dataset.
    """
    from ..core.artifacts import _jsonable, coder_signature

    meta = plan.meta
    if "config" not in meta:
        raise CompileError(
            f"plan {plan.kind!r} carries no encode metadata"
        )
    return {
        "code_version": PLAN_CODE_VERSION,
        "coder": coder_signature(meta.get("coder")),
        "config": _jsonable(meta["config"]),
        "seed": _jsonable(meta.get("seed")),
        "stream": meta.get("stream"),
    }


def _images_digest(images: np.ndarray) -> str:
    images = np.asarray(images)
    digest = hashlib.sha256()
    digest.update(str(images.dtype).encode())
    digest.update(str(images.shape).encode())
    digest.update(np.ascontiguousarray(images).tobytes())
    return digest.hexdigest()[:24]


def trains_key(plan: CompiledPlan, images: np.ndarray) -> str:
    """Content address of one plan's encoded dataset."""
    payload = {
        "encode": encode_signature(plan),
        "images": _images_digest(images),
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return "trains-" + hashlib.sha256(blob.encode()).hexdigest()[:24]


def pack_trains(
    trains: Sequence[Any], indices: Sequence[int]
) -> Dict[str, np.ndarray]:
    """Flatten per-index spike trains into CSR arrays (the wire format)."""
    times = [np.asarray(t.times, dtype=np.float64) for t in trains]
    return {
        "indices": np.asarray(list(indices), dtype=np.int64),
        "offsets": np.concatenate(
            [[0], np.cumsum([t.size for t in times])]
        ).astype(np.int64),
        "times": (
            np.concatenate(times) if times else np.empty(0, dtype=np.float64)
        ),
        "inputs": (
            np.concatenate([t.inputs for t in trains])
            if trains
            else np.empty(0, dtype=np.int64)
        ).astype(np.int64),
        "modulation": (
            np.concatenate([t.modulation for t in trains])
            if trains
            else np.empty(0, dtype=np.float64)
        ).astype(np.float64),
        "n_inputs": np.asarray(
            [trains[0].n_inputs if trains else 0], dtype=np.int64
        ),
        "durations": np.asarray(
            [t.duration for t in trains], dtype=np.float64
        ),
    }


def unpack_trains(arrays: Dict[str, np.ndarray]) -> Dict[int, Any]:
    """Rebuild the per-index train dict from CSR arrays (zero-copy slices)."""
    from ..snn.coding import SpikeTrain

    indices = np.asarray(arrays["indices"])
    offsets = np.asarray(arrays["offsets"])
    n_inputs = int(np.asarray(arrays["n_inputs"])[0])
    durations = np.asarray(arrays["durations"])
    trains: Dict[int, Any] = {}
    for j, index in enumerate(indices):
        a, z = int(offsets[j]), int(offsets[j + 1])
        trains[int(index)] = SpikeTrain(
            times=arrays["times"][a:z],
            inputs=arrays["inputs"][a:z],
            n_inputs=n_inputs,
            duration=float(durations[j]),
            modulation=arrays["modulation"][a:z],
        )
    return trains


def cached_trains(
    plan: CompiledPlan,
    images: np.ndarray,
    persist: bool = True,
) -> Dict[int, Any]:
    """Encoded trains for every row of ``images`` (indices ``0..N-1``).

    Checks the in-memory LRU memo, then the on-disk
    :class:`ArrayBundleCache` bundle, and only then encodes — recording
    hits/misses either way.  ``persist=False`` skips the disk layer
    (callers holding throwaway datasets).

    Single-flight like :func:`get_plan`: concurrent cold requests for
    the same dataset block on one encode and take memo hits.
    """
    key = trains_key(plan, images)

    def _memo_hit():
        cached = _trains_memo.get(key)
        if cached is not None:
            _trains_memo.move_to_end(key)
            _counters["trains_hits"] += 1
        return cached

    with _lock:
        cached = _memo_hit()
        if cached is not None:
            return cached
    return _cached_trains_flight(key, plan, images, persist, _memo_hit)


def _cached_trains_flight(key, plan, images, persist, _memo_hit):
    with _trains_flight_lock:
        with _lock:
            cached = _memo_hit()
            if cached is not None:
                return cached
            _counters["trains_misses"] += 1
        return _encode_and_memo(key, plan, images, persist)


def _encode_and_memo(key, plan, images, persist):
    indices = list(range(len(np.atleast_2d(np.asarray(images)))))

    def compute() -> Dict[str, np.ndarray]:
        ctx = ExecutionContext(plan)
        trains = ctx.trains_for(np.atleast_2d(np.asarray(images)), indices)
        return pack_trains(trains, indices)

    arrays: Optional[Dict[str, np.ndarray]] = None
    if persist:
        from ..core.artifacts import ArrayBundleCache, cache_enabled

        if cache_enabled():
            try:
                arrays = ArrayBundleCache().get_or_compute(key, compute)
            except Exception:  # noqa: BLE001 - cache is best-effort
                arrays = None
    if arrays is None:
        arrays = compute()
    trains = unpack_trains(arrays)
    with _lock:
        _trains_memo[key] = trains
        _trains_memo.move_to_end(key)
        while len(_trains_memo) > _TRAINS_MEMO_LIMIT:
            _trains_memo.popitem(last=False)
    return trains


def trains_arrays_for_shipping(
    plan: CompiledPlan, images: np.ndarray
) -> Dict[str, np.ndarray]:
    """CSR arrays of the whole encoded dataset (shard-shipping form)."""
    trains = cached_trains(plan, images)
    indices = sorted(trains)
    return pack_trains([trains[i] for i in indices], indices)


def context_for(
    plan: CompiledPlan,
    images: Optional[np.ndarray] = None,
    warm: bool = False,
) -> ExecutionContext:
    """A fresh execution context, optionally pre-seeded with cached trains."""
    ctx = ExecutionContext(plan)
    if warm and images is not None and plan.requires_indices:
        ctx.preload_trains(cached_trains(plan, images))
    return ctx
