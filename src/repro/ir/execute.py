"""The NumPy-vectorized plan executor — the hot path.

Runs one plan over the whole ``(B, n)`` batch in a single instruction
walk under the ``ir-exec`` timing phase.  Bitwise-equal to the serial
interpreter by construction (same kernels, and the batched variants of
the two stateful ops carry their own PR 2/PR 3 bit-identity
guarantees); the IR property tests and the per-kind golden tests
re-assert it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.timing import phase
from .ops import CompiledPlan
from .runtime import (
    ExecutionContext,
    execute_instructions,
    gather_outputs,
    resolve_indices,
)


def run_plan(
    plan: CompiledPlan,
    images: Optional[np.ndarray] = None,
    indices: Optional[Sequence[int]] = None,
    ctx: Optional[ExecutionContext] = None,
):
    """Execute a plan over a batch; returns the output array(s).

    ``indices`` are per-row dataset indices (default ``range(B)``) —
    they key the timed SNN's per-image RNG streams and the executor
    context's train cache; deterministic plans ignore them.  Pass a
    long-lived ``ctx`` to reuse encoded spike trains across calls.
    """
    with phase("ir-exec"):
        if ctx is None:
            ctx = ExecutionContext(plan)
        block = None
        if images is not None:
            block = np.atleast_2d(np.asarray(images))
        row_indices = resolve_indices(plan, block, indices)
        env = execute_instructions(
            plan, block, row_indices, ctx, vectorized=True
        )
        return gather_outputs(plan, env)
