"""The plan executor entry point: backend dispatch over one batch.

``run_plan`` is the single execution front door.  It resolves a backend
name through the registry precedence (explicit ``backend=`` argument >
``REPRO_IR_BACKEND`` > the ``numpy-tiled`` default) and hands the batch
to that engine under the ``ir-exec`` timing phase.  Every backend is
bitwise-equal to the serial interpreter on the plans it accepts — the
IR property tests and the per-kind golden tests assert it across all
available backends — so callers select backends for *speed*, never for
semantics.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.timing import phase
from .ops import CompiledPlan
from .runtime import ExecutionContext


def run_plan(
    plan: CompiledPlan,
    images: Optional[np.ndarray] = None,
    indices: Optional[Sequence[int]] = None,
    ctx: Optional[ExecutionContext] = None,
    backend: Optional[str] = None,
):
    """Execute a plan over a batch; returns the output array(s).

    ``indices`` are per-row dataset indices (default ``range(B)``) —
    they key the timed SNN's per-image RNG streams and the executor
    context's train cache; deterministic plans ignore them.  Pass a
    long-lived ``ctx`` to reuse encoded spike trains across calls (the
    context is backend-agnostic: trains and the shim network are
    shared by every engine).

    ``backend`` selects the execution engine by registry name; raises
    :class:`~repro.core.errors.BackendError` for unknown/unavailable
    names and :class:`~repro.core.errors.BackendUnsupported` when a
    restricted backend (``int8-tiled``) refuses the plan.
    """
    from . import backends

    name = backends.resolve_backend_name(backend)
    engine = backends.get_backend(name)
    with phase("ir-exec"):
        return engine.run(plan, images, indices, ctx)
