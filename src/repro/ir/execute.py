"""The plan executor entry point: backend dispatch over one batch.

``run_plan`` is the single execution front door.  It resolves a backend
name through the registry precedence (explicit ``backend=`` argument >
``REPRO_IR_BACKEND`` > the ``numpy-tiled`` default) and hands the batch
to that engine under the ``ir-exec`` timing phase.  Every backend is
bitwise-equal to the serial interpreter on the plans it accepts — the
IR property tests and the per-kind golden tests assert it across all
available backends — so callers select backends for *speed*, never for
semantics.

**Numeric sentinels.**  The front door also guards the execution
boundary against silent data corruption: float constants and float
inputs are checked for NaN/Inf before dispatch, and float outputs are
checked after.  A corrupted weight matrix or a miscomputing kernel
produces non-finite values long before it produces a plausible wrong
label, so the sentinel converts silent garbage into the typed
:class:`~repro.core.errors.NumericSentinelError` — a refusal the
serving layer's audit machinery can count and escalate, instead of a
wrong prediction nobody notices.  The checks run identically for every
backend because they live *around* the dispatch, not inside any engine.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.errors import NumericSentinelError
from ..core.timing import phase
from .ops import CompiledPlan
from .runtime import ExecutionContext


def _check_finite(array: np.ndarray, what: str) -> None:
    """Raise the typed sentinel when a float array holds NaN/Inf."""
    array = np.asarray(array)
    if array.dtype.kind != "f" or array.size == 0:
        return
    if not np.isfinite(array).all():
        bad = int(np.count_nonzero(~np.isfinite(array)))
        raise NumericSentinelError(
            f"numeric sentinel tripped: {what} contains {bad} non-finite "
            f"value(s) (NaN/Inf) — refusing to produce a prediction"
        )


def check_plan_consts(plan: CompiledPlan) -> None:
    """Verify every float constant of a plan is finite.

    Constants carry the trained weights/thresholds — the payload a
    memory fault corrupts.  Called by :func:`run_plan` on every batch;
    also usable standalone by callers that want to vet a plan once.
    """
    for name, value in plan.consts.items():
        _check_finite(value, f"plan const {name!r}")


def _check_outputs(result, plan: CompiledPlan) -> None:
    if isinstance(result, tuple):
        for name, value in zip(plan.outputs, result):
            _check_finite(value, f"plan output {name!r}")
    else:
        label = plan.outputs[0] if plan.outputs else "result"
        _check_finite(result, f"plan output {label!r}")


def run_plan(
    plan: CompiledPlan,
    images: Optional[np.ndarray] = None,
    indices: Optional[Sequence[int]] = None,
    ctx: Optional[ExecutionContext] = None,
    backend: Optional[str] = None,
):
    """Execute a plan over a batch; returns the output array(s).

    ``indices`` are per-row dataset indices (default ``range(B)``) —
    they key the timed SNN's per-image RNG streams and the executor
    context's train cache; deterministic plans ignore them.  Pass a
    long-lived ``ctx`` to reuse encoded spike trains across calls (the
    context is backend-agnostic: trains and the shim network are
    shared by every engine).

    ``backend`` selects the execution engine by registry name; raises
    :class:`~repro.core.errors.BackendError` for unknown/unavailable
    names and :class:`~repro.core.errors.BackendUnsupported` when a
    restricted backend (``int8-tiled``) refuses the plan.

    Raises :class:`~repro.core.errors.NumericSentinelError` when the
    plan's float constants, the float input batch, or the float outputs
    contain NaN/Inf — the backend's answer is never returned in that
    case.
    """
    from . import backends

    name = backends.resolve_backend_name(backend)
    engine = backends.get_backend(name)
    check_plan_consts(plan)
    if images is not None:
        _check_finite(images, "input batch")
    with phase("ir-exec"):
        result = engine.run(plan, images, indices, ctx)
    _check_outputs(result, plan)
    return result
