"""Lowering: trained model objects -> immutable :class:`CompiledPlan`.

One ``compile_model`` entry point dispatches on the five model kinds
and emits the exact legacy forward pass as an instruction sequence:

* ``mlp`` — normalize, GEMV/ADD/ACT hidden (step or slope-sigmoid),
  GEMV/ADD/ACT output (unit sigmoid — its saturation ties matter for
  the argmax), THRESH.
* ``mlp-q`` — normalize, QUANT to activation codes, integer GEMV,
  **two sequential SCALEs** (``accum * act_scale * w_scale`` is
  evaluated left-to-right in the legacy pipeline and float multiply is
  not associative), ADD of the precomputed float bias
  (``bias_codes * w_scale``), LUT ACT, re-QUANT; the output layer stops
  at the pre-activation (the legacy ``predict`` argmaxes there).
* ``snnwot`` — deterministic COUNTS front end, float GEMV over the
  trained weights, THRESH, label TAKE.
* ``snnbp`` — COUNTS, SCALE by ``1/max_spikes_per_pixel``, GEMV,
  THRESH, TAKE.
* ``snnwt`` — the timed family keeps its per-index RNG contract:
  LIF_STEP carries weights/thresholds as consts and config/coder/seed/
  stream as metadata; executors encode ``child_rng(seed, stream, i)``
  spike trains and run the WTA grid (serial: one image at a time;
  vectorized: the PR 2 batched engine).

Models with a live spike-affecting fault injector refuse to compile
(:class:`~repro.core.errors.CompileError`) — run-time corruption is not
a pure dataflow — and callers fall back to the legacy engines.  The
quantized MLP is the exception by design: its injector corrupts the
stored code arrays *at construction*, so the plan's consts already are
the faulted SRAM contents.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..core.errors import CompileError
from ..core.timing import phase
from . import ops
from .ops import BufferSpec, CompiledPlan, Instruction

#: Model kinds the compiler lowers (the serving registry's names).
PLAN_KINDS = ("mlp", "mlp-q", "snnwt", "snnwot", "snnbp")


def kind_of(model) -> str:
    """The serving-registry kind string for a trained model object."""
    from ..mlp.network import MLP
    from ..mlp.quantized import QuantizedMLP
    from ..snn.network import SpikingNetwork
    from ..snn.snn_bp import BackPropSNN
    from ..snn.snn_wot import SNNWithoutTime

    if isinstance(model, SpikingNetwork):
        return "snnwt"
    if isinstance(model, SNNWithoutTime):
        return "snnwot"
    if isinstance(model, BackPropSNN):
        return "snnbp"
    if isinstance(model, QuantizedMLP):
        return "mlp-q"
    if isinstance(model, MLP):
        return "mlp"
    raise CompileError(
        f"cannot lower a {type(model).__name__}; known kinds: "
        f"{', '.join(PLAN_KINDS)}"
    )


class _Builder:
    """Accumulates instructions/buffers/consts during one lowering."""

    def __init__(self, kind: str):
        self.kind = kind
        self.instructions: List[Instruction] = []
        self.buffers: List[BufferSpec] = []
        self.consts: Dict[str, np.ndarray] = {}
        self.meta: Dict[str, Any] = {}

    def buffer(self, name: str, role: str, dtype: str = "float64") -> str:
        self.buffers.append(BufferSpec(name, role, dtype))
        return name

    def const(self, name: str, value: np.ndarray) -> str:
        value = np.asarray(value)
        self.buffer(name, "const", str(value.dtype))
        self.consts[name] = value
        self.instructions.append(Instruction(ops.LOAD_M, name))
        return name

    def emit(self, op: str, dst: str, srcs=(), **params) -> str:
        self.instructions.append(
            Instruction(op, dst, tuple(srcs), tuple(params.items()))
        )
        return dst

    def store(self, name: str, src: str, dtype: str = "int64") -> str:
        self.buffer(name, "output", dtype)
        self.emit(ops.STORE, name, (src,))
        return name

    def finish(self, outputs=("labels",)) -> CompiledPlan:
        return CompiledPlan(
            self.kind,
            self.instructions,
            self.buffers,
            self.consts,
            meta=self.meta,
            outputs=outputs,
        )


def _lower_mlp(model) -> CompiledPlan:
    b = _Builder("mlp")
    b.buffer("x", "input")
    b.emit(ops.LOAD_V, "x", transform="norm01")
    b.const("w_hidden", model.w_hidden)
    b.const("b_hidden", model.b_hidden)
    b.const("w_output", model.w_output)
    b.const("b_output", model.b_output)
    b.buffer("h", "temp")
    b.emit(ops.GEMV, "h", ("x", "w_hidden"))
    b.emit(ops.ADD, "h", ("h", "b_hidden"))
    if model.config.step_activation:
        b.emit(ops.ACT, "h", ("h",), kernel="step")
    else:
        b.emit(
            ops.ACT, "h", ("h",),
            kernel="sigmoid", slope=float(model.config.sigmoid_slope),
        )
    b.buffer("o", "temp")
    b.emit(ops.GEMV, "o", ("h", "w_output"))
    b.emit(ops.ADD, "o", ("o", "b_output"))
    # The unit-slope output sigmoid is not redundant under argmax:
    # its float64 saturation produces exact ties the raw pre-activation
    # would break differently.  predict() applies it; so does the plan.
    b.emit(ops.ACT, "o", ("o",), kernel="sigmoid", slope=1.0)
    b.buffer("winner", "temp", "int64")
    b.emit(ops.THRESH, "winner", ("o",))
    b.store("labels", "winner")
    return b.finish()


def _lower_mlp_q(model) -> CompiledPlan:
    wf, af = model.weight_format, model.activation_format
    b = _Builder("mlp-q")
    b.buffer("x", "input")
    b.emit(ops.LOAD_V, "x", transform="norm01")
    b.const("w_hidden_codes", model.w_hidden_codes)
    b.const("w_output_codes", model.w_output_codes)
    # The legacy pipeline adds ``bias_codes.astype(f64) * w_scale``;
    # precomputing that float product is bit-identical (same two
    # operands, same single multiply) and keeps ADD a pure op.
    b.const(
        "bias_f_hidden",
        model.b_hidden_codes.astype(np.float64) * wf.scale,
    )
    b.const(
        "bias_f_output",
        model.b_output_codes.astype(np.float64) * wf.scale,
    )
    b.const("lut_slopes", model.lut.slopes)
    b.const("lut_intercepts", model.lut.intercepts)

    def layer(src: str, w: str, bias: str, dst: str) -> str:
        acc = b.buffer(f"{dst}_acc", "temp", "int64")
        b.emit(ops.GEMV, acc, (src, w), cast="int64")
        pre = b.buffer(f"{dst}_pre", "temp")
        # Two *sequential* rescales reproduce the legacy left-to-right
        # ``accum * act_scale * w_scale`` float order exactly.
        b.emit(ops.SCALE, pre, (acc,), scale=float(af.scale))
        b.emit(ops.SCALE, pre, (pre,), scale=float(wf.scale))
        b.emit(ops.ADD, pre, (pre, bias))
        return pre

    xq = b.buffer("xq", "temp", "int64")
    b.emit(
        ops.QUANT, xq, ("x",),
        scale=float(af.scale),
        min_code=int(af.min_code), max_code=int(af.max_code),
    )
    h_pre = layer(xq, "w_hidden_codes", "bias_f_hidden", "h")
    h_act = b.buffer("h_act", "temp")
    b.emit(
        ops.ACT, h_act, (h_pre, "lut_slopes", "lut_intercepts"),
        kernel="lut",
        x_min=float(model.lut.x_min), x_max=float(model.lut.x_max),
        segments=int(model.lut.segments),
    )
    hq = b.buffer("hq", "temp", "int64")
    b.emit(
        ops.QUANT, hq, (h_act,),
        scale=float(af.scale),
        min_code=int(af.min_code), max_code=int(af.max_code),
    )
    o_pre = layer(hq, "w_output_codes", "bias_f_output", "o")
    # predict() argmaxes the output *pre-activation* — no output LUT.
    b.buffer("winner", "temp", "int64")
    b.emit(ops.THRESH, "winner", (o_pre,))
    b.store("labels", "winner")
    return b.finish()


def _lower_counts_family(kind: str, model) -> CompiledPlan:
    """Shared lowering for the two deterministic-count SNNs."""
    if kind == "snnwot":
        config = model.network.config
        weights = model.weights
        labels = model.network.neuron_labels
        count_scale = None
    else:  # snnbp
        config = model.config
        weights = model.weights
        labels = model.neuron_labels
        count_scale = 1.0 / max(config.max_spikes_per_pixel, 1)
    if labels is None:
        raise CompileError(f"cannot compile an unlabeled {kind} model")
    b = _Builder(kind)
    b.buffer("x", "input")
    b.emit(ops.LOAD_V, "x", transform="raw")
    b.const("weights", weights)
    b.const("neuron_labels", np.asarray(labels))
    c = b.buffer("c", "temp")
    b.emit(
        ops.COUNTS, c, ("x",),
        duration=float(config.t_period),
        max_rate_interval=float(config.min_spike_interval),
    )
    if count_scale is not None:
        b.emit(ops.SCALE, c, (c,), scale=float(count_scale))
    p = b.buffer("p", "temp")
    b.emit(ops.GEMV, p, (c, "weights"))
    b.buffer("winner", "temp", "int64")
    b.emit(ops.THRESH, "winner", ("p",))
    b.buffer("y", "temp", "int64")
    b.emit(ops.TAKE, "y", ("winner", "neuron_labels"))
    b.store("labels", "y")
    return b.finish()


def _lower_snnwt(model) -> CompiledPlan:
    from ..snn.batched import TEST_SPIKE_STREAM

    if model.neuron_labels is None:
        raise CompileError(
            "cannot compile an unlabeled timed SNN; run the labeling pass"
        )
    b = _Builder("snnwt")
    b.buffer("x", "input")
    b.emit(ops.LOAD_V, "x", transform="raw")
    b.const("weights", model.weights)
    b.const("thresholds", model.thresholds)
    b.const("neuron_labels", np.asarray(model.neuron_labels))
    b.meta.update(
        config=model.config,
        coder=model.coder,
        seed=model.config.seed,
        stream=TEST_SPIKE_STREAM,
    )
    b.buffer("winner", "temp", "int64")
    b.emit(ops.LIF_STEP, "winner", ("x", "weights", "thresholds"))
    b.buffer("y", "temp", "int64")
    b.emit(ops.TAKE, "y", ("winner", "neuron_labels"))
    b.store("labels", "y")
    return b.finish()


def compile_model(model, kind: Optional[str] = None) -> CompiledPlan:
    """Lower one trained model onto the IR (timed: ``ir-compile`` phase).

    Raises :class:`CompileError` for unknown kinds, unlabeled SNNs,
    and models whose forward pass injects faults at run time.
    """
    with phase("ir-compile"):
        if kind is None:
            kind = kind_of(model)
        if kind not in PLAN_KINDS:
            raise CompileError(
                f"unknown model kind {kind!r}; known kinds: "
                f"{', '.join(PLAN_KINDS)}"
            )
        injector = getattr(model, "fault_injector", None)
        if injector is not None and not getattr(injector, "null", False):
            raise CompileError(
                f"{kind} model has a live fault injector; run-time spike "
                "corruption is not a pure dataflow — use the legacy engine"
            )
        if kind == "mlp":
            return _lower_mlp(model)
        if kind == "mlp-q":
            return _lower_mlp_q(model)
        if kind == "snnwot":
            return _lower_counts_family("snnwot", model)
        if kind == "snnbp":
            return _lower_counts_family("snnbp", model)
        return _lower_snnwt(model)
