"""Chunked linear-recurrence scan for the timed LIF readout.

The PR 2 batched grid (:func:`repro.snn.batched.present_batch`) walks
every 1 ms step with full ``(B, n)`` masked arithmetic.  For the
*inference readout* a much cheaper schedule is exact, because of three
structural facts about the pre-first-spike regime:

1. **Pure linear recurrence.**  Until a row's first output spike its
   refractory/inhibition clocks sit at ``-inf``, so every neuron is
   active at every step and the potential evolves as
   ``p[t] = decay * p[t-1] + C[t]`` with ``C[t]`` the spike
   contribution row.  The first-spike readout never consults a fired
   row again (``early_exit`` retires it), so the recurrence is the
   whole computation.
2. **Threshold crossings happen only at spike steps.**  With
   non-negative weights and modulations the potentials are
   non-negative; with ``0 <= decay < 1`` and positive thresholds a
   decay-only step can never cross a threshold upward.  Eligibility
   therefore only needs checking at steps that actually carry input
   spikes — a few hundred checks instead of ``T`` per chunk.
3. **Zero-adds are exact.**  ``p + 0.0`` is bitwise ``p`` for
   ``p >= 0``, so batching contribution adds across rows (some of
   which have no spike at that step) cannot perturb anything — the
   same property the batched grid itself already relies on.

Contribution rows are built in bulk per time-chunk: each live row's
spikes are sliced out of the concatenated CSR train arrays with two
``searchsorted`` calls, bucketed into ``(row, step)`` cells, and
contracted against the transposed weight matrix with one
``scipy.sparse`` CSR mat-vecs call.  The sparse accumulate adds each
cell's spikes sequentially in storage order — times ascending, i.e.
exactly the rank order the batched grid replays — so the result is
bitwise the grid's contribution row.

When any precondition fails (scipy missing, negative weights or
modulation, decay outside ``[0, 1)``, non-positive thresholds, mixed
durations) the caller falls back to :func:`batch_winners` wholesale;
the scan never runs "approximately".
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

#: Steps per chunk — the measured sweet spot on L2-sized working sets.
#: Small chunks retire fired rows sooner (live rows shrink only at
#: chunk boundaries), which beats the per-chunk slicing overhead.
DEFAULT_CHUNK_STEPS = 32


def _csr_matvecs():
    """The raw sparsetools CSR multi-vector kernel, or ``None``."""
    try:
        from scipy.sparse import _sparsetools

        return _sparsetools.csr_matvecs
    except Exception:  # noqa: BLE001 - optional dependency / private API
        return None


def scan_refusal(network, trains: Sequence[Any]) -> Optional[str]:
    """Why the scan cannot be used for this readout (``None`` = it can).

    Every condition here is a *bit-identity precondition*, not a
    performance heuristic — see the module docstring for why each one
    is load-bearing.
    """
    if _csr_matvecs() is None:
        return "scipy.sparse CSR kernel unavailable"
    if not trains:
        return None  # empty batch: trivially handled
    weights = np.asarray(network.weights)
    if not np.all(weights >= 0):
        return "negative synaptic weights"
    thresholds = np.asarray(network.thresholds)
    if not np.all(thresholds > 0):
        return "non-positive firing thresholds"
    decay = float(network.lif_parameters.decay_factor(1.0))
    if not 0.0 <= decay < 1.0:
        return f"decay factor {decay} outside [0, 1)"
    duration = trains[0].duration
    n_inputs = trains[0].n_inputs
    for train in trains:
        if train.duration != duration or train.n_inputs != n_inputs:
            return "trains with mixed duration/n_inputs"
        if train.n_spikes and not np.all(train.modulation >= 0):
            return "negative spike modulation"
    if int(n_inputs) != weights.shape[1]:
        # weights are (n_neurons, n_inputs); the scan contracts against
        # the transpose, so the train width must match the input axis.
        return "train width does not match the weight matrix"
    return None


def _multi_arange(lo: np.ndarray, hi: np.ndarray):
    """Concatenated ``arange(lo[i], hi[i])`` spans plus per-span counts."""
    counts = hi - lo
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=np.int64), counts
    out = np.ones(total, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    nz = counts > 0
    out[starts[nz]] = lo[nz]
    first = starts[nz]
    out[first[1:]] = lo[nz][1:] - hi[nz][:-1] + 1
    return np.cumsum(out), counts


def scan_winners(
    network,
    trains: Sequence[Any],
    chunk_steps: int = DEFAULT_CHUNK_STEPS,
) -> np.ndarray:
    """First-spike/max-potential readout, bitwise ``batch_winners``.

    Callers must have cleared :func:`scan_refusal` first; the scan
    assumes its preconditions and does not re-check them.
    """
    csr_matvecs = _csr_matvecs()
    B = len(trains)
    winners = np.full(B, -1, dtype=np.int64)
    if not B:
        return winners

    weights_t = np.ascontiguousarray(
        np.asarray(network.weights, dtype=np.float64).T
    )
    thresholds = np.asarray(network.thresholds, dtype=np.float64)[None, :]
    decay = float(network.lif_parameters.decay_factor(1.0))
    n_inputs, n_neurons = weights_t.shape
    T = int(np.ceil(trains[0].duration / 1.0))

    sizes = np.array([train.n_spikes for train in trains], dtype=np.int64)
    total = int(sizes.sum())
    if total:
        times = np.concatenate([train.times for train in trains])
        inputs = np.ascontiguousarray(
            np.concatenate([train.inputs for train in trains]),
            dtype=np.int64,
        )
        modulation = np.ascontiguousarray(
            np.concatenate([train.modulation for train in trains]),
            dtype=np.float64,
        )
        step = np.minimum(times.astype(np.int64), T - 1)
        rows = np.repeat(np.arange(B, dtype=np.int64), sizes)
        # Spikes are stored row-major with times ascending per row, so
        # this composite key is sorted and searchsorted slices per-row
        # per-chunk spans without any reordering.
        key = rows * np.int64(T) + step
        t_active = int(step.max()) + 1
    else:
        t_active = 0

    live = np.arange(B, dtype=np.int64)
    potentials = np.zeros((B, n_neurons))
    t0 = 0
    while t0 < t_active and live.size:
        t1 = min(t0 + int(chunk_steps), t_active)
        span = t1 - t0
        lo = np.searchsorted(key, live * np.int64(T) + t0)
        hi = np.searchsorted(key, live * np.int64(T) + t1)
        sel, per_row = _multi_arange(lo, hi)
        n_live = live.size
        contributions = None
        spike_step = np.zeros(span, dtype=bool)
        if sel.size:
            t_local = step[sel] - t0
            cell = (
                np.repeat(np.arange(n_live, dtype=np.int64), per_row) * span
                + t_local
            )
            cell_counts = np.bincount(cell, minlength=n_live * span)
            indptr = np.empty(n_live * span + 1, dtype=np.int64)
            indptr[0] = 0
            np.cumsum(cell_counts, out=indptr[1:])
            contributions = np.zeros((n_live, span, n_neurons))
            csr_matvecs(
                n_live * span,
                n_inputs,
                n_neurons,
                indptr,
                inputs[sel],
                modulation[sel],
                weights_t.ravel(),
                contributions.reshape(-1),
            )
            spike_step[t_local] = True
        alive = np.ones(n_live, dtype=bool)
        n_alive = n_live
        for t_loc in range(span):
            np.multiply(potentials, decay, out=potentials)
            if contributions is not None and spike_step[t_loc]:
                np.add(potentials, contributions[:, t_loc], out=potentials)
                # Retired rows keep decaying/accumulating harmlessly —
                # per-row elementwise math can't touch live rows, and a
                # fired row's later potentials are never read (the same
                # early-exit contract as the batched grid).
                hit = (potentials >= thresholds).any(axis=1)
                np.logical_and(hit, alive, out=hit)
                if hit.any():
                    fired = np.flatnonzero(hit)
                    scores = potentials[fired]
                    overshoot = np.where(
                        scores >= thresholds, scores - thresholds, -np.inf
                    )
                    winners[live[fired]] = np.argmax(overshoot, axis=1)
                    alive[fired] = False
                    n_alive -= fired.size
                    if not n_alive:
                        break
        live = live[alive]
        potentials = potentials[alive]
        t0 = t1
    if live.size:
        # Decay tail for rows that never fire: the grid keeps decaying
        # them through the spike-free remainder of the presentation
        # before its max-potential fallback readout.
        for _ in range(t0, T):
            np.multiply(potentials, decay, out=potentials)
        winners[live] = np.argmax(potentials, axis=1)
    return winners
