"""The ``numpy-tiled`` backend — the default plan executor.

Three optimizations over the PR 8 single-walk executor, each gated on a
*provable* bit-identity argument (never an empirical one):

* **Peephole fusion.**  Adjacent QUANT+GEMV(int64) pairs collapse into
  one exact dgemm over float64 codes (the quantized MLP's two hidden /
  output accumulates), and the count-coded readout's GEMV+THRESH pair
  collapses into a score-tile argmax that never materializes the wide
  score matrix.  Fusion only fires when the intermediate buffer is
  consumed exactly once and is not a plan output, so the skipped
  materializations are unobservable.
* **Tiled integer accumulates.**  Every int64 GEMV routes through the
  exact-dgemm trick in :mod:`.tiles` (~3x the int64 matmul) with
  L2-sized row tiles — integer sums are order-exact, so tiling cannot
  change a bit.
* **LIF scan + threaded row blocks.**  The timed SNN readout runs the
  chunked linear-recurrence scan (:mod:`.lif_scan`) when its
  preconditions hold, falling back to the batched grid wholesale
  otherwise.  Plans whose every instruction is *rowwise-exact* — all
  elementwise ops, integer GEMVs, and the LIF readout, but **not**
  float GEMVs (BLAS float64 results depend on operand row count) nor
  LFSR_FILL (no batch axis) — may additionally be split into
  contiguous row blocks across a ``ThreadPoolExecutor``.  Blocks are
  scheduled and concatenated in deterministic index order, and each
  op's row independence makes the merged result bitwise the
  single-block walk regardless of thread timing.

``REPRO_IR_THREADS`` caps the worker count (default: the machine's
cores); ``REPRO_IR_TILE_BYTES`` sets the L2 tile budget.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...core.errors import CompileError
from .. import kernels, ops
from ..ops import CompiledPlan, Instruction
from ..runtime import (
    ExecutionContext,
    _act,
    execute_instructions,
    gather_outputs,
    resolve_indices,
)
from . import lif_scan, tiles
from .base import ExecutionBackend

#: Ops that process batch rows independently and bitwise identically
#: regardless of batch composition (see module docstring) — the
#: admission set for the threaded row-block scheduler.
_ROWWISE_OPS = frozenset(
    {
        ops.LOAD_V,
        ops.LOAD_M,
        ops.ADD,
        ops.SCALE,
        ops.RELU,
        ops.ACT,
        ops.QUANT,
        ops.COUNTS,
        ops.LIF_STEP,
        ops.THRESH,
        ops.TAKE,
        ops.STORE,
    }
)

#: Don't bother spinning threads below this many rows per worker.
_MIN_ROWS_PER_WORKER = 32


def worker_count() -> int:
    """Thread budget (``REPRO_IR_THREADS`` overrides; >=1)."""
    raw = os.environ.get("REPRO_IR_THREADS", "")
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value >= 1:
        return value
    return max(1, os.cpu_count() or 1)


def rowwise_exact(plan: CompiledPlan) -> bool:
    """True when every instruction is provably row-independent."""
    for inst in plan.instructions:
        if inst.op == ops.GEMV:
            if inst.param("cast", "") != "int64":
                return False
        elif inst.op not in _ROWWISE_OPS:
            return False
    return True


# -- peephole fusion --------------------------------------------------------

#: One execution step: an unfused instruction or a fused pair.
_Step = Tuple[str, Tuple[Instruction, ...]]


def fusion_steps(plan: CompiledPlan) -> List[_Step]:
    """The plan's instruction stream with safe peepholes collapsed.

    A pair fuses only when the intermediate is consumed exactly once
    (by the pair's second op) and is not a plan output; the fused
    QUANT+GEMV additionally requires every consumer of the accumulate
    to be SCALE, since the fused kernel leaves the exact integer
    values in float64 rather than int64.
    """
    reads: Dict[str, int] = {}
    consumers: Dict[str, List[str]] = {}
    for inst in plan.instructions:
        for src in inst.srcs:
            reads[src] = reads.get(src, 0) + 1
            consumers.setdefault(src, []).append(inst.op)
    outputs = set(plan.outputs)

    steps: List[_Step] = []
    stream = plan.instructions
    i = 0
    while i < len(stream):
        inst = stream[i]
        nxt = stream[i + 1] if i + 1 < len(stream) else None
        if (
            nxt is not None
            and inst.op == ops.QUANT
            and nxt.op == ops.GEMV
            and nxt.param("cast", "") == "int64"
            and nxt.srcs[0] == inst.dst
            and reads.get(inst.dst, 0) == 1
            and inst.dst not in outputs
            and nxt.dst not in outputs
            and all(op == ops.SCALE for op in consumers.get(nxt.dst, []))
        ):
            steps.append(("quant_gemv", (inst, nxt)))
            i += 2
            continue
        if (
            nxt is not None
            and inst.op == ops.GEMV
            and inst.param("cast", "") == ""
            and nxt.op == ops.THRESH
            and nxt.srcs[0] == inst.dst
            and reads.get(inst.dst, 0) == 1
            and inst.dst not in outputs
        ):
            steps.append(("gemv_thresh", (inst, nxt)))
            i += 2
            continue
        steps.append(("inst", (inst,)))
        i += 1
    return steps


def _execute_steps(
    plan: CompiledPlan,
    steps: List[_Step],
    inputs: Optional[np.ndarray],
    indices: Sequence[int],
    ctx: ExecutionContext,
) -> Dict[str, np.ndarray]:
    """One fused/tiled walk over one row block (vectorized semantics)."""
    env: Dict[str, np.ndarray] = {}
    for kind, group in steps:
        if kind == "quant_gemv":
            quant, gemv = group
            acc = tiles.fused_quant_gemv(
                env[quant.srcs[0]],
                float(quant.param("scale")),
                int(quant.param("min_code")),
                int(quant.param("max_code")),
                env[gemv.srcs[1]],
            )
            if acc is None:  # exactness bound not certifiable: unfuse
                codes = kernels.quantize(
                    env[quant.srcs[0]],
                    float(quant.param("scale")),
                    int(quant.param("min_code")),
                    int(quant.param("max_code")),
                )
                env[quant.dst] = codes
                acc = tiles.tiled_gemv(codes, env[gemv.srcs[1]], cast="int64")
            env[gemv.dst] = acc
            continue
        if kind == "gemv_thresh":
            gemv, thresh = group
            env[thresh.dst] = tiles.fused_gemv_thresh(
                env[gemv.srcs[0]], env[gemv.srcs[1]]
            )
            continue
        inst = group[0]
        if inst.op == ops.GEMV:
            env[inst.dst] = tiles.tiled_gemv(
                env[inst.srcs[0]],
                env[inst.srcs[1]],
                cast=inst.param("cast", ""),
            )
        elif inst.op == ops.LIF_STEP:
            env[inst.dst] = _lif_readout(inst, env, indices, ctx)
        elif inst.op == ops.LOAD_V:
            if inputs is None:
                raise CompileError(
                    f"plan {plan.kind!r} expects an input batch"
                )
            block = np.atleast_2d(np.asarray(inputs))
            if inst.param("transform") == "norm01":
                block = block.astype(np.float64) / 255.0
            env[inst.dst] = block
        elif inst.op == ops.LOAD_M:
            env[inst.dst] = plan.consts[inst.dst]
        elif inst.op == ops.ADD:
            env[inst.dst] = env[inst.srcs[0]] + env[inst.srcs[1]]
        elif inst.op == ops.SCALE:
            env[inst.dst] = kernels.scale(
                env[inst.srcs[0]], float(inst.param("scale"))
            )
        elif inst.op == ops.RELU:
            env[inst.dst] = kernels.relu(env[inst.srcs[0]])
        elif inst.op == ops.ACT:
            env[inst.dst] = _act(inst, env)
        elif inst.op == ops.QUANT:
            env[inst.dst] = kernels.quantize(
                env[inst.srcs[0]],
                float(inst.param("scale")),
                int(inst.param("min_code")),
                int(inst.param("max_code")),
            )
        elif inst.op == ops.COUNTS:
            env[inst.dst] = kernels.counts(
                env[inst.srcs[0]],
                float(inst.param("duration")),
                float(inst.param("max_rate_interval")),
            )
        elif inst.op == ops.THRESH:
            env[inst.dst] = kernels.argmax_rows(env[inst.srcs[0]])
        elif inst.op == ops.TAKE:
            env[inst.dst] = np.asarray(env[inst.srcs[1]])[env[inst.srcs[0]]]
        elif inst.op == ops.LFSR_FILL:
            env[inst.dst] = kernels.lfsr_gaussian(
                tuple(inst.param("seeds")),
                int(inst.param("resolution")),
                int(inst.param("count")),
                vectorized=True,
            )
        elif inst.op == ops.STORE:
            env[inst.dst] = env[inst.srcs[0]]
        else:  # pragma: no cover - OPCODES is closed
            raise CompileError(f"unhandled opcode {inst.op!r}")
    return env


def _lif_readout(
    inst: Instruction,
    env: Dict[str, np.ndarray],
    indices: Sequence[int],
    ctx: ExecutionContext,
) -> np.ndarray:
    from ...snn.batched import DEFAULT_BATCH_SIZE, batch_winners

    rows = env[inst.srcs[0]]
    for index in indices:
        if int(index) < 0:
            raise CompileError(
                "LIF_STEP needs a dataset index per row; the per-image "
                "RNG stream is keyed by index"
            )
    trains = ctx.trains_for(rows, indices)
    network = ctx.network
    if lif_scan.scan_refusal(network, trains) is None:
        winners = lif_scan.scan_winners(network, trains)
    else:
        winners = batch_winners(
            network, trains, batch_size=DEFAULT_BATCH_SIZE
        )
    return np.asarray(winners, dtype=np.int64)


class NumpyTiledBackend(ExecutionBackend):
    """Cache-blocked, fused, optionally threaded NumPy executor."""

    name = "numpy-tiled"
    description = (
        "fused/tiled NumPy kernels, LIF first-spike scan, threaded "
        "row blocks (default)"
    )

    def run(
        self,
        plan: CompiledPlan,
        images: Optional[np.ndarray] = None,
        indices: Optional[Sequence[int]] = None,
        ctx: Optional[ExecutionContext] = None,
    ) -> Any:
        if ctx is None:
            ctx = ExecutionContext(plan)
        has_input = any(
            inst.op == ops.LOAD_V for inst in plan.instructions
        )
        if not has_input:
            env = execute_instructions(plan, None, [], ctx, vectorized=True)
            return gather_outputs(plan, env)
        block = np.atleast_2d(np.asarray(images))
        row_indices = resolve_indices(plan, block, indices)
        steps = fusion_steps(plan)
        blocks = self._schedule(plan, block, row_indices, ctx)
        if len(blocks) == 1:
            start, stop = blocks[0]
            env = _execute_steps(
                plan, steps, block[start:stop],
                row_indices[start:stop], ctx,
            )
            return gather_outputs(plan, env)
        workers = min(worker_count(), len(blocks))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _execute_steps,
                    plan,
                    steps,
                    block[start:stop],
                    row_indices[start:stop],
                    ctx,
                )
                for start, stop in blocks
            ]
            envs = [future.result() for future in futures]
        outputs = tuple(
            np.concatenate([env[name] for env in envs], axis=0)
            for name in plan.outputs
        )
        return outputs[0] if len(outputs) == 1 else outputs

    def _schedule(
        self,
        plan: CompiledPlan,
        block: np.ndarray,
        row_indices: Sequence[int],
        ctx: ExecutionContext,
    ) -> List[Tuple[int, int]]:
        """Contiguous row blocks, in deterministic index order."""
        n_rows = len(block)
        workers = worker_count()
        if (
            workers <= 1
            or n_rows < 2 * _MIN_ROWS_PER_WORKER
            or not rowwise_exact(plan)
        ):
            return [(0, n_rows)]
        if plan.requires_indices:
            # Encode every missing train (and build the shim network)
            # on the calling thread: worker blocks then only read the
            # context's caches.
            ctx.network
            ctx.trains_for(block, row_indices)
        rows = max(
            _MIN_ROWS_PER_WORKER, -(-n_rows // workers)
        )
        return [
            (start, min(start + rows, n_rows))
            for start in range(0, n_rows, rows)
        ]
