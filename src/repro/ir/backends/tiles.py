"""Cache-blocked and fused GEMV/GEMM tile kernels (numpy-tiled backend).

Bit-identity is the design constraint, so every fast path here is
*provably* exact, not approximately equal:

* **Exact integer GEMM via dgemm** — when every partial sum of an
  integer matmul is bounded below ``2**53``, float64 dgemm of the
  integer-valued operands is exact (every intermediate is an exactly
  representable integer, so summation order cannot matter).  BLAS dgemm
  is ~3x faster than NumPy's int64 matmul on the quantized layers, so
  the int64 GEMV runs through it whenever the bound holds and falls
  back to the reference ``x @ w.T.astype(int64)`` otherwise.
* **Row tiling only where order-exact** — float64 dgemm results *do*
  depend on the row count (BLAS picks different micro-kernels), so
  float GEMVs are never row-split.  Integer accumulates are
  order-exact, so they tile freely to the L2 budget.
* **Fused QUANT+GEMV** — the quantize codes are produced directly as
  float64 (``clip(round(x/scale), ...)`` without the int64 cast) and
  fed straight into dgemm against float64 weight codes; same exactness
  bound, one materialization and one cast fewer.
* **Fused GEMV+THRESH** — the count-coded readout (``counts @ w.T``
  then argmax) runs column tiles of the weight matrix with a running
  strictly-greater max, preserving NumPy's first-wins tie-break.  The
  default column tile is wider than every real model, so the shipped
  plans take the single-tile path whose scores are bitwise those of
  the unfused kernel.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

#: Largest |sum| for which float64 accumulation of integers is exact.
_EXACT_F64_BOUND = float(2**53)

#: Default per-tile working-set budget (bytes) — sized to a typical L2.
DEFAULT_TILE_BYTES = 256 * 1024

#: Column-tile width for the fused GEMV+THRESH readout.  Wider than
#: every shipped model's output layer, so real plans run single-tile
#: (bitwise the unfused kernel); the multi-tile path is covered by the
#: kernel tests with provably exact integer-valued inputs.
DEFAULT_COL_TILE = 512


def tile_bytes() -> int:
    """The L2 tile budget (``REPRO_IR_TILE_BYTES`` overrides)."""
    raw = os.environ.get("REPRO_IR_TILE_BYTES", "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_TILE_BYTES
    return value if value > 0 else DEFAULT_TILE_BYTES


def row_blocks(
    n_rows: int, row_bytes: int, target_bytes: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Split ``n_rows`` into contiguous ``[start, stop)`` L2-sized blocks.

    ``row_bytes`` is the per-row working set (input row + widest
    intermediate).  Always returns at least one block; never returns an
    empty block for ``n_rows == 0`` (the empty batch is one ``(0, 0)``
    block so callers keep their shape discipline).
    """
    if n_rows <= 0:
        return [(0, 0)]
    budget = tile_bytes() if target_bytes is None else int(target_bytes)
    rows = max(1, budget // max(1, int(row_bytes)))
    return [
        (start, min(start + rows, n_rows))
        for start in range(0, n_rows, rows)
    ]


def _exact_dgemm_ok(max_abs_x: float, max_abs_w: float, depth: int) -> bool:
    """Whether every partial sum fits the exact-float64 integer range."""
    return max_abs_x * max_abs_w * max(1, depth) < _EXACT_F64_BOUND


def exact_int_gemm(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``x @ w.T.astype(int64)`` — via exact dgemm when bounds allow.

    ``x`` and ``w`` hold integer *values* (any dtype).  Result is int64,
    bitwise the reference integer accumulate.  Falls back to the
    reference expression when the magnitude bound cannot be certified.
    """
    x = np.asarray(x)
    w = np.asarray(w)
    if x.size and w.size:
        max_x = float(np.max(np.abs(x)))
        max_w = float(np.max(np.abs(w)))
        if _exact_dgemm_ok(max_x, max_w, x.shape[-1]):
            acc = np.asarray(x, dtype=np.float64) @ np.asarray(
                w, dtype=np.float64
            ).T
            return acc.astype(np.int64)
    return x @ w.T.astype(np.int64)


def tiled_gemv(x: np.ndarray, w: np.ndarray, cast: str = "") -> np.ndarray:
    """The backend GEMV: tiled/exact integer path, single-call float path.

    ``cast="int64"`` routes through :func:`exact_int_gemm`, row-tiled to
    the L2 budget (integer sums are order-exact, so tiling is free).
    Float GEMVs run as one dgemm call: BLAS float64 results depend on
    the operand row count, so splitting them would break bit-identity
    with the serial interpreter's whole-row product.
    """
    if cast != "int64":
        return x @ w.T
    x = np.atleast_2d(np.asarray(x))
    n_rows = x.shape[0]
    row_bytes = (x.shape[-1] + w.shape[0]) * 8
    blocks = row_blocks(n_rows, row_bytes)
    if len(blocks) <= 1:
        return exact_int_gemm(x, w)
    out = np.empty((n_rows, w.shape[0]), dtype=np.int64)
    for start, stop in blocks:
        out[start:stop] = exact_int_gemm(x[start:stop], w)
    return out


def fused_quant_gemv(
    x: np.ndarray,
    scale: float,
    min_code: int,
    max_code: int,
    w: np.ndarray,
) -> np.ndarray:
    """QUANT then int64-GEMV in one pass, result as exact-integer float64.

    Produces the quantize codes directly in float64 (identical values
    to ``kernels.quantize`` before its int64 cast) and contracts them
    against float64 weight codes in one dgemm.  Exact under the same
    ``2**53`` bound as :func:`exact_int_gemm`; callers fall back to the
    unfused pair when the bound fails (``None`` return).

    The caller must guarantee the QUANT destination is consumed only by
    this GEMV and the GEMV destination only by value-preserving float
    consumers (SCALE), since the int64 intermediates are never
    materialized.
    """
    codes = np.clip(
        np.round(np.asarray(x, dtype=np.float64) / scale),
        min_code,
        max_code,
    )
    w = np.asarray(w)
    max_code_abs = max(abs(float(min_code)), abs(float(max_code)))
    max_w = float(np.max(np.abs(w))) if w.size else 0.0
    if not _exact_dgemm_ok(max_code_abs, max_w, codes.shape[-1]):
        return None
    return codes @ np.asarray(w, dtype=np.float64).T


def fused_gemv_thresh(
    x: np.ndarray, w: np.ndarray, col_tile: int = DEFAULT_COL_TILE
) -> np.ndarray:
    """``argmax(x @ w.T, axis=-1)`` without materializing wide scores.

    Column tiles keep the score working set inside L2 for wide output
    layers; the running comparison is strictly-greater, so the first
    maximal column wins exactly like ``np.argmax`` over the full row.
    """
    x = np.atleast_2d(np.asarray(x))
    n_out = w.shape[0]
    if n_out <= col_tile:
        scores = x @ w.T
        return np.argmax(scores, axis=-1).astype(np.int64)
    best = np.full(x.shape[0], -np.inf, dtype=np.float64)
    arg = np.zeros(x.shape[0], dtype=np.int64)
    rows = np.arange(x.shape[0])
    for start in range(0, n_out, col_tile):
        scores = x @ w[start : start + col_tile].T
        local = np.argmax(scores, axis=-1)
        local_best = scores[rows, local]
        better = local_best > best
        arg = np.where(better, local + start, arg)
        best = np.where(better, local_best, best)
    return arg.astype(np.int64)
