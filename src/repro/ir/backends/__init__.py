"""Pluggable execution backends for compiled plans.

The registry routes :func:`repro.ir.execute.run_plan` to one of several
interchangeable engines.  The conformance contract is uniform: a
backend either produces output **bitwise identical** to the NumPy-serial
golden interpreter for a plan, or refuses that plan up front with a
typed :class:`~repro.core.errors.BackendUnsupported` — asserted by the
``tests/ir`` golden/property suites, which parametrize over every
backend available in the environment.

Selection precedence (resolved by :func:`resolve_backend_name`):

1. an explicit name (``--backend`` flags, ``backend=`` keywords),
2. the ``REPRO_IR_BACKEND`` environment variable,
3. the default, ``numpy-tiled``.

Shipped backends:

========== ==================================================================
serial      the golden interpreter (the oracle; one row at a time)
numpy       the PR 8 single-walk vectorized executor (the bench baseline)
numpy-tiled fused/tiled kernels + LIF scan + threaded row blocks (default)
int8-tiled  int8/uint8 storage, int32 accumulates; quantized plans only
torch       optional torch plugin (unavailable unless torch is installed)
jax         optional jax plugin (unavailable unless jax is installed)
========== ==================================================================

Unknown names raise :class:`~repro.core.errors.BackendError` — mapped to
the usage exit code by every CLI entry point that accepts a backend.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ...core.errors import BackendError, BackendUnsupported  # noqa: F401
from .base import ExecutionBackend
from .int8_tiled import Int8TiledBackend
from .jax_backend import JaxBackend
from .numpy_tiled import NumpyTiledBackend
from .reference import NumpyBackend, SerialBackend
from .torch_backend import TorchBackend

#: The backend ``resolve_backend_name`` falls back to.
DEFAULT_BACKEND = "numpy-tiled"

#: Environment override consulted between explicit flags and the default.
ENV_VAR = "REPRO_IR_BACKEND"

_REGISTRY: "Dict[str, ExecutionBackend]" = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Add a backend instance to the registry (name collisions replace)."""
    _REGISTRY[backend.name] = backend
    return backend


for _backend in (
    SerialBackend(),
    NumpyBackend(),
    NumpyTiledBackend(),
    Int8TiledBackend(),
    TorchBackend(),
    JaxBackend(),
):
    register_backend(_backend)


def backend_names() -> List[str]:
    """Registered names, in registration order."""
    return list(_REGISTRY)


def get_backend(
    name: str, require_available: bool = True
) -> ExecutionBackend:
    """Look up a backend by name.

    Raises :class:`BackendError` for unknown names and (by default) for
    registered-but-unavailable plugins; pass
    ``require_available=False`` to inspect an unavailable backend's
    status (the ``repro backends`` listing).
    """
    backend = _REGISTRY.get(str(name))
    if backend is None:
        known = ", ".join(backend_names())
        raise BackendError(
            f"unknown execution backend {name!r} (registered: {known})"
        )
    if require_available:
        backend.require_available()
    return backend


def available_backends() -> List[str]:
    """Names of backends that can run in this environment."""
    return [
        name
        for name, backend in _REGISTRY.items()
        if backend.available()
    ]


def list_backends() -> List[Dict]:
    """Status documents for every registered backend (CLI listing)."""
    docs = []
    for name, backend in _REGISTRY.items():
        doc = backend.describe()
        doc["default"] = name == DEFAULT_BACKEND
        docs.append(doc)
    return docs


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Apply the flag > env > default precedence; validate the result.

    Raises :class:`BackendError` for names (explicit or from
    ``REPRO_IR_BACKEND``) that are not registered, so a typo'd
    environment never silently falls back to the default.
    """
    if name:
        get_backend(name, require_available=False)
        return str(name)
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        get_backend(env, require_available=False)
        return env
    return DEFAULT_BACKEND


__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "BackendError",
    "BackendUnsupported",
    "ExecutionBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend_name",
]
