"""The ``int8-tiled`` backend — quantized plans on 8-bit storage.

Mirrors the integer datapath of the paper's machine-learning
accelerator (and the int8-friendly LIF-only design of arXiv
2505.11252): activations and weights live in ``int8``/``uint8``,
synaptic accumulates run in ``int32``, and only the requantization /
activation boundary steps touch float64 — exactly the steps
``fixedpoint/qformat.py`` defines, executed with the very same kernels,
so the quantized MLP's labels (and any integer-weight count-coded plan)
are bitwise those of the serial interpreter.

Everything it cannot prove integer-exact it **refuses** with a typed
:class:`~repro.core.errors.BackendUnsupported` naming the offending
instruction: float GEMVs over normalized activations (the float MLP),
scaled count activations (SNN+BP), non-integer synaptic weights (the
STDP-trained SNNs), the timed LIF path, and LFSR Gaussian programs.
Structural checks happen in :meth:`supports`; data-dependent range
checks (actual spike counts vs the uint8 ceiling, int32 overflow
bounds) re-run per batch and raise the same typed error.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from ...core.errors import BackendUnsupported, CompileError
from .. import kernels, ops
from ..ops import CompiledPlan
from ..runtime import ExecutionContext, _act, gather_outputs, resolve_indices
from .base import ExecutionBackend

_INT32_BOUND = float(2**31 - 1)


def _code_storage(min_code: int, max_code: int) -> Optional[np.dtype]:
    """The 8-bit dtype covering ``[min_code, max_code]`` (or ``None``)."""
    if 0 <= min_code and max_code <= 255:
        return np.dtype(np.uint8)
    if -128 <= min_code and max_code <= 127:
        return np.dtype(np.int8)
    return None


def _weight_storage(w: np.ndarray) -> Optional[np.dtype]:
    """8-bit storage for an integer-valued weight const (or ``None``)."""
    if w.size == 0:
        return np.dtype(np.int8)
    if not np.all(w == np.round(w)):
        return None
    lo, hi = float(np.min(w)), float(np.max(w))
    return _code_storage(int(lo), int(hi))


class Int8TiledBackend(ExecutionBackend):
    """int8 storage / int32 accumulate executor for quantized plans."""

    name = "int8-tiled"
    description = (
        "int8/uint8 storage with int32 accumulators for quantized "
        "plans; refuses float-only plans"
    )

    # -- static plan analysis ---------------------------------------------

    def supports(self, plan: CompiledPlan) -> Optional[str]:
        # Tags: "codes" = QUANT output with 8-bit range, "counts" =
        # deterministic spike counts (integer-valued float64).
        tags: Dict[str, str] = {}
        for i, inst in enumerate(plan.instructions):
            where = f"instruction {i} ({inst.op} -> {inst.dst!r})"
            if inst.op == ops.LIF_STEP:
                return f"{where}: timed LIF dynamics are a float-only path"
            if inst.op == ops.LFSR_FILL:
                return f"{where}: LFSR Gaussian samples are not integers"
            if inst.op == ops.QUANT:
                storage = _code_storage(
                    int(inst.param("min_code")), int(inst.param("max_code"))
                )
                if storage is None:
                    return (
                        f"{where}: code range exceeds 8-bit storage"
                    )
                tags[inst.dst] = "codes"
            elif inst.op == ops.COUNTS:
                tags[inst.dst] = "counts"
            elif inst.op == ops.GEMV:
                if inst.dst in plan.outputs:
                    return (
                        f"{where}: raw accumulator outputs are not "
                        "byte-exact in int32"
                    )
                src, weights_name = inst.srcs[0], inst.srcs[1]
                if weights_name not in plan.consts:
                    return (
                        f"{where}: synaptic weights {weights_name!r} "
                        "are not a plan constant"
                    )
                if _weight_storage(plan.consts[weights_name]) is None:
                    return (
                        f"{where}: weights {weights_name!r} are not "
                        "integer-valued within 8-bit range"
                    )
                if inst.param("cast", "") == "int64":
                    if tags.get(src) != "codes":
                        return (
                            f"{where}: integer accumulate over "
                            f"{src!r}, which is not quantized codes"
                        )
                else:
                    if tags.get(src) != "counts":
                        return (
                            f"{where}: float accumulate over {src!r}, "
                            "which is not an integer spike-count batch"
                        )
        return None

    # -- execution ---------------------------------------------------------

    def run(
        self,
        plan: CompiledPlan,
        images: Optional[np.ndarray] = None,
        indices: Optional[Sequence[int]] = None,
        ctx: Optional[ExecutionContext] = None,
    ) -> Any:
        self.require_supported(plan)
        if ctx is None:
            ctx = ExecutionContext(plan)
        has_input = any(
            inst.op == ops.LOAD_V for inst in plan.instructions
        )
        block = None
        row_indices: Sequence[int] = []
        if has_input:
            block = np.atleast_2d(np.asarray(images))
            row_indices = resolve_indices(plan, block, indices)
        env = self._execute(plan, block, row_indices, ctx)
        return gather_outputs(plan, env)

    def _gemv_int32(
        self,
        x: np.ndarray,
        w: np.ndarray,
        x_bound: float,
        where: str,
    ) -> np.ndarray:
        """int8-storage, int32-accumulate ``x @ w.T`` with overflow proof."""
        w = np.asarray(w)
        w_storage = _weight_storage(w)
        w_bound = float(np.max(np.abs(w))) if w.size else 0.0
        depth = max(1, x.shape[-1])
        if x_bound * w_bound * depth > _INT32_BOUND:
            raise BackendUnsupported(
                f"backend {self.name!r}: {where}: int32 accumulator "
                f"bound exceeded (|x|<={x_bound:g}, |w|<={w_bound:g}, "
                f"depth {depth})"
            )
        w8 = w.astype(w_storage)
        return x.astype(np.int32) @ w8.T.astype(np.int32)

    def _execute(
        self,
        plan: CompiledPlan,
        inputs: Optional[np.ndarray],
        indices: Sequence[int],
        ctx: ExecutionContext,
    ) -> Dict[str, np.ndarray]:
        env: Dict[str, np.ndarray] = {}
        consumers: Dict[str, list] = {}
        for inst in plan.instructions:
            for src in inst.srcs:
                consumers.setdefault(src, []).append(inst.op)
        for i, inst in enumerate(plan.instructions):
            where = f"instruction {i} ({inst.op} -> {inst.dst!r})"
            if inst.op == ops.QUANT:
                codes = kernels.quantize(
                    env[inst.srcs[0]],
                    float(inst.param("scale")),
                    int(inst.param("min_code")),
                    int(inst.param("max_code")),
                )
                storage = _code_storage(
                    int(inst.param("min_code")), int(inst.param("max_code"))
                )
                # Downcast to 8-bit storage when codes only feed
                # accumulates; a QUANT read by anything else keeps the
                # reference int64 so mixed arithmetic can't repromote
                # through a narrower type.
                if all(
                    op == ops.GEMV for op in consumers.get(inst.dst, [])
                ):
                    codes = codes.astype(storage)
                env[inst.dst] = codes
            elif inst.op == ops.GEMV:
                x = env[inst.srcs[0]]
                if inst.param("cast", "") == "int64":
                    x_bound = float(
                        max(abs(int(x.min())), abs(int(x.max())))
                        if x.size
                        else 0
                    )
                    env[inst.dst] = self._gemv_int32(
                        x, env[inst.srcs[1]], x_bound, where
                    )
                else:
                    # Integer-valued spike counts: check the uint8
                    # storage ceiling on the actual data, then
                    # accumulate in int32.
                    max_count = float(x.max()) if x.size else 0.0
                    if max_count > 255:
                        raise BackendUnsupported(
                            f"backend {self.name!r}: {where}: spike "
                            f"counts up to {max_count:g} exceed uint8 "
                            "storage"
                        )
                    x8 = x.astype(np.uint8)
                    env[inst.dst] = self._gemv_int32(
                        x8, env[inst.srcs[1]], max_count, where
                    )
            elif inst.op == ops.LOAD_V:
                if inputs is None:
                    raise CompileError(
                        f"plan {plan.kind!r} expects an input batch"
                    )
                batch = np.atleast_2d(np.asarray(inputs))
                if inst.param("transform") == "norm01":
                    batch = batch.astype(np.float64) / 255.0
                env[inst.dst] = batch
            elif inst.op == ops.LOAD_M:
                env[inst.dst] = plan.consts[inst.dst]
            elif inst.op == ops.ADD:
                env[inst.dst] = env[inst.srcs[0]] + env[inst.srcs[1]]
            elif inst.op == ops.SCALE:
                env[inst.dst] = kernels.scale(
                    env[inst.srcs[0]], float(inst.param("scale"))
                )
            elif inst.op == ops.RELU:
                env[inst.dst] = kernels.relu(env[inst.srcs[0]])
            elif inst.op == ops.ACT:
                env[inst.dst] = _act(inst, env)
            elif inst.op == ops.COUNTS:
                env[inst.dst] = kernels.counts(
                    env[inst.srcs[0]],
                    float(inst.param("duration")),
                    float(inst.param("max_rate_interval")),
                )
            elif inst.op == ops.THRESH:
                env[inst.dst] = kernels.argmax_rows(env[inst.srcs[0]])
            elif inst.op == ops.TAKE:
                env[inst.dst] = np.asarray(env[inst.srcs[1]])[
                    env[inst.srcs[0]]
                ]
            elif inst.op == ops.STORE:
                value = env[inst.srcs[0]]
                # Narrow integer storage widens back to the reference
                # int64 at the output boundary (value-exact).
                if value.dtype in (np.int8, np.uint8, np.int32):
                    value = value.astype(np.int64)
                env[inst.dst] = value
            else:  # pragma: no cover - supports() refuses the rest
                raise BackendUnsupported(
                    f"backend {self.name!r}: {where}: unsupported opcode"
                )
        return env
