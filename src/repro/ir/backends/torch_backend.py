"""Optional ``torch`` execution backend (import-guarded plugin).

Maps the dense linear-algebra ops of the IR — GEMV (float64 matmul /
int64 integer matmul), ADD, SCALE, RELU, QUANT (round-half-even +
clamp, the same IEEE ops as NumPy) — onto torch CPU tensors, in the
spirit of the bindsnet idiom (SNIPPETS.md §2).  The stateful and
transcendental front ends keep the reference NumPy kernels, bridged at
the boundary: ACT (``exp`` is not bitwise portable across math
libraries), COUNTS, LIF_STEP, LFSR_FILL, and the THRESH argmax (NumPy's
first-wins tie-break is the contract).

When torch is not installed the backend registers as unavailable and
reports why; the conformance suites (``tests/ir/test_golden.py`` /
``test_property.py``) parametrize over it automatically wherever it
*is* installed — that conformance run, not this module, is the
bit-identity gate.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from ...core.errors import CompileError
from .. import kernels, ops
from ..ops import CompiledPlan
from ..runtime import ExecutionContext, _act, _lif_step, resolve_indices
from .base import ExecutionBackend


def _import_torch():
    try:
        import torch

        return torch, None
    except Exception as exc:  # noqa: BLE001 - any import failure counts
        return None, f"torch is not importable ({exc.__class__.__name__})"


class TorchBackend(ExecutionBackend):
    """Torch CPU tensor executor (optional plugin)."""

    name = "torch"
    description = (
        "torch tensor kernels for the dense ops; NumPy reference "
        "kernels for stateful/transcendental front ends (optional)"
    )

    def unavailable_reason(self) -> Optional[str]:
        return _import_torch()[1]

    def run(
        self,
        plan: CompiledPlan,
        images: Optional[np.ndarray] = None,
        indices: Optional[Sequence[int]] = None,
        ctx: Optional[ExecutionContext] = None,
    ) -> Any:
        self.require_available()
        torch, _ = _import_torch()
        if ctx is None:
            ctx = ExecutionContext(plan)
        has_input = any(
            inst.op == ops.LOAD_V for inst in plan.instructions
        )
        block = None
        row_indices: Sequence[int] = []
        if has_input:
            block = np.atleast_2d(np.asarray(images))
            row_indices = resolve_indices(plan, block, indices)

        def to_numpy(value):
            if isinstance(value, torch.Tensor):
                return value.numpy()
            return np.asarray(value)

        env: Dict[str, Any] = {}
        np_env: Dict[str, np.ndarray] = {}

        def np_view(name: str) -> np.ndarray:
            np_env[name] = to_numpy(env[name])
            return np_env[name]

        for inst in plan.instructions:
            if inst.op == ops.LOAD_V:
                if block is None:
                    raise CompileError(
                        f"plan {plan.kind!r} expects an input batch"
                    )
                batch = torch.from_numpy(
                    np.ascontiguousarray(block)
                )
                if inst.param("transform") == "norm01":
                    batch = batch.to(torch.float64) / 255.0
                env[inst.dst] = batch
            elif inst.op == ops.LOAD_M:
                # Copy: plan consts are write-protected and
                # ``torch.from_numpy`` wants writable memory.
                env[inst.dst] = torch.from_numpy(
                    np.array(plan.consts[inst.dst])
                )
            elif inst.op == ops.GEMV:
                x = env[inst.srcs[0]]
                w = env[inst.srcs[1]]
                if inst.param("cast", "") == "int64":
                    env[inst.dst] = torch.matmul(
                        x.to(torch.int64), w.T.to(torch.int64)
                    )
                else:
                    env[inst.dst] = torch.matmul(x, w.T)
            elif inst.op == ops.ADD:
                env[inst.dst] = env[inst.srcs[0]] + env[inst.srcs[1]]
            elif inst.op == ops.SCALE:
                env[inst.dst] = env[inst.srcs[0]].to(
                    torch.float64
                ) * float(inst.param("scale"))
            elif inst.op == ops.RELU:
                env[inst.dst] = torch.clamp_min(env[inst.srcs[0]], 0)
            elif inst.op == ops.QUANT:
                x = env[inst.srcs[0]].to(torch.float64)
                env[inst.dst] = torch.clamp(
                    torch.round(x / float(inst.param("scale"))),
                    float(inst.param("min_code")),
                    float(inst.param("max_code")),
                ).to(torch.int64)
            elif inst.op == ops.ACT:
                for src in inst.srcs:
                    np_view(src)
                env[inst.dst] = torch.from_numpy(
                    np.ascontiguousarray(_act(inst, np_env))
                )
            elif inst.op == ops.COUNTS:
                env[inst.dst] = torch.from_numpy(
                    kernels.counts(
                        np_view(inst.srcs[0]),
                        float(inst.param("duration")),
                        float(inst.param("max_rate_interval")),
                    )
                )
            elif inst.op == ops.LIF_STEP:
                np_env[inst.srcs[0]] = np_view(inst.srcs[0])
                env[inst.dst] = torch.from_numpy(
                    _lif_step(inst, np_env, row_indices, ctx, True)
                )
            elif inst.op == ops.THRESH:
                env[inst.dst] = torch.from_numpy(
                    kernels.argmax_rows(np_view(inst.srcs[0]))
                )
            elif inst.op == ops.TAKE:
                env[inst.dst] = torch.from_numpy(
                    np.asarray(np_view(inst.srcs[1]))[
                        np_view(inst.srcs[0])
                    ]
                )
            elif inst.op == ops.LFSR_FILL:
                env[inst.dst] = torch.from_numpy(
                    kernels.lfsr_gaussian(
                        tuple(inst.param("seeds")),
                        int(inst.param("resolution")),
                        int(inst.param("count")),
                        vectorized=True,
                    )
                )
            elif inst.op == ops.STORE:
                env[inst.dst] = env[inst.srcs[0]]
            else:  # pragma: no cover - OPCODES is closed
                raise CompileError(f"unhandled opcode {inst.op!r}")
        results = tuple(
            np.array(to_numpy(env[name])) for name in plan.outputs
        )
        return results[0] if len(results) == 1 else results
