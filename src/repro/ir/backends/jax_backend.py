"""Optional ``jax`` execution backend (import-guarded plugin).

The graphax jit'd-LIF idiom (SNIPPETS.md §3) in plugin form: the dense
ops run as ``jax.numpy`` float64/int64 array ops (``jax_enable_x64`` is
switched on at first use), while the stateful and transcendental front
ends — ACT, COUNTS, LIF_STEP, LFSR_FILL, the THRESH argmax — keep the
reference NumPy kernels, exactly like the torch plugin and for the same
reason: bit-identity with the serial interpreter is the conformance
bar, and transcendental/tie-break semantics are only guaranteed by the
reference kernels.

Registers as unavailable (with the import error) when jax is not
installed; the parametrized conformance suites pick it up wherever it
is.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from ...core.errors import CompileError
from .. import kernels, ops
from ..ops import CompiledPlan
from ..runtime import ExecutionContext, _act, _lif_step, resolve_indices
from .base import ExecutionBackend


def _import_jax():
    try:
        import jax
        import jax.numpy as jnp

        jax.config.update("jax_enable_x64", True)
        return jnp, None
    except Exception as exc:  # noqa: BLE001 - any import failure counts
        return None, f"jax is not importable ({exc.__class__.__name__})"


class JaxBackend(ExecutionBackend):
    """jax.numpy executor (optional plugin)."""

    name = "jax"
    description = (
        "jax.numpy kernels (x64) for the dense ops; NumPy reference "
        "kernels for stateful/transcendental front ends (optional)"
    )

    def unavailable_reason(self) -> Optional[str]:
        return _import_jax()[1]

    def run(
        self,
        plan: CompiledPlan,
        images: Optional[np.ndarray] = None,
        indices: Optional[Sequence[int]] = None,
        ctx: Optional[ExecutionContext] = None,
    ) -> Any:
        self.require_available()
        jnp, _ = _import_jax()
        if ctx is None:
            ctx = ExecutionContext(plan)
        has_input = any(
            inst.op == ops.LOAD_V for inst in plan.instructions
        )
        block = None
        row_indices: Sequence[int] = []
        if has_input:
            block = np.atleast_2d(np.asarray(images))
            row_indices = resolve_indices(plan, block, indices)

        env: Dict[str, Any] = {}
        np_env: Dict[str, np.ndarray] = {}

        def np_view(name: str) -> np.ndarray:
            np_env[name] = np.asarray(env[name])
            return np_env[name]

        for inst in plan.instructions:
            if inst.op == ops.LOAD_V:
                if block is None:
                    raise CompileError(
                        f"plan {plan.kind!r} expects an input batch"
                    )
                batch = jnp.asarray(block)
                if inst.param("transform") == "norm01":
                    batch = batch.astype(jnp.float64) / 255.0
                env[inst.dst] = batch
            elif inst.op == ops.LOAD_M:
                env[inst.dst] = jnp.asarray(plan.consts[inst.dst])
            elif inst.op == ops.GEMV:
                x = env[inst.srcs[0]]
                w = env[inst.srcs[1]]
                if inst.param("cast", "") == "int64":
                    env[inst.dst] = x @ w.T.astype(jnp.int64)
                else:
                    env[inst.dst] = x @ w.T
            elif inst.op == ops.ADD:
                env[inst.dst] = env[inst.srcs[0]] + env[inst.srcs[1]]
            elif inst.op == ops.SCALE:
                env[inst.dst] = env[inst.srcs[0]].astype(
                    jnp.float64
                ) * float(inst.param("scale"))
            elif inst.op == ops.RELU:
                env[inst.dst] = jnp.maximum(env[inst.srcs[0]], 0)
            elif inst.op == ops.QUANT:
                x = env[inst.srcs[0]].astype(jnp.float64)
                env[inst.dst] = jnp.clip(
                    jnp.round(x / float(inst.param("scale"))),
                    float(inst.param("min_code")),
                    float(inst.param("max_code")),
                ).astype(jnp.int64)
            elif inst.op == ops.ACT:
                for src in inst.srcs:
                    np_view(src)
                env[inst.dst] = jnp.asarray(_act(inst, np_env))
            elif inst.op == ops.COUNTS:
                env[inst.dst] = jnp.asarray(
                    kernels.counts(
                        np_view(inst.srcs[0]),
                        float(inst.param("duration")),
                        float(inst.param("max_rate_interval")),
                    )
                )
            elif inst.op == ops.LIF_STEP:
                np_env[inst.srcs[0]] = np_view(inst.srcs[0])
                env[inst.dst] = jnp.asarray(
                    _lif_step(inst, np_env, row_indices, ctx, True)
                )
            elif inst.op == ops.THRESH:
                env[inst.dst] = jnp.asarray(
                    kernels.argmax_rows(np_view(inst.srcs[0]))
                )
            elif inst.op == ops.TAKE:
                env[inst.dst] = jnp.asarray(
                    np.asarray(np_view(inst.srcs[1]))[
                        np_view(inst.srcs[0])
                    ]
                )
            elif inst.op == ops.LFSR_FILL:
                env[inst.dst] = jnp.asarray(
                    kernels.lfsr_gaussian(
                        tuple(inst.param("seeds")),
                        int(inst.param("resolution")),
                        int(inst.param("count")),
                        vectorized=True,
                    )
                )
            elif inst.op == ops.STORE:
                env[inst.dst] = env[inst.srcs[0]]
            else:  # pragma: no cover - OPCODES is closed
                raise CompileError(f"unhandled opcode {inst.op!r}")
        results = tuple(np.asarray(env[name]) for name in plan.outputs)
        return results[0] if len(results) == 1 else results
