"""The execution-backend contract.

A backend is one interchangeable engine for :class:`CompiledPlan`
execution.  The conformance bar is deliberately minimal and absolute:
every backend must either produce output **bitwise identical** to the
NumPy-serial golden interpreter (:func:`repro.ir.interpret.run_plan_serial`)
for a plan, or refuse that plan up front with a typed
:class:`~repro.core.errors.BackendUnsupported`.  There is no
"approximately equal" tier — the golden/property suites assert raw
array equality, dtypes included.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from ...core.errors import BackendError, BackendUnsupported
from ..ops import CompiledPlan
from ..runtime import ExecutionContext


class ExecutionBackend:
    """One pluggable plan-execution engine.

    Subclasses override :meth:`run` (and usually :meth:`supports`); the
    registry in :mod:`repro.ir.backends` owns discovery and name
    resolution.  ``name`` is the registry key, ``description`` the one
    line shown by ``repro backends``.
    """

    #: Registry key (``--backend`` / ``REPRO_IR_BACKEND`` value).
    name: str = "abstract"
    #: One-line summary for the ``repro backends`` listing.
    description: str = ""

    # -- availability -----------------------------------------------------

    def available(self) -> bool:
        """Whether this backend can run in the current environment."""
        return self.unavailable_reason() is None

    def unavailable_reason(self) -> Optional[str]:
        """Why the backend cannot run here (``None`` when it can).

        Optional-dependency plugins (torch/jax) report the missing
        import; always-available backends return ``None``.
        """
        return None

    def require_available(self) -> None:
        reason = self.unavailable_reason()
        if reason is not None:
            raise BackendError(
                f"backend {self.name!r} is unavailable: {reason}"
            )

    # -- plan coverage ----------------------------------------------------

    def supports(self, plan: CompiledPlan) -> Optional[str]:
        """Why this backend refuses ``plan`` (``None`` = supported).

        The default covers every plan; restricted backends (int8-tiled)
        override this and :meth:`run` raises
        :class:`BackendUnsupported` with the same message.
        """
        return None

    def require_supported(self, plan: CompiledPlan) -> None:
        reason = self.supports(plan)
        if reason is not None:
            raise BackendUnsupported(
                f"backend {self.name!r} cannot execute plan "
                f"{plan.kind!r}: {reason}"
            )

    # -- execution --------------------------------------------------------

    def run(
        self,
        plan: CompiledPlan,
        images: Optional[np.ndarray] = None,
        indices: Optional[Sequence[int]] = None,
        ctx: Optional[ExecutionContext] = None,
    ) -> Any:
        """Execute ``plan`` over a batch; same contract as ``run_plan``."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Stable-key status document (the ``repro backends`` row)."""
        reason = self.unavailable_reason()
        return {
            "name": self.name,
            "description": self.description,
            "available": reason is None,
            "unavailable_reason": reason,
        }
