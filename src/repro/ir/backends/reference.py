"""The two reference backends: the golden serial interpreter + PR 8 path.

``serial`` wraps :func:`repro.ir.interpret.run_plan_serial` — the single
conformance oracle every other backend must match bitwise.  ``numpy``
is the PR 8 vectorized executor exactly as shipped (one whole-batch
instruction walk through the shared runtime), kept addressable both as
the baseline the BENCH_PR9 speedup floors measure against and as an
escape hatch should a fused path ever need ruling out in production.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from ..interpret import run_plan_serial
from ..ops import CompiledPlan
from ..runtime import (
    ExecutionContext,
    execute_instructions,
    gather_outputs,
    resolve_indices,
)
from .base import ExecutionBackend


class SerialBackend(ExecutionBackend):
    """The NumPy-serial golden interpreter, one row block at a time."""

    name = "serial"
    description = "NumPy-serial golden interpreter (the conformance oracle)"

    def run(
        self,
        plan: CompiledPlan,
        images: Optional[np.ndarray] = None,
        indices: Optional[Sequence[int]] = None,
        ctx: Optional[ExecutionContext] = None,
    ) -> Any:
        return run_plan_serial(plan, images, indices, ctx)


class NumpyBackend(ExecutionBackend):
    """The PR 8 vectorized executor: one whole-batch instruction walk."""

    name = "numpy"
    description = "single-walk vectorized NumPy executor (PR 8 baseline)"

    def run(
        self,
        plan: CompiledPlan,
        images: Optional[np.ndarray] = None,
        indices: Optional[Sequence[int]] = None,
        ctx: Optional[ExecutionContext] = None,
    ) -> Any:
        if ctx is None:
            ctx = ExecutionContext(plan)
        block = None
        if images is not None:
            block = np.atleast_2d(np.asarray(images))
        row_indices = resolve_indices(plan, block, indices)
        env = execute_instructions(
            plan, block, row_indices, ctx, vectorized=True
        )
        return gather_outputs(plan, env)
