"""Elementwise/contraction kernels shared by both IR executors.

Every kernel here replicates — operation for operation, in the same
float order — the exact NumPy expressions of the legacy model forward
passes (``mlp/activations.py``, ``mlp/quantized.py``,
``fixedpoint/qformat.py``, ``snn/coding.py``), so the serial
interpreter and the vectorized executor produce bitwise-identical
results to the retained oracles.  Do not "simplify" an expression here
without re-deriving bit-identity: e.g. the two sequential SCALEs of the
quantized datapath are *not* one multiply by the product of the scales.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def sigmoid(x: np.ndarray, slope: float) -> np.ndarray:
    """Numerically stable logistic — exactly ``activations.make_sigmoid``."""
    z = slope * np.asarray(x, dtype=np.float64)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


def step(x: np.ndarray) -> np.ndarray:
    """Hard threshold — exactly ``activations.make_step``."""
    return (np.asarray(x, dtype=np.float64) > 0.0).astype(np.float64)


def lut_evaluate(
    x: np.ndarray,
    slopes: np.ndarray,
    intercepts: np.ndarray,
    x_min: float,
    x_max: float,
    segments: int,
) -> np.ndarray:
    """Piecewise-linear sigmoid — exactly ``SigmoidLUT.evaluate``."""
    x = np.asarray(x, dtype=np.float64)
    width = (x_max - x_min) / segments
    index = np.clip(
        ((x - x_min) / width).astype(np.int64), 0, segments - 1
    )
    y = slopes[index] * x + intercepts[index]
    y = np.where(x < x_min, 0.0, y)
    y = np.where(x > x_max, 1.0, y)
    return np.clip(y, 0.0, 1.0)


def quantize(
    x: np.ndarray, scale: float, min_code: int, max_code: int
) -> np.ndarray:
    """Round-to-code — exactly ``QFormat.quantize_code``."""
    return np.clip(
        np.round(np.asarray(x, dtype=np.float64) / scale), min_code, max_code
    ).astype(np.int64)


def scale(x: np.ndarray, factor: float) -> np.ndarray:
    """One fixed-point rescale step: ``float64(x) * factor``.

    Matches the quantized MLP's ``accum.astype(float64) * scale`` for
    integer inputs and a plain float multiply for float inputs.
    """
    return np.asarray(x, dtype=np.float64) * factor


def gemv(x: np.ndarray, w: np.ndarray, cast: str = "") -> np.ndarray:
    """Synaptic accumulate ``x @ w.T`` (``cast="int64"``: integer path)."""
    if cast == "int64":
        return x @ w.T.astype(np.int64)
    return x @ w.T


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def counts(
    images: np.ndarray, duration: float, max_rate_interval: float
) -> np.ndarray:
    """Deterministic luminance->count front end, cast to float64.

    Delegates to :func:`repro.snn.coding.deterministic_counts_batch`
    (shared, not replicated — it is already the single implementation
    both SNNwot and SNN+BP call) and applies the families' common
    ``.astype(float64)`` cast.
    """
    from ..snn.coding import deterministic_counts_batch

    return deterministic_counts_batch(
        images, duration=duration, max_rate_interval=max_rate_interval
    ).astype(np.float64)


def argmax_rows(x: np.ndarray) -> np.ndarray:
    return np.argmax(x, axis=-1).astype(np.int64)


def lfsr_gaussian(
    seeds: Sequence[int], resolution: int, count: int, vectorized: bool
) -> np.ndarray:
    """``count`` CLT-of-LFSR Gaussian samples from a fresh RNG state.

    ``vectorized=False`` runs the scalar :class:`HardwareGaussian`
    bit-walk (the golden model); ``vectorized=True`` runs the PR 3
    GF(2)-dilation bulk generator — bit-identical by construction and
    re-asserted by the IR property tests.
    """
    if vectorized:
        from ..hardware.rng_vec import VectorizedHardwareGaussian

        rng = VectorizedHardwareGaussian(
            seeds=list(seeds), resolution=resolution
        )
    else:
        from ..hardware.rng_hw import HardwareGaussian

        rng = HardwareGaussian(seeds=list(seeds), resolution=resolution)
    return rng.samples(int(count))
