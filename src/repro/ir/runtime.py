"""Shared plan-execution machinery for the two IR executors.

Both executors walk the same instruction stream with the same kernels;
they differ only in *shape discipline* — the serial interpreter (the
golden model) feeds one ``(1, n)`` row block at a time, the vectorized
executor feeds the whole ``(B, n)`` batch — and in which variant of the
two stateful ops they run (LIF_STEP per-image vs batched grid,
LFSR_FILL scalar bit-walk vs bulk leap).  Everything else is the same
code path, which is what makes the bit-identity contract a property of
this module instead of a per-pair test suite.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.errors import CompileError
from . import kernels, ops
from .ops import CompiledPlan, Instruction


class ExecutionContext:
    """Mutable per-executor state for one plan: shim network + trains.

    Plans are immutable; everything that must persist *across* calls —
    the rebuilt timed-SNN shim and its per-index encoded-spike-train
    cache — lives here.  Serving runners hold one context for the life
    of the runner, so served traffic pays the ~0.6 ms/image encoding
    cost once per index, exactly like the legacy ``SNNwtRunner``.
    """

    def __init__(self, plan: CompiledPlan):
        self.plan = plan
        self._network = None
        self._trains: Dict[int, Any] = {}
        # Guards the lazy network build and the train-cache mutation:
        # the threaded row-block scheduler shares one context across
        # worker threads (blocks pre-encode on the calling thread, but
        # the lock keeps direct concurrent use safe too).
        self._lock = threading.Lock()

    # -- timed-SNN support ----------------------------------------------

    @property
    def network(self):
        """The LIF grid rebuilt around the plan's read-only consts."""
        with self._lock:
            return self._network_locked()

    def _network_locked(self):
        if self._network is None:
            meta = self.plan.meta
            if "config" not in meta:
                raise CompileError(
                    f"plan {self.plan.kind!r} has LIF_STEP but no config "
                    "metadata"
                )
            from ..snn.network import SpikingNetwork

            network = SpikingNetwork(meta["config"], coder=meta.get("coder"))
            network.weights = self.plan.consts["weights"]
            # Inference never adjusts thresholds; the read-only view
            # turns any stray write into a hard error instead of a
            # silent divergence (same contract as the worker shards).
            network.population.thresholds = self.plan.consts["thresholds"]
            network.neuron_labels = self.plan.consts["neuron_labels"]
            self._network = network
        return self._network

    def preload_trains(self, trains: Dict[int, Any]) -> int:
        """Seed the per-index train cache (shipped/warmed trains)."""
        with self._lock:
            self._trains.update(trains)
            return len(self._trains)

    def cached_train_count(self) -> int:
        with self._lock:
            return len(self._trains)

    def trains_for(
        self, rows: np.ndarray, indices: Sequence[int]
    ) -> List[Any]:
        """Per-index spike trains, encoding (and caching) the missing ones.

        Encoding uses ``child_rng(seed, stream, index)`` — the PR 2
        per-image scheme — so a train depends only on ``(seed, index)``
        and caching is sound.
        """
        from ..snn.batched import encode_indexed

        meta = self.plan.meta
        with self._lock:
            network = self._network_locked()
            missing = [
                (j, int(index))
                for j, index in enumerate(indices)
                if int(index) not in self._trains
            ]
            if missing:
                fresh = encode_indexed(
                    network,
                    np.atleast_2d(rows)[[j for j, _ in missing]],
                    [index for _, index in missing],
                    seed=meta.get("seed"),
                    stream=meta.get("stream"),
                )
                for (_, index), train in zip(missing, fresh):
                    self._trains[index] = train
            return [self._trains[int(index)] for index in indices]


def _act(inst: Instruction, env: Dict[str, np.ndarray]) -> np.ndarray:
    x = env[inst.srcs[0]]
    kernel = inst.param("kernel")
    if kernel == "sigmoid":
        return kernels.sigmoid(x, float(inst.param("slope")))
    if kernel == "step":
        return kernels.step(x)
    if kernel == "lut":
        return kernels.lut_evaluate(
            x,
            env[inst.srcs[1]],
            env[inst.srcs[2]],
            float(inst.param("x_min")),
            float(inst.param("x_max")),
            int(inst.param("segments")),
        )
    raise CompileError(f"unknown ACT kernel {kernel!r}")


def _lif_step(
    inst: Instruction,
    env: Dict[str, np.ndarray],
    indices: Sequence[int],
    ctx: ExecutionContext,
    vectorized: bool,
) -> np.ndarray:
    from ..snn.batched import DEFAULT_BATCH_SIZE, batch_winners

    rows = env[inst.srcs[0]]
    for index in indices:
        if int(index) < 0:
            raise CompileError(
                "LIF_STEP needs a dataset index per row; the per-image "
                "RNG stream is keyed by index"
            )
    trains = ctx.trains_for(rows, indices)
    if vectorized:
        winners = batch_winners(
            ctx.network, trains, batch_size=DEFAULT_BATCH_SIZE
        )
        return np.asarray(winners, dtype=np.int64)
    # Golden model: one image through the grid at a time.
    winners = [
        int(batch_winners(ctx.network, [train], batch_size=1)[0])
        for train in trains
    ]
    return np.asarray(winners, dtype=np.int64)


def execute_instructions(
    plan: CompiledPlan,
    inputs: Optional[np.ndarray],
    indices: Sequence[int],
    ctx: ExecutionContext,
    vectorized: bool,
) -> Dict[str, np.ndarray]:
    """Walk one plan over one input block; returns the final env."""
    env: Dict[str, np.ndarray] = {}
    for inst in plan.instructions:
        if inst.op == ops.LOAD_V:
            if inputs is None:
                raise CompileError(
                    f"plan {plan.kind!r} expects an input batch"
                )
            block = np.atleast_2d(np.asarray(inputs))
            if inst.param("transform") == "norm01":
                block = block.astype(np.float64) / 255.0
            env[inst.dst] = block
        elif inst.op == ops.LOAD_M:
            env[inst.dst] = plan.consts[inst.dst]
        elif inst.op == ops.GEMV:
            env[inst.dst] = kernels.gemv(
                env[inst.srcs[0]], env[inst.srcs[1]],
                cast=inst.param("cast", ""),
            )
        elif inst.op == ops.ADD:
            env[inst.dst] = env[inst.srcs[0]] + env[inst.srcs[1]]
        elif inst.op == ops.SCALE:
            env[inst.dst] = kernels.scale(
                env[inst.srcs[0]], float(inst.param("scale"))
            )
        elif inst.op == ops.RELU:
            env[inst.dst] = kernels.relu(env[inst.srcs[0]])
        elif inst.op == ops.ACT:
            env[inst.dst] = _act(inst, env)
        elif inst.op == ops.QUANT:
            env[inst.dst] = kernels.quantize(
                env[inst.srcs[0]],
                float(inst.param("scale")),
                int(inst.param("min_code")),
                int(inst.param("max_code")),
            )
        elif inst.op == ops.COUNTS:
            env[inst.dst] = kernels.counts(
                env[inst.srcs[0]],
                float(inst.param("duration")),
                float(inst.param("max_rate_interval")),
            )
        elif inst.op == ops.LIF_STEP:
            env[inst.dst] = _lif_step(inst, env, indices, ctx, vectorized)
        elif inst.op == ops.THRESH:
            env[inst.dst] = kernels.argmax_rows(env[inst.srcs[0]])
        elif inst.op == ops.TAKE:
            env[inst.dst] = np.asarray(env[inst.srcs[1]])[env[inst.srcs[0]]]
        elif inst.op == ops.LFSR_FILL:
            env[inst.dst] = kernels.lfsr_gaussian(
                tuple(inst.param("seeds")),
                int(inst.param("resolution")),
                int(inst.param("count")),
                vectorized=vectorized,
            )
        elif inst.op == ops.STORE:
            env[inst.dst] = env[inst.srcs[0]]
        else:  # pragma: no cover - OPCODES is closed
            raise CompileError(f"unhandled opcode {inst.op!r}")
    return env


def resolve_indices(
    plan: CompiledPlan,
    images: Optional[np.ndarray],
    indices: Optional[Sequence[int]],
) -> List[int]:
    """Default per-row dataset indices (``range(B)``, like predict_batch)."""
    if indices is not None:
        return [int(i) for i in indices]
    if images is None:
        return []
    return list(range(len(np.atleast_2d(np.asarray(images)))))


def gather_outputs(
    plan: CompiledPlan, env: Dict[str, np.ndarray]
):
    results = tuple(env[name] for name in plan.outputs)
    if len(results) == 1:
        return results[0]
    return results
