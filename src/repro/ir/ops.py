"""The execution IR: a small typed instruction set over named buffers.

All five model kinds (mlp, mlp-q, snnwt, snnwot, snnbp) lower onto the
same ~10 ops, in the spirit of the paper's observation that one small
set of hardware primitives — synaptic accumulate, threshold/activation,
LFSR-driven stochastics — serves both the neuroscience and the
machine-learning families:

========== =================================================================
op         semantics (all arrays NumPy; batch axis first where present)
========== =================================================================
LOAD_V     bind the external input batch to ``dst`` (``transform`` param:
           ``raw`` keeps luminance rows as-is, ``norm01`` casts to float64
           and divides by 255 — the MLP ``predict_images`` entry)
LOAD_M     bind the constant array named ``dst`` (weights, biases, LUT
           tables, label maps) from the plan's const pool into the env
GEMV       ``dst = x @ w.T`` — the synaptic accumulate.  ``cast="int64"``
           runs the quantized datapath's exact integer accumulate
           (``x @ w.T.astype(int64)``)
ADD        ``dst = x + b`` (bias row broadcast against the batch)
SCALE      ``dst = float64(x) * scale`` — one fixed-point rescale step;
           the quantized MLP emits *two* sequential SCALEs to reproduce
           its left-to-right ``accum * act_scale * w_scale`` float order
RELU       ``dst = maximum(x, 0)`` (backends/property tests; the paper's
           models use sigmoid/step/LUT activations via ACT)
ACT        activation: ``kernel`` param selects ``sigmoid`` (stable
           two-branch, ``slope`` param), ``step`` (``x > 0``), or ``lut``
           (the 16-segment piecewise-linear sigmoid; slopes/intercepts
           arrive as const srcs, breakpoints as params)
QUANT      ``dst = clip(round(x / scale), min_code, max_code)`` as int64 —
           exactly ``QFormat.quantize_code``
COUNTS     deterministic luminance->spike-count front end
           (``deterministic_counts_batch``), cast to float64
LIF_STEP   the timed winner-take-all macro-op: encode per-index spike
           trains and run the leaky integrate-and-fire grid to first
           spike; ``dst`` holds winner neuron indices ``(B,)``
THRESH     ``dst = argmax(x, axis=-1)`` — the readout comparator
TAKE       ``dst = table[idx]`` — map winner indices through a label table
LFSR_FILL  ``dst`` = ``count`` CLT-of-4-LFSR Gaussian samples (the
           hardware RNG; params ``seeds``/``resolution``/``count``)
STORE      mark ``src`` as the plan output named ``dst``
========== =================================================================

Plans are immutable: instructions are frozen dataclasses, const arrays
are copied and marked read-only at construction, and
:meth:`CompiledPlan.signature` content-addresses the whole plan (ops,
buffers, const bytes, metadata, code-version salt) so caches and
shipped shards can key on plan identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import CompileError

#: Salt folded into every plan signature; bump on any semantic change
#: to op behaviour or lowering so stale cached plans can never collide.
PLAN_CODE_VERSION = "ir-pr8-1"

# -- opcode constants -------------------------------------------------------

LOAD_V = "LOAD_V"
LOAD_M = "LOAD_M"
GEMV = "GEMV"
ADD = "ADD"
SCALE = "SCALE"
RELU = "RELU"
ACT = "ACT"
QUANT = "QUANT"
COUNTS = "COUNTS"
LIF_STEP = "LIF_STEP"
THRESH = "THRESH"
TAKE = "TAKE"
LFSR_FILL = "LFSR_FILL"
STORE = "STORE"

#: Every opcode the executors implement, in listing order.
OPCODES = (
    LOAD_V,
    LOAD_M,
    GEMV,
    ADD,
    SCALE,
    RELU,
    ACT,
    QUANT,
    COUNTS,
    LIF_STEP,
    THRESH,
    TAKE,
    LFSR_FILL,
    STORE,
)

#: Buffer roles (the buffer table's second column).
ROLES = ("input", "const", "temp", "output")


def _param_doc(value: Any) -> Any:
    """JSON-stable form of one instruction parameter."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, tuple):
        return [_param_doc(v) for v in value]
    return value


@dataclass(frozen=True)
class Instruction:
    """One IR instruction: ``dst = op(*srcs, **params)``.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so
    instructions are hashable, order-independent in their construction,
    and safely picklable to worker shards.
    """

    op: str
    dst: str
    srcs: Tuple[str, ...] = ()
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise CompileError(f"unknown opcode {self.op!r}")
        object.__setattr__(self, "srcs", tuple(self.srcs))
        if isinstance(self.params, dict):
            params = self.params
        else:
            params = dict(self.params)
        object.__setattr__(
            self, "params", tuple(sorted(params.items()))
        )

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def to_doc(self) -> Dict[str, Any]:
        """Stable-key JSON form (the ``ir-dump --json`` row)."""
        return {
            "op": self.op,
            "dst": self.dst,
            "srcs": list(self.srcs),
            "params": {k: _param_doc(v) for k, v in self.params},
        }

    def render(self) -> str:
        """One human-readable listing line."""
        args = ", ".join(self.srcs)
        params = " ".join(
            f"{k}={_param_doc(v)!r}" for k, v in self.params
        )
        text = f"{self.op:<9} {self.dst}"
        if args:
            text += f" <- {args}"
        if params:
            text += f"  [{params}]"
        return text


@dataclass(frozen=True)
class BufferSpec:
    """One named buffer: its role in the dataflow and element dtype."""

    name: str
    role: str
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise CompileError(
                f"unknown buffer role {self.role!r} for {self.name!r}"
            )

    def to_doc(self) -> Dict[str, Any]:
        return {"name": self.name, "role": self.role, "dtype": self.dtype}


def _freeze_const(value: np.ndarray) -> np.ndarray:
    """Copy + write-protect a const so plans can never alias model state."""
    array = np.array(value)  # always a fresh copy, never a view
    array.setflags(write=False)
    return array


class CompiledPlan:
    """An immutable compiled inference program for one model kind.

    Attributes:
        kind: the model kind the plan lowers (``mlp``/``mlp-q``/
            ``snnwt``/``snnwot``/``snnbp``) — or ``program`` for
            hand-built property-test programs.
        instructions: the instruction sequence (a tuple).
        buffers: :class:`BufferSpec` table covering every named buffer.
        consts: ``name -> read-only ndarray`` const pool (copied at
            construction; executors bind these via LOAD_M).
        meta: small picklable metadata executors need beyond arrays
            (model config, spike coder, RNG seed/stream for LIF_STEP).
        outputs: names STOREd as plan results, in order.
    """

    def __init__(
        self,
        kind: str,
        instructions: Sequence[Instruction],
        buffers: Sequence[BufferSpec],
        consts: Mapping[str, np.ndarray],
        meta: Optional[Mapping[str, Any]] = None,
        outputs: Sequence[str] = ("labels",),
    ):
        self.kind = str(kind)
        self.instructions: Tuple[Instruction, ...] = tuple(instructions)
        self.buffers: Tuple[BufferSpec, ...] = tuple(buffers)
        self.consts: Dict[str, np.ndarray] = {
            name: _freeze_const(value) for name, value in consts.items()
        }
        self.meta: Dict[str, Any] = dict(meta or {})
        self.outputs: Tuple[str, ...] = tuple(outputs)
        self._validate()
        self._signature: Optional[str] = None

    # -- construction-time checks ---------------------------------------

    def _validate(self) -> None:
        known = {spec.name for spec in self.buffers}
        if len(known) != len(self.buffers):
            raise CompileError("duplicate buffer names in plan")
        bound = set(self.consts)
        for inst in self.instructions:
            for src in inst.srcs:
                if src not in known:
                    raise CompileError(
                        f"{inst.op} reads undeclared buffer {src!r}"
                    )
            if inst.dst not in known:
                raise CompileError(
                    f"{inst.op} writes undeclared buffer {inst.dst!r}"
                )
            if inst.op == LOAD_M and inst.dst not in bound:
                raise CompileError(
                    f"LOAD_M of {inst.dst!r} has no const in the pool"
                )
        roles = {spec.name: spec.role for spec in self.buffers}
        for name in self.outputs:
            if roles.get(name) != "output":
                raise CompileError(
                    f"plan output {name!r} is not declared role=output"
                )

    @property
    def requires_indices(self) -> bool:
        """True when execution is keyed by dataset index (LIF_STEP RNG)."""
        return any(inst.op == LIF_STEP for inst in self.instructions)

    # -- introspection ---------------------------------------------------

    def listing(self) -> str:
        """Human-readable instruction listing + buffer table."""
        lines = [f"plan {self.kind} ({len(self.instructions)} instructions)"]
        for i, inst in enumerate(self.instructions):
            lines.append(f"  {i:>3}: {inst.render()}")
        lines.append("buffers:")
        for spec in self.buffers:
            extra = ""
            if spec.name in self.consts:
                extra = f" shape={self.consts[spec.name].shape}"
            lines.append(
                f"  {spec.name:<16} {spec.role:<7} {spec.dtype}{extra}"
            )
        lines.append(f"outputs: {', '.join(self.outputs)}")
        return "\n".join(lines)

    def to_doc(self) -> Dict[str, Any]:
        """Stable-key JSON document (``ir-dump --json``)."""
        return {
            "kind": self.kind,
            "instructions": [inst.to_doc() for inst in self.instructions],
            "buffers": [spec.to_doc() for spec in self.buffers],
            "outputs": list(self.outputs),
            "signature": self.signature(),
        }

    def signature(self) -> str:
        """Content address of the whole plan (hex SHA-256 prefix).

        Covers the instruction stream, buffer table, const *bytes*
        (dtype + shape + data), canonicalized metadata, and the IR
        code-version salt — any semantic difference yields a new
        signature, so plan caches and shipped shards can never serve a
        stale program.
        """
        if self._signature is not None:
            return self._signature
        from ..core.artifacts import _jsonable, coder_signature

        meta_doc: Dict[str, Any] = {}
        for key, value in sorted(self.meta.items()):
            if key == "coder":
                meta_doc[key] = coder_signature(value)
            else:
                meta_doc[key] = _jsonable(value)
        payload = {
            "code_version": PLAN_CODE_VERSION,
            "kind": self.kind,
            "instructions": [inst.to_doc() for inst in self.instructions],
            "buffers": [spec.to_doc() for spec in self.buffers],
            "outputs": list(self.outputs),
            "meta": meta_doc,
            "consts": {
                name: {
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                    "sha256": hashlib.sha256(
                        np.ascontiguousarray(array).tobytes()
                    ).hexdigest(),
                }
                for name, array in sorted(self.consts.items())
            },
        }
        blob = json.dumps(payload, sort_keys=True, default=str)
        self._signature = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]
        return self._signature

    # -- shard shipping ---------------------------------------------------

    def skeleton(self) -> Dict[str, Any]:
        """Picklable plan-minus-consts for shipping to worker shards.

        The big const arrays travel through the shared-memory bundle;
        this small spec carries everything else.  Rebuild with
        :meth:`from_skeleton`.
        """
        return {
            "kind": self.kind,
            "instructions": self.instructions,
            "buffers": self.buffers,
            "meta": dict(self.meta),
            "outputs": self.outputs,
            "const_names": sorted(self.consts),
            "signature": self.signature(),
        }

    @classmethod
    def from_skeleton(
        cls, skeleton: Mapping[str, Any], consts: Mapping[str, np.ndarray]
    ) -> "CompiledPlan":
        """Rebind a shipped skeleton around (read-only) const views."""
        missing = sorted(set(skeleton["const_names"]) - set(consts))
        if missing:
            raise CompileError(
                f"plan skeleton is missing const arrays {missing}"
            )
        plan = cls.__new__(cls)
        plan.kind = skeleton["kind"]
        plan.instructions = tuple(skeleton["instructions"])
        plan.buffers = tuple(skeleton["buffers"])
        # Shared-memory views are already read-only; bind without the
        # defensive copy so N shards keep sharing one set of pages.
        plan.consts = {
            name: consts[name] for name in skeleton["const_names"]
        }
        plan.meta = dict(skeleton["meta"])
        plan.outputs = tuple(skeleton["outputs"])
        plan._validate()
        plan._signature = skeleton.get("signature")
        return plan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledPlan(kind={self.kind!r}, "
            f"instructions={len(self.instructions)}, "
            f"consts={sorted(self.consts)})"
        )
