"""The NumPy-serial plan interpreter — the single golden model.

Feeds one ``(1, n)`` row block at a time through the shared instruction
walk, so every matrix product is a one-row GEMM and the timed SNN runs
one image through the grid per step.  This is the reference the
per-model-kind golden tests pin to the retained legacy oracles, and the
reference the vectorized executor is asserted bitwise-equal to — the
two assertions that replace the old per-pair equivalence suites.

Row blocks stay 2-D on purpose: float64 ``X @ W.T`` rows are bitwise
independent of the batch they ride in (the dgemm row-independence the
PR 4 serving oracles already rely on), so per-row results concatenate
into exactly the batch result.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from . import ops
from .ops import CompiledPlan
from .runtime import (
    ExecutionContext,
    execute_instructions,
    gather_outputs,
    resolve_indices,
)


def run_plan_serial(
    plan: CompiledPlan,
    images: Optional[np.ndarray] = None,
    indices: Optional[Sequence[int]] = None,
    ctx: Optional[ExecutionContext] = None,
):
    """Execute a plan one input row at a time (the golden model).

    Returns the plan's output array (or a tuple for multi-output
    programs), identical in shape to the vectorized executor's result.
    Plans with no LOAD_V (pure generator programs, e.g. LFSR_FILL
    property tests) execute once — their dataflow has no batch axis.
    """
    if ctx is None:
        ctx = ExecutionContext(plan)
    has_input = any(inst.op == ops.LOAD_V for inst in plan.instructions)
    if not has_input:
        env = execute_instructions(plan, None, [], ctx, vectorized=False)
        return gather_outputs(plan, env)
    block = np.atleast_2d(np.asarray(images))
    row_indices = resolve_indices(plan, block, indices)
    per_row = []
    for i in range(len(block)):
        env = execute_instructions(
            plan,
            block[i : i + 1],
            row_indices[i : i + 1],
            ctx,
            vectorized=False,
        )
        per_row.append(env)
    outputs = []
    for name in plan.outputs:
        outputs.append(
            np.concatenate([env[name] for env in per_row], axis=0)
            if per_row
            else np.empty((0,), dtype=np.int64)
        )
    if len(outputs) == 1:
        return outputs[0]
    return tuple(outputs)
