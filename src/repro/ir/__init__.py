"""Unified execution IR: one lowering for all five model kinds.

Public surface:

* :mod:`repro.ir.ops` — the instruction set and :class:`CompiledPlan`.
* :mod:`repro.ir.compile` — ``compile_model`` lowerings.
* :mod:`repro.ir.interpret` — ``run_plan_serial``, the golden model.
* :mod:`repro.ir.execute` — ``run_plan``, the vectorized hot path.
* :mod:`repro.ir.backends` — the pluggable execution-backend registry
  (serial / numpy / numpy-tiled / int8-tiled / torch / jax).
* :mod:`repro.ir.plan_cache` — compile-once memo + content-addressed
  spike-train bundles.
* :mod:`repro.ir.cyclesim` — IR-driven cycle-accurate sweep pricing.
"""

from .backends import (
    DEFAULT_BACKEND,
    available_backends,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend_name,
)
from .compile import PLAN_KINDS, compile_model, kind_of
from .execute import run_plan
from .interpret import run_plan_serial
from .ops import (
    PLAN_CODE_VERSION,
    BufferSpec,
    CompiledPlan,
    Instruction,
)
from .plan_cache import get_plan, plan_cache_stats, reset_plan_cache
from .runtime import ExecutionContext

__all__ = [
    "DEFAULT_BACKEND",
    "PLAN_CODE_VERSION",
    "PLAN_KINDS",
    "BufferSpec",
    "CompiledPlan",
    "ExecutionContext",
    "Instruction",
    "available_backends",
    "compile_model",
    "get_backend",
    "get_plan",
    "kind_of",
    "list_backends",
    "plan_cache_stats",
    "register_backend",
    "reset_plan_cache",
    "resolve_backend_name",
    "run_plan",
    "run_plan_serial",
]
