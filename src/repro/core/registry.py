"""Registry mapping experiment ids to their implementations.

``repro.analysis`` registers one entry per paper table/figure; the
report generator and the benchmark suite iterate this registry so the
set of reproduced artifacts is defined in exactly one place.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from .errors import ExperimentError
from .experiment import ExperimentFn, ExperimentSpec

_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(
    experiment_id: str, title: str, paper_location: str = ""
):
    """Decorator registering an experiment function under an id."""

    def decorator(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = ExperimentSpec(
            experiment_id=experiment_id,
            title=title,
            fn=fn,
            paper_location=paper_location,
        )
        return fn

    return decorator


def get(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id, raising on unknown ids."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none registered)"
        raise ExperimentError(
            f"unknown experiment id {experiment_id!r}; known: {known}"
        ) from None


def all_ids() -> List[str]:
    """All registered ids, sorted."""
    return sorted(_REGISTRY)


def iter_specs() -> Iterator[ExperimentSpec]:
    """Iterate specs in id order."""
    for experiment_id in all_ids():
        yield _REGISTRY[experiment_id]


def clear() -> None:
    """Remove all registrations (test helper)."""
    _REGISTRY.clear()


def ensure_default_registrations() -> None:
    """Import :mod:`repro.analysis` so its experiments are registered.

    Idempotent (module imports are cached).  Needed by parallel worker
    processes: a ``spawn``-started worker begins with an empty registry,
    and even a forked one may import this module before the analysis
    package has run its registration decorators.
    """
    import repro.analysis  # noqa: F401  (registers experiments)
